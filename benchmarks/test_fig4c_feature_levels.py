"""Figure 4(c): PerfXplain precision at the three feature levels.

Level 1 restricts explanations to the isSame features, level 2 adds the
compare/diff features, level 3 adds the copied base features.  The paper
finds levels 2 and 3 perform similarly and clearly better than level 1.
"""

from __future__ import annotations

from conftest import WIDTHS, bench_repetitions, record_series

from repro.core.evaluation import evaluate_feature_levels
from repro.core.features import FeatureLevel


def test_fig4c_feature_levels(benchmark, experiment_log, whyslower_query):
    def run_sweep():
        return evaluate_feature_levels(
            experiment_log,
            whyslower_query,
            levels=(FeatureLevel.IS_SAME_ONLY, FeatureLevel.COMPARISON, FeatureLevel.FULL),
            widths=WIDTHS,
            repetitions=bench_repetitions(),
            seed=10,
        )

    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    record_series(benchmark, sweep, "precision")

    print("\nFigure 4(c) — precision with feature levels 1/2/3")
    print(sweep.format_table("precision"))

    level1 = sweep.mean("PerfXplain-level1", 3)
    level2 = sweep.mean("PerfXplain-level2", 3)
    level3 = sweep.mean("PerfXplain-level3", 3)
    # Richer feature sets never hurt, and the full set is the best or tied.
    assert level3 >= level1 - 0.05
    assert level3 >= level2 - 0.1
    assert max(level2, level3) > 0.6
