"""Large-log throughput and memory: sharded kernels and the spill path.

End-to-end ``construct_training_matrix`` on a synthetic 100k-task log —
the scale real MapReduce clusters emit, an order of magnitude past the
pair-pipeline benchmark.  Tasks arrive in blocking groups of ~25 replicas
(same script/operator/similar input size), so the candidate space is ~2.4M
ordered pairs and the CRC32 cap does real work.

Two floors are asserted:

* **speedup** — fanning pair-kernel batches across a
  ``ProcessPoolExecutor`` (``workers=N``) against the single-process
  kernel path, outputs asserted identical first.  The floor only applies
  where the hardware can deliver it: 2x locally with >= 4 cores, 1.3x on
  CI runners with >= 2 cores, and on fewer cores the identity checks still
  run but the wall-clock floor is skipped (a one-core container cannot
  speed anything up by forking).
* **memory ceiling** — the spill path (chunked blocks, 6-chunk resident
  working set) explains the same log end-to-end under an asserted
  tracemalloc peak.  The in-memory layout peaks at ~59 MB on this
  workload (fully-resident encoded columns); the spill path measures
  ~39 MB, and the ceiling is asserted at 48 MB so a regression that quietly
  re-materialises whole columns fails the job.
"""

from __future__ import annotations

import os
import random
import time
import tracemalloc

import pytest

from repro.core.examples import construct_training_matrix
from repro.core.features import FeatureKind, FeatureSchema
from repro.core.pxql.ast import Comparison, Operator, Predicate
from repro.core.pxql.query import EntityKind, PXQLQuery
from repro.logs.records import TaskRecord
from repro.logs.store import ExecutionLog

TASKS = 100_000
GROUP_SIZE = 25

#: Candidate cap for the speedup runs: large enough that batch evaluation
#: (the sharded part) dominates candidate enumeration (the serial part).
SPEEDUP_CAP = 150_000

#: Candidate cap for the (tracemalloc-instrumented, hence slower) memory
#: runs: the ceiling is about resident columns, not evaluated pairs.
MEMORY_CAP = 10_000

#: Asserted tracemalloc peak for the spill path, in MB.  The in-memory
#: layout peaks at ~59 MB on this log; the spill path measures ~39 MB.
MEMORY_CEILING_MB = 48.0

CHUNK_ROWS = 16_384
RESIDENT_CHUNKS = 6


def _speedup_floor() -> float | None:
    """The asserted sharding speedup, or ``None`` if hardware can't."""
    cores = os.cpu_count() or 1
    if os.environ.get("CI"):
        return 1.3 if cores >= 2 else None
    return 2.0 if cores >= 4 else None


@pytest.fixture(scope="module")
def large_log():
    """100k tasks in ~4000 blocking groups of ~25 noisy replicas each."""
    rng = random.Random(0)
    log = ExecutionLog()
    hosts = [f"host-{index}" for index in range(40)]
    operators = ("MAP", "REDUCE", "FILTER", "JOIN")
    for index in range(TASKS):
        group = index // GROUP_SIZE
        features = {
            "pig_script": f"script-{group % 97}.pig",
            "operator": operators[group % 4],
            "host": hosts[rng.randrange(40)],
            "inputsize": 1000.0 * (1 + group % 13) * (1.0 + rng.gauss(0.0, 0.01)),
            "memory": float(rng.choice([512, 1024, 2048])),
        }
        # Wide task rows: per-task counters, low-cardinality like real
        # MapReduce counter dumps, so encoded columns dominate memory.
        for counter in range(8):
            features[f"counter_{counter}"] = float(rng.randrange(32))
        log.add_task(
            TaskRecord(
                task_id=f"t{index}",
                job_id=f"j{group}",
                features=features,
                duration=10.0 * (1 + group % 7) * (1.0 + rng.gauss(0.0, 0.08)),
            )
        )
    return log


@pytest.fixture(scope="module")
def task_schema():
    schema = FeatureSchema()
    for name in ("pig_script", "operator", "host"):
        schema.add(name, FeatureKind.NOMINAL)
    for name in ("inputsize", "memory", "duration"):
        schema.add(name, FeatureKind.NUMERIC)
    for counter in range(8):
        schema.add(f"counter_{counter}", FeatureKind.NUMERIC)
    return schema


@pytest.fixture(scope="module")
def task_query():
    return PXQLQuery(
        entity=EntityKind.TASK,
        despite=Predicate.conjunction(
            [
                Comparison("pig_script_isSame", Operator.EQ, "T"),
                Comparison("operator_isSame", Operator.EQ, "T"),
                Comparison("inputsize_isSame", Operator.EQ, "T"),
            ]
        ),
        observed=Predicate.of(Comparison("duration_compare", Operator.EQ, "GT")),
        expected=Predicate.of(Comparison("duration_compare", Operator.EQ, "SIM")),
    )


def _matrices_identical(left, right) -> bool:
    if bytes(left.observed) != bytes(right.observed):
        return False
    if left.matrix.features != right.matrix.features:
        return False
    for feature in left.matrix.features:
        left_raw = left.matrix.column(feature).raw
        right_raw = right.matrix.column(feature).raw
        for left_value, right_value in zip(left_raw, right_raw):
            if left_value != right_value and not (
                left_value != left_value and right_value != right_value
            ):
                return False
    return True


def test_sharded_kernels_beat_single_process(
    benchmark, large_log, task_schema, task_query
):
    cores = os.cpu_count() or 1
    workers = max(2, min(4, cores))

    start = time.perf_counter()
    serial_matrix = construct_training_matrix(
        large_log,
        task_query,
        task_schema,
        sample_size=2000,
        rng=random.Random(7),
        max_candidate_pairs=SPEEDUP_CAP,
    )
    serial_seconds = time.perf_counter() - start

    def construct_sharded():
        return construct_training_matrix(
            large_log,
            task_query,
            task_schema,
            sample_size=2000,
            rng=random.Random(7),
            max_candidate_pairs=SPEEDUP_CAP,
            workers=workers,
        )

    sharded_matrix = benchmark.pedantic(construct_sharded, rounds=1, iterations=1)
    sharded_seconds = benchmark.stats.stats.mean

    # The speedup must not come from computing something else: encodings,
    # labels and every raw column have to match the serial path exactly.
    assert _matrices_identical(serial_matrix, sharded_matrix)

    speedup = serial_seconds / sharded_seconds
    floor = _speedup_floor()
    benchmark.extra_info["tasks"] = TASKS
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 3)
    benchmark.extra_info["sharded_seconds"] = round(sharded_seconds, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)

    print(f"\nLarge-log sharded kernels — {TASKS} tasks, {workers} workers:")
    print(f"  single-process : {serial_seconds:.2f} s")
    print(f"  sharded        : {sharded_seconds:.2f} s")
    print(f"  speedup        : {speedup:.2f}x")
    if floor is None:
        print(f"  floor skipped  : only {cores} core(s) available")
        return
    assert speedup >= floor, (
        f"sharded pair kernels should be at least {floor}x faster than the "
        f"single-process path on {cores} cores (got {speedup:.2f}x)"
    )


def test_spill_path_explains_under_memory_ceiling(
    benchmark, large_log, task_schema, task_query
):
    plain_matrix = construct_training_matrix(
        large_log,
        task_query,
        task_schema,
        sample_size=500,
        rng=random.Random(7),
        max_candidate_pairs=MEMORY_CAP,
    )

    # Same records, chunked spilling layout (fresh log so the plain block
    # cache above keeps serving the other benchmark).
    spill_log = ExecutionLog(tasks=list(large_log.tasks))
    spill_log.configure_blocks(
        chunk_rows=CHUNK_ROWS, max_resident_chunks=RESIDENT_CHUNKS
    )

    def construct_spilling():
        tracemalloc.start()
        matrix = construct_training_matrix(
            spill_log,
            task_query,
            task_schema,
            sample_size=500,
            rng=random.Random(7),
            max_candidate_pairs=MEMORY_CAP,
        )
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return matrix, peak

    spill_matrix, peak = benchmark.pedantic(
        construct_spilling, rounds=1, iterations=1
    )
    peak_mb = peak / 1e6

    assert _matrices_identical(plain_matrix, spill_matrix)

    stats = spill_log.record_block(task_schema, kind="task").store.stats()
    benchmark.extra_info["tasks"] = TASKS
    benchmark.extra_info["peak_mb"] = round(peak_mb, 1)
    benchmark.extra_info["spill_stats"] = stats

    print(
        f"\nSpill-path memory — {TASKS} tasks, {CHUNK_ROWS}-row chunks, "
        f"{RESIDENT_CHUNKS} resident:"
    )
    print(f"  tracemalloc peak : {peak_mb:.1f} MB (ceiling {MEMORY_CEILING_MB} MB)")
    print(f"  spill stats      : {stats}")

    # The working set actually cycled through disk...
    assert stats["evictions"] > 0
    assert stats["spills"] > 0
    assert stats["loads"] > 0
    assert stats["resident"] <= RESIDENT_CHUNKS
    # ... and bounded the peak: fully-resident columns would blow this.
    assert peak_mb <= MEMORY_CEILING_MB, (
        f"spill-path explain should stay under {MEMORY_CEILING_MB} MB "
        f"(got {peak_mb:.1f} MB)"
    )
