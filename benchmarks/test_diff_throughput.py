"""Cross-log diff throughput: sharded cross-pair scan vs single-process.

Two synthetic ~10k-task runs (2000 jobs x 5 tasks each, 40 blocking
groups) are diffed end-to-end with ``pair_workers=1`` and
``pair_workers=N``.  The reports must be **byte-identical** — the
sharded candidate stream is the serial stream, just fanned out — and on
hardware that can deliver it the sharded diff must beat the serial one
(same floors as the large-log benchmark: 2x locally with >= 4 cores,
1.3x on CI with >= 2 cores, skipped below that).

Detectors are disabled for the timed runs: they are per-side, serial by
design, and would dilute the sharded fraction this benchmark guards.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.core.explainer import PerfXplainConfig
from repro.diff import DiffEngine
from repro.logs.records import JobRecord, TaskRecord
from repro.logs.store import ExecutionLog

NUM_JOBS = 2_000
TASKS_PER_JOB = 5
GROUPS = 40


def _speedup_floor() -> float | None:
    """The asserted sharding speedup, or ``None`` if hardware can't."""
    cores = os.cpu_count() or 1
    if os.environ.get("CI"):
        return 1.3 if cores >= 2 else None
    return 2.0 if cores >= 4 else None


def _make_run(scale: float, seed: int) -> ExecutionLog:
    """One ~10k-task run: jobs in blocking groups of ~50 noisy replicas."""
    rng = random.Random(seed)
    jobs, tasks = [], []
    for index in range(NUM_JOBS):
        group = index % GROUPS
        jobs.append(
            JobRecord(
                job_id=f"j{index}",
                features={
                    "pig_script": f"script-{group}.pig",
                    "numinstances": float(rng.choice([2, 4, 8])),
                    "blocksize": 64.0,
                    "inputsize": 1e6
                    * (1 + group % 13)
                    * scale
                    * (1.0 + rng.gauss(0.0, 0.01)),
                },
                duration=10.0 * (1 + group % 7) * scale * (1.0 + rng.gauss(0.0, 0.08)),
            )
        )
        for slot in range(TASKS_PER_JOB):
            tasks.append(
                TaskRecord(
                    task_id=f"t{index}_{slot}",
                    job_id=f"j{index}",
                    features={
                        "pig_script": f"script-{group}.pig",
                        "operator": "MAP",
                        "hostname": f"host-{slot}",
                        "inputsize": 2e5 * scale,
                    },
                    duration=2.0 * scale * (1.0 + rng.gauss(0.0, 0.05)),
                )
            )
    return ExecutionLog(jobs=jobs, tasks=tasks)


@pytest.fixture(scope="module")
def run_pair():
    return _make_run(scale=1.0, seed=0), _make_run(scale=1.6, seed=1)


def test_sharded_diff_beats_single_process(benchmark, run_pair):
    before, after = run_pair
    cores = os.cpu_count() or 1
    workers = max(2, min(4, cores))

    start = time.perf_counter()
    serial_report = DiffEngine(
        before,
        after,
        config=PerfXplainConfig(pair_workers=1),
        detectors=(),
    ).report()
    serial_seconds = time.perf_counter() - start

    def diff_sharded():
        return DiffEngine(
            before,
            after,
            config=PerfXplainConfig(pair_workers=workers),
            detectors=(),
        ).report()

    sharded_report = benchmark.pedantic(diff_sharded, rounds=1, iterations=1)
    sharded_seconds = benchmark.stats.stats.mean

    # The speedup must not come from computing something else: the whole
    # report — pair of interest, explanation, deltas — must match the
    # serial path byte for byte.
    assert sharded_report.to_json() == serial_report.to_json()
    assert serial_report.direction == "regression"
    assert serial_report.explanation is not None

    speedup = serial_seconds / sharded_seconds
    floor = _speedup_floor()
    benchmark.extra_info["jobs_per_side"] = NUM_JOBS
    benchmark.extra_info["tasks_per_side"] = NUM_JOBS * TASKS_PER_JOB
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 3)
    benchmark.extra_info["sharded_seconds"] = round(sharded_seconds, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)

    print(f"\nCross-log diff — {NUM_JOBS} jobs/side, {workers} workers:")
    print(f"  single-process : {serial_seconds:.2f} s")
    print(f"  sharded        : {sharded_seconds:.2f} s")
    print(f"  speedup        : {speedup:.2f}x")
    if floor is None:
        print(f"  floor skipped  : only {cores} core(s) available")
        return
    assert speedup >= floor, (
        f"sharded cross-log diff should be at least {floor}x faster than "
        f"the single-process path on {cores} cores (got {speedup:.2f}x)"
    )
