"""Figure 3(d): width-3 precision as a function of the training-log size.

The paper varies the training log from 10% to 50% of the jobs and finds
that PerfXplain already reaches high precision (0.84) with only 10% of the
log, improving gradually with more data, while the two baselines are mostly
insensitive to the log size.
"""

from __future__ import annotations

from conftest import bench_repetitions

from repro.core.evaluation import evaluate_log_fraction

FRACTIONS = (0.1, 0.2, 0.3, 0.4, 0.5)


def test_fig3d_precision_vs_log_size(benchmark, experiment_log, whyslower_query, techniques):
    def run_sweep():
        return evaluate_log_fraction(
            experiment_log,
            whyslower_query,
            techniques,
            fractions=FRACTIONS,
            width=3,
            repetitions=bench_repetitions(),
            seed=4,
        )

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print("\nFigure 3(d) — width-3 precision vs. training-log fraction")
    header = "fraction".ljust(10) + "".join(
        name.ljust(22) for name in results[FRACTIONS[0]].techniques()
    )
    print(header)
    series = {}
    for fraction in FRACTIONS:
        sweep = results[fraction]
        row = [f"{fraction:.1f}".ljust(10)]
        for name in sweep.techniques():
            mean = sweep.mean(name, 3)
            std = sweep.std(name, 3)
            row.append(f"{mean:.3f} +/- {std:.3f}".ljust(22))
            series.setdefault(name, []).append({"fraction": fraction, "mean": round(mean, 4)})
        print("".join(row))
    benchmark.extra_info["precision_by_fraction"] = series

    smallest = results[FRACTIONS[0]].mean("PerfXplain", 3)
    largest = results[FRACTIONS[-1]].mean("PerfXplain", 3)
    # Small logs already yield useful explanations, and more data never hurts
    # much (the paper: 0.84 at 10%, rising gently to ~0.9 at 50%).
    assert smallest > 0.5
    assert largest >= smallest - 0.1
