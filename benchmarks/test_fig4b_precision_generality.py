"""Figure 4(b): the precision / generality trade-off of the three techniques.

Each technique contributes one (generality, precision) point per explanation
width for the WhySlowerDespiteSameNumInstances query.  The paper's claim:
PerfXplain's points dominate — they sit higher (more precise) and further
right (more general) than the other techniques' points.
"""

from __future__ import annotations

from conftest import WIDTHS, bench_repetitions

from repro.core.evaluation import evaluate_precision_vs_width, precision_generality_points


def test_fig4b_precision_generality_tradeoff(benchmark, experiment_log, whyslower_query,
                                             techniques):
    def run_sweep():
        return evaluate_precision_vs_width(
            experiment_log, whyslower_query, techniques, widths=WIDTHS,
            repetitions=bench_repetitions(), seed=9,
        )

    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print("\nFigure 4(b) — precision vs. generality (one point per width)")
    points_by_technique = {}
    for technique in sweep.techniques():
        points = precision_generality_points(sweep, technique)
        points_by_technique[technique] = [
            {"generality": round(g, 4), "precision": round(p, 4)} for g, p in points
        ]
        rendered = "  ".join(f"({g:.2f}, {p:.2f})" for g, p in points)
        print(f"  {technique}: {rendered}")
    benchmark.extra_info["points"] = points_by_technique

    def best_combined(technique):
        return max(
            (point["precision"] + point["generality"]
             for point in points_by_technique[technique]),
            default=0.0,
        )

    # PerfXplain offers the best combined precision+generality frontier point.
    perfxplain = best_combined("PerfXplain")
    assert perfxplain >= best_combined("SimButDiff") - 0.15
    assert max(p["precision"] for p in points_by_technique["PerfXplain"]) >= 0.7
