"""Batch-session throughput: N queries through one session vs. N cold facades.

The session layer (:class:`repro.core.api.PerfXplainSession`) exists so a
service answering heavy query traffic against a shared execution log pays
for schema inference, pair selection and training-example construction once
per clause signature instead of once per query.  This benchmark quantifies
that: it answers the same mixed batch of job-level queries (a) the cold
way — a fresh :class:`~repro.core.api.PerfXplain` facade per query — and
(b) through one session's ``explain_batch``, and asserts the batch path is
at least 2x faster while producing explanations for every query.

Baseline numbers are recorded in CHANGES.md so later performance PRs have a
trajectory to beat.
"""

from __future__ import annotations

import os
import time

from repro.core.api import PerfXplain, PerfXplainSession

#: Required speedup.  Relaxed on shared CI runners, where a noisy neighbor
#: can skew either phase of the wall-clock comparison.
SPEEDUP_FLOOR = 1.3 if os.environ.get("CI") else 2.0

#: How many queries make up the batch (two clause signatures, interleaved).
NUM_QUERIES = 12

_WHY_SLOWER = """
    FOR JOBS ?, ?
    DESPITE numinstances_isSame = T AND pig_script_isSame = T
    OBSERVED duration_compare = GT
    EXPECTED duration_compare = SIM
"""

_WHY_LAST_TASK_FASTER = """
    FOR TASKS ?, ?
    DESPITE job_id_isSame = T AND task_type_isSame = T
        AND inputsize_compare = SIM AND hostname_isSame = T
    OBSERVED duration_compare = GT
    EXPECTED duration_compare = SIM
"""


def _batch_queries():
    texts = [_WHY_SLOWER, _WHY_LAST_TASK_FASTER]
    return [texts[index % len(texts)] for index in range(NUM_QUERIES)]


def test_batch_session_beats_cold_facades(benchmark, experiment_log):
    queries = _batch_queries()

    start = time.perf_counter()
    cold_explanations = [
        PerfXplain(experiment_log, seed=index).explain(query, width=3)
        for index, query in enumerate(queries)
    ]
    cold_seconds = time.perf_counter() - start

    def run_batch():
        session = PerfXplainSession(experiment_log, seed=0)
        return session.explain_batch(queries, width=3, collect_errors=False)

    report = benchmark.pedantic(run_batch, rounds=1, iterations=1)
    batch_seconds = benchmark.stats.stats.mean

    assert len(report) == NUM_QUERIES
    assert all(entry.ok for entry in report)
    for cold, entry in zip(cold_explanations, report):
        assert entry.explanation is not None
        assert entry.explanation.width >= 1
        assert cold.width >= 1

    speedup = cold_seconds / batch_seconds
    benchmark.extra_info["num_queries"] = NUM_QUERIES
    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 3)
    benchmark.extra_info["batch_seconds"] = round(batch_seconds, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)

    print(f"\nBatch throughput — {NUM_QUERIES} queries on the "
          f"{experiment_log.num_jobs}-job log:")
    print(f"  cold facades : {cold_seconds:.2f} s")
    print(f"  one session  : {batch_seconds:.2f} s")
    print(f"  speedup      : {speedup:.1f}x")

    assert speedup >= SPEEDUP_FLOOR, (
        f"batch session should be at least {SPEEDUP_FLOOR}x faster than cold "
        f"facades (got {speedup:.2f}x)"
    )
