"""Figure 3(b): explanation precision vs. width for WhySlowerDespiteSameNumInstances.

The job-level query: despite running the same Pig script on the same number
of instances, one job was much slower than the other.  The paper's headline
comparison: at width 3 PerfXplain achieves at least ~40% higher precision
than both naive techniques; the shape we assert is that PerfXplain wins at
width 3 and that its precision increases with width.
"""

from __future__ import annotations

from conftest import WIDTHS, bench_repetitions, record_series

from repro.core.evaluation import evaluate_precision_vs_width


def test_fig3b_precision_vs_width(benchmark, experiment_log, whyslower_query, techniques):
    def run_sweep():
        return evaluate_precision_vs_width(
            experiment_log,
            whyslower_query,
            techniques,
            widths=WIDTHS,
            repetitions=bench_repetitions(),
            seed=2,
        )

    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    record_series(benchmark, sweep, "precision")
    record_series(benchmark, sweep, "generality")

    print("\nFigure 3(b) — WhySlowerDespiteSameNumInstances: precision vs. width")
    print(sweep.format_table("precision"))

    perfxplain_w0 = sweep.mean("PerfXplain", 0)
    perfxplain_w3 = sweep.mean("PerfXplain", 3)
    assert perfxplain_w3 > perfxplain_w0
    # PerfXplain at least matches both baselines at width 3 (the paper shows
    # a >=40% gap on its EC2 log; the simulator's gap is smaller but the
    # ordering is preserved).
    assert perfxplain_w3 >= sweep.mean("RuleOfThumb", 3) - 0.05
    assert perfxplain_w3 >= sweep.mean("SimButDiff", 3) - 0.05
    assert perfxplain_w3 > 0.7
