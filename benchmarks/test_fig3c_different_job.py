"""Figure 3(c): explaining a job type that is absent from the training log.

The training log contains only simple-groupby.pig jobs (plus the pair of
interest, which runs simple-filter.pig); explanations are evaluated on the
simple-filter.pig jobs.  The paper finds PerfXplain's precision drops only
slightly (about 0.04 on average, and by width 3 the gap to the in-domain
result shrinks to a few percent).
"""

from __future__ import annotations

from conftest import WIDTHS, bench_repetitions, record_series

from repro.core.evaluation import evaluate_cross_workload, evaluate_precision_vs_width


def test_fig3c_train_on_groupby_explain_filter(benchmark, experiment_log, whyslower_query,
                                               techniques):
    def run_sweep():
        cross = evaluate_cross_workload(
            experiment_log,
            whyslower_query,
            train_script="simple-groupby.pig",
            test_script="simple-filter.pig",
            techniques=techniques,
            widths=WIDTHS,
            repetitions=bench_repetitions(),
            seed=3,
        )
        return cross

    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    record_series(benchmark, sweep, "precision")

    print("\nFigure 3(c) — log contains only simple-groupby.pig jobs")
    print(sweep.format_table("precision"))

    perfxplain_w3 = sweep.mean("PerfXplain", 3)
    perfxplain_w0 = sweep.mean("PerfXplain", 0)
    # Even trained on a different job type, the explanation still helps.
    assert perfxplain_w3 > perfxplain_w0
    assert perfxplain_w3 > 0.6
