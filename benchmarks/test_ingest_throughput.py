"""Ingestion throughput: streaming real-log adapters must stay fast.

The adapters in :mod:`repro.ingest` parse real Hadoop JobHistory and Spark
event-log files line-at-a-time — no whole-file buffering — so ingesting a
large history directory is bounded by JSON decoding, not by memory.  This
benchmark synthesises a large Spark event log and a large JobHistory file
in memory and asserts a floor on parsed events per second, so a future
"one more pass over the payload" change cannot silently make ingestion
quadratic or pathologically slow.

Baseline numbers are recorded in CHANGES.md so later performance PRs have
a trajectory to beat.
"""

from __future__ import annotations

import json
import os
import time

from repro.ingest import parse_hadoop_jhist, parse_spark_eventlog

#: Parsed events per second, floor.  Local runs comfortably exceed this;
#: shared CI runners get slack for noisy neighbors.
EVENTS_PER_SECOND_FLOOR = 4_000 if os.environ.get("CI") else 12_000

#: Tasks per synthetic application/job — large enough that per-line work
#: dominates fixed setup cost.
TASKS = 4_000


def _spark_lines(tasks: int) -> list[str]:
    environment = {
        "Event": "SparkListenerEnvironmentUpdate",
        "Spark Properties": {"spark.executor.instances": "8"},
    }
    app_start = {
        "Event": "SparkListenerApplicationStart",
        "App Name": "bench",
        "App ID": "app-bench-0001",
        "Timestamp": 1_700_000_000_000,
        "User": "bench",
    }
    lines = [
        json.dumps({"Event": "SparkListenerLogStart", "Spark Version": "3.3.0"}),
        json.dumps(environment),
        json.dumps(app_start),
    ]
    for index in range(tasks):
        event = {
            "Event": "SparkListenerTaskEnd",
            "Stage ID": index % 4,
            "Task Type": "ShuffleMapTask" if index % 4 < 3 else "ResultTask",
            "Task Info": {
                "Task ID": index,
                "Attempt": 0,
                "Host": f"exec-{index % 16}",
                "Launch Time": 1_700_000_000_000 + index,
                "Finish Time": 1_700_000_010_000 + index * 2,
                "Failed": False,
                "Killed": False,
            },
            "Task Metrics": {
                "Executor Run Time": 9_000 + index % 500,
                "JVM GC Time": index % 100,
                "Input Metrics": {
                    "Bytes Read": 1_000_000 + index,
                    "Records Read": 10_000 + index,
                },
                "Shuffle Write Metrics": {
                    "Shuffle Bytes Written": 500_000,
                    "Shuffle Records Written": 5_000,
                },
            },
        }
        lines.append(json.dumps(event))
    end = {"Event": "SparkListenerApplicationEnd", "Timestamp": 1_700_000_100_000}
    lines.append(json.dumps(end))
    return lines


def _jhist_lines(tasks: int) -> list[str]:
    job_id = "job_1700000000000_0001"
    submitted = {
        "jobid": job_id,
        "jobName": "bench.pig",
        "userName": "bench",
        "submitTime": 1_700_000_000_000,
    }
    inited = {
        "jobid": job_id,
        "launchTime": 1_700_000_001_000,
        "totalMaps": tasks,
        "totalReduces": 0,
    }
    lines = [
        "Avro-Json",
        json.dumps({"type": "record", "name": "Event"}),
        json.dumps({"type": "JOB_SUBMITTED", "event": {"w": submitted}}),
        json.dumps({"type": "JOB_INITED", "event": {"w": inited}}),
    ]
    for index in range(tasks):
        task_id = f"task_1700000000000_0001_m_{index:06d}"
        started = {
            "taskid": task_id,
            "taskType": "MAP",
            "startTime": 1_700_000_002_000 + index,
        }
        count = {"name": "HDFS_BYTES_READ", "value": 1_000_000 + index}
        group = {"name": "FileSystemCounter", "counts": [count]}
        finished = {
            "taskid": task_id,
            "taskType": "MAP",
            "finishTime": 1_700_000_012_000 + index * 2,
            "counters": {"groups": [group]},
        }
        lines.append(json.dumps({"type": "TASK_STARTED", "event": {"w": started}}))
        lines.append(json.dumps({"type": "TASK_FINISHED", "event": {"w": finished}}))
    ended = {
        "jobid": job_id,
        "finishTime": 1_700_000_100_000,
        "totalCounters": {"groups": []},
    }
    lines.append(json.dumps({"type": "JOB_FINISHED", "event": {"w": ended}}))
    return lines


class TestIngestThroughput:
    def test_spark_adapter_meets_the_event_rate_floor(self):
        lines = _spark_lines(TASKS)
        started = time.perf_counter()
        jobs, tasks, stats = parse_spark_eventlog(lines)
        elapsed = time.perf_counter() - started
        assert len(jobs) == 1 and len(tasks) == TASKS
        assert stats.clean
        rate = stats.events / elapsed
        print(
            f"\nspark ingest: {stats.events} events in {elapsed:.3f}s "
            f"({rate:,.0f} events/s; floor {EVENTS_PER_SECOND_FLOOR:,})"
        )
        assert rate >= EVENTS_PER_SECOND_FLOOR

    def test_hadoop_adapter_meets_the_event_rate_floor(self):
        lines = _jhist_lines(TASKS)
        started = time.perf_counter()
        jobs, tasks, stats = parse_hadoop_jhist(lines)
        elapsed = time.perf_counter() - started
        assert len(jobs) == 1 and len(tasks) == TASKS
        rate = stats.events / elapsed
        print(
            f"\njhist ingest: {stats.events} events in {elapsed:.3f}s "
            f"({rate:,.0f} events/s; floor {EVENTS_PER_SECOND_FLOOR:,})"
        )
        assert rate >= EVENTS_PER_SECOND_FLOOR
