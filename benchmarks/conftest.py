"""Shared fixtures for the reproduction benchmarks.

Each benchmark file regenerates one table or figure from the paper's
evaluation section.  The workload scale is controlled by the
``REPRO_BENCH_SCALE`` environment variable:

* ``small`` (default) — the 96-configuration small grid, 3 repetitions of
  every cross-validation split; runs in a few minutes on a laptop;
* ``paper`` — the full 540-configuration grid of Table 2 and 10 repetitions,
  matching the paper's setup (much slower).

Every benchmark prints the rows/series the corresponding figure reports and
stores them in ``benchmark.extra_info`` so they end up in the
``--benchmark-json`` output.
"""

from __future__ import annotations

import os
import random
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.baselines import RuleOfThumbExplainer, SimButDiffExplainer
from repro.core.explainer import PerfXplainExplainer
from repro.core.features import infer_schema
from repro.core.queries import (
    find_pair_of_interest,
    why_last_task_faster,
    why_slower_despite_same_num_instances,
)
from repro.workloads.grid import build_experiment_log, paper_grid, small_grid

#: Widths swept in the width-based figures (the paper uses 0-5).
WIDTHS = (0, 1, 2, 3, 4, 5)


def bench_scale() -> str:
    """The configured benchmark scale (``small`` or ``paper``)."""
    return os.environ.get("REPRO_BENCH_SCALE", "small").lower()


def bench_repetitions() -> int:
    """Cross-validation repetitions at the configured scale."""
    return 10 if bench_scale() == "paper" else 3


@pytest.fixture(scope="session")
def experiment_log():
    """The execution log used by every benchmark (built once)."""
    grid = paper_grid() if bench_scale() == "paper" else small_grid()
    return build_experiment_log(grid, seed=7)


@pytest.fixture(scope="session")
def job_schema(experiment_log):
    return infer_schema(experiment_log.jobs)


@pytest.fixture(scope="session")
def task_schema(experiment_log):
    return infer_schema(experiment_log.tasks)


@pytest.fixture(scope="session")
def whyslower_query(experiment_log, job_schema):
    """WhySlowerDespiteSameNumInstances bound to a pair of interest."""
    query = why_slower_despite_same_num_instances()
    pair = find_pair_of_interest(experiment_log, query, schema=job_schema,
                                 rng=random.Random(0))
    return query.with_pair(*pair)


@pytest.fixture(scope="session")
def whylasttaskfaster_query(experiment_log, task_schema):
    """WhyLastTaskFaster bound to a pair of interest."""
    query = why_last_task_faster()
    pair = find_pair_of_interest(experiment_log, query, schema=task_schema,
                                 rng=random.Random(0))
    return query.with_pair(*pair)


@pytest.fixture()
def techniques():
    """Fresh instances of the three explanation techniques."""
    return [PerfXplainExplainer(), RuleOfThumbExplainer(), SimButDiffExplainer()]


def record_series(benchmark, sweep, metric: str = "precision") -> None:
    """Store a sweep's per-technique series in the benchmark report."""
    series = {}
    for technique in sweep.techniques():
        series[technique] = [
            {"width": width, "mean": round(mean, 4), "std": round(std, 4)}
            for width, mean, std in sweep.series(technique, metric)
        ]
    benchmark.extra_info[metric] = series
