"""Concurrent reads to ONE log vs. the serialized (mutex) baseline.

PR 9's tentpole: read traffic to a single log no longer queues on a
per-log mutex.  Three claims, each asserted here:

* **Throughput** — four service threads running a mixed warm/cold batch
  against one log beat the same service in ``serialize_reads=True`` mode
  (the old one-query-at-a-time behaviour) by a wall-clock floor, with
  every response bit-identical between the two modes.  The cold queries
  shard their candidate filtering to worker processes
  (``pair_workers``), so reader overlap buys real parallelism: while one
  thread waits on its shards, others answer warm hits that the old mutex
  would have queued behind the cold query (head-of-line blocking).
* **Shard overlap** — two threads driving sharded-pair generations hold
  the (formerly global-lock-serialised) shard pool *together*: a barrier
  between the two in-flight generations passes, and the pool's
  ``max_concurrent_generations`` counter records the overlap.
* **Pool reuse** — repeat sharded queries against an unchanged log skip
  the per-query process-pool spin-up: the ``reuses`` counter moves, the
  ``forks`` counter does not.

The wall-clock floor is hardware-gated like the other sharding
benchmarks: identity and counter assertions always run, but a one-core
container cannot demonstrate a parallel speedup, so the floor is skipped
there (CI precedent: ``test_large_log_throughput.py``).
"""

from __future__ import annotations

import os
import random
import threading
import time

import pytest

from repro.core.api import PerfXplain
from repro.core.examples import pair_kernel_for
from repro.core.explainer import PerfXplainConfig
from repro.core.features import FeatureKind, FeatureSchema, infer_schema
from repro.core.pairkernel import blocking_group_indices
from repro.core.pairshard import ShardPool, _fork_context, default_shard_pool
from repro.core.pxql.parser import parse_query
from repro.logs.records import TaskRecord
from repro.logs.store import ExecutionLog
from repro.service import (
    BatchRequest,
    LogCatalog,
    PerfXplainService,
    QueryRequest,
    QueryResponse,
)

TASKS = 20_000
GROUP_SIZE = 10
PAIR_WORKERS = 2
SERVICE_THREADS = 4

QUERY_STRICT = """
    FOR TASKS ?, ?
    DESPITE pig_script_isSame = T AND operator_isSame = T AND inputsize_isSame = T
    OBSERVED duration_compare = GT
    EXPECTED duration_compare = SIM
"""

QUERY_LOOSE = """
    FOR TASKS ?, ?
    DESPITE pig_script_isSame = T AND operator_isSame = T
    OBSERVED duration_compare = GT
    EXPECTED duration_compare = SIM
"""


def _speedup_floor() -> float | None:
    """The asserted concurrent-read speedup, or ``None`` if hardware can't."""
    cores = os.cpu_count() or 1
    if os.environ.get("CI"):
        return 1.3 if cores >= 2 else None
    return 2.0 if cores >= 4 else None


def _make_tasks(count: int) -> list[TaskRecord]:
    """``count`` tasks in blocking groups of ~``GROUP_SIZE`` noisy replicas."""
    rng = random.Random(0)
    hosts = [f"host-{index}" for index in range(40)]
    operators = ("MAP", "REDUCE", "FILTER", "JOIN")
    tasks = []
    for index in range(count):
        group = index // GROUP_SIZE
        features = {
            "pig_script": f"script-{group % 97}.pig",
            "operator": operators[group % 4],
            "host": hosts[rng.randrange(40)],
            "inputsize": 1000.0 * (1 + group % 13) * (1.0 + rng.gauss(0.0, 0.01)),
            "memory": float(rng.choice([512, 1024, 2048])),
        }
        tasks.append(
            TaskRecord(
                task_id=f"t{index}",
                job_id=f"j{group}",
                features=features,
                duration=10.0 * (1 + group % 7) * (1.0 + rng.gauss(0.0, 0.08)),
            )
        )
    return tasks


@pytest.fixture(scope="module")
def read_log():
    return ExecutionLog(tasks=_make_tasks(TASKS))


@pytest.fixture(scope="module")
def read_config():
    return PerfXplainConfig(sample_size=400, pair_workers=PAIR_WORKERS)


def _request_mix() -> list[QueryRequest]:
    """Mixed warm/cold traffic against ONE log.

    Two clause signatures (two cold matrix builds) fanned into several
    widths (cold explanations over a warm matrix), each shape repeated
    (warm cache hits / in-flight dedup) — interleaved so warm requests
    land behind cold ones, the head-of-line pattern the mutex punished.
    """
    shapes = [
        QueryRequest(log="live", query=QUERY_STRICT, width=1),
        QueryRequest(log="live", query=QUERY_LOOSE, width=1),
        QueryRequest(log="live", query=QUERY_STRICT, width=2),
        QueryRequest(log="live", query=QUERY_LOOSE, width=2),
        QueryRequest(log="live", query=QUERY_STRICT, width=3),
        QueryRequest(log="live", query=QUERY_LOOSE, width=3),
    ]
    mix: list[QueryRequest] = []
    for _ in range(3):
        mix.extend(shapes)
    return mix


def _comparable(response):
    assert isinstance(response, QueryResponse), response
    entry = response.entry
    return (
        entry.query,
        entry.first_id,
        entry.second_id,
        entry.technique,
        entry.width,
        entry.explanation.to_dict(),
    )


def _run_batch(log, config, mix, serialize_reads):
    catalog = LogCatalog(config=config, seed=0)
    catalog.register("live", log)
    with PerfXplainService(
        catalog, max_workers=SERVICE_THREADS, serialize_reads=serialize_reads
    ) as service:
        start = time.perf_counter()
        response = service.execute_batch(BatchRequest(requests=tuple(mix)))
        elapsed = time.perf_counter() - start
        metrics = service.metrics()
    return response, elapsed, metrics


def test_concurrent_reads_beat_serialized_baseline(
    benchmark, read_log, read_config
):
    mix = _request_mix()

    # Warm what both modes share — the log's cached record block and the
    # forked shard workers — so the timed phases compare lock disciplines,
    # not one-time block encoding or the first fork.
    warmup = PerfXplain(read_log, config=read_config, seed=0)
    warmup.explain(QUERY_STRICT, width=1)

    serialized, serialized_seconds, _ = _run_batch(
        read_log, read_config, mix, serialize_reads=True
    )

    def run_concurrent():
        return _run_batch(read_log, read_config, mix, serialize_reads=False)

    concurrent, concurrent_seconds, metrics = benchmark.pedantic(
        run_concurrent, rounds=1, iterations=1
    )

    # Bit-identity: the reader-writer mode answers exactly what the
    # serialized (sequential-oracle) mode answers, request for request.
    assert concurrent.ok and serialized.ok
    assert len(concurrent.responses) == len(mix)
    for old, new in zip(serialized.responses, concurrent.responses):
        assert _comparable(new) == _comparable(old)

    pool_stats = metrics["shard_pool"]
    latency = metrics["latency_ms"].get("query", {})
    speedup = serialized_seconds / concurrent_seconds
    cores = os.cpu_count() or 1
    floor = _speedup_floor()

    benchmark.extra_info["requests"] = len(mix)
    benchmark.extra_info["tasks"] = TASKS
    benchmark.extra_info["service_threads"] = SERVICE_THREADS
    benchmark.extra_info["serialized_seconds"] = round(serialized_seconds, 3)
    benchmark.extra_info["concurrent_seconds"] = round(concurrent_seconds, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["query_p99_ms"] = round(latency.get("p99_ms", 0.0), 1)
    benchmark.extra_info["pool_reuses"] = pool_stats["reuses"]

    print(f"\nConcurrent reads, one {TASKS}-task log, {len(mix)} requests:")
    print(f"  serialized (mutex) : {serialized_seconds:.2f} s")
    print(f"  reader-writer      : {concurrent_seconds:.2f} s")
    print(f"  speedup            : {speedup:.2f}x")
    print(f"  query p99          : {latency.get('p99_ms', 0.0):.0f} ms")
    if floor is None:
        print(f"  floor skipped      : only {cores} core(s) available")
        return
    assert speedup >= floor, (
        f"concurrent reads should be at least {floor}x faster than the "
        f"serialized baseline on {cores} cores (got {speedup:.2f}x)"
    )


@pytest.mark.skipif(
    _fork_context() is None, reason="requires the fork start method"
)
def test_sharded_generations_overlap_not_serialised(benchmark, read_log):
    """Two threads hold the shard pool together — no global-lock queueing."""
    query = parse_query(QUERY_STRICT)
    schema = infer_schema(read_log.tasks)
    kernel = pair_kernel_for(read_log, query, schema, PerfXplainConfig().pair_config)
    groups = blocking_group_indices(kernel.block, ["pig_script", "operator"])
    pool = ShardPool()
    both_inside = threading.Barrier(2, timeout=60.0)
    batch_counts: dict[int, int] = {}
    errors: list[BaseException] = []

    def generation(slot: int) -> None:
        try:
            from repro.core.pairshard import iter_evaluated_batches

            stream = iter_evaluated_batches(
                kernel, query, groups, None, 0,
                workers=PAIR_WORKERS, batch_size=256, pool=pool,
            )
            consumed = [next(stream)]
            both_inside.wait()  # both generations are mid-flight here
            consumed.extend(stream)
            batch_counts[slot] = len(consumed)
        except BaseException as error:  # pragma: no cover - surfaced below
            errors.append(error)

    def run_overlapped():
        threads = [
            threading.Thread(target=generation, args=(slot,)) for slot in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)

    benchmark.pedantic(run_overlapped, rounds=1, iterations=1)
    stats = pool.stats()
    pool.shutdown()

    assert not errors
    assert batch_counts[0] == batch_counts[1] > 0
    assert stats["max_concurrent_generations"] >= 2, (
        "two sharded generations never overlapped — reads are still "
        "serialising on shared shard state"
    )
    assert stats["forks"] == 1  # the second generation joined, not re-forked
    benchmark.extra_info["max_concurrent_generations"] = stats[
        "max_concurrent_generations"
    ]


def test_repeat_sharded_queries_reuse_the_pool(benchmark, read_log, read_config):
    """Repeat queries on an unchanged log skip the pool spin-up."""
    if _fork_context() is None:  # pragma: no cover - non-POSIX platforms
        pytest.skip("requires the fork start method")
    before = default_shard_pool().stats()
    catalog = LogCatalog(config=read_config, seed=0)
    catalog.register("live", read_log)

    def run_repeats():
        # Two clause signatures: each pays its own sharded matrix build,
        # so the second proves the pool carried over between generations.
        with PerfXplainService(catalog, max_workers=2) as service:
            responses = [
                service.execute(QueryRequest(log="live", query=text, width=1))
                for text in (QUERY_STRICT, QUERY_LOOSE, QUERY_STRICT)
            ]
        return responses

    responses = benchmark.pedantic(run_repeats, rounds=1, iterations=1)
    assert all(isinstance(response, QueryResponse) for response in responses)
    after = default_shard_pool().stats()

    forks = after["forks"] - before["forks"]
    reuses = after["reuses"] - before["reuses"]
    benchmark.extra_info["forks"] = forks
    benchmark.extra_info["reuses"] = reuses
    print(f"\nShard-pool reuse over 3 repeat queries: forks={forks} reuses={reuses}")
    assert forks <= 1, "an unchanged log must not re-fork per query"
    assert reuses >= 1, "repeat sharded queries should reuse the live pool"
