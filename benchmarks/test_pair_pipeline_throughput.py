"""Pair-pipeline throughput: columnar kernels vs the dict reference path.

End-to-end ``construct_training_examples`` on a multi-thousand-task log —
the dominant cost of answering a fresh clause signature.  The columnar
pipeline (cached :class:`~repro.logs.store.RecordBlock`, vectorised clause
masks over batched candidate index pairs, column-at-a-time feature
derivation) is measured against the frozen pair-at-a-time dict path of
:mod:`repro.core.pairref`, which allocates a feature dict per candidate
pair.  Both paths share the hash-based candidate subsampling and the
exact-size balanced sampling, so the comparison isolates the columnar
re-layout — and the outputs are asserted *identical*, example by example.

The log replicates the small grid's task log with deterministic noise:
replicas keep their job/type/host (so blocking groups grow and the
quadratic candidate space actually bites, the regime the skew/straggler
literature motivates), input sizes jitter by ~1% (still SIM under the 10%
rule) and durations by ~8% (splitting GT from SIM labels).

Baseline numbers are recorded in CHANGES.md so later performance PRs have a
trajectory to beat.
"""

from __future__ import annotations

import os
import random
import time

from repro.core.examples import construct_training_examples
from repro.core.features import infer_schema
from repro.core.pairref import construct_training_examples_reference
from repro.core.queries import why_last_task_faster
from repro.logs.records import TaskRecord
from repro.logs.store import ExecutionLog

#: Required speedup.  Relaxed on shared CI runners, where a noisy neighbor
#: can skew either side of the wall-clock comparison.
SPEEDUP_FLOOR = 1.5 if os.environ.get("CI") else 3.0

#: Noisy task-log replicas appended per original task.  Replicas share the
#: original's job/type/host, so blocking-group sizes scale linearly and the
#: candidate pair space quadratically (~650k candidates at 13).
REPLICAS = 13

#: Relative noise on input sizes (stays SIM) and durations (splits labels).
INPUT_NOISE = 0.01
DURATION_NOISE = 0.08


def _expanded_task_log(base: ExecutionLog) -> ExecutionLog:
    rng = random.Random(0)
    log = ExecutionLog(jobs=list(base.jobs), tasks=list(base.tasks))
    for task in base.tasks:
        for replica in range(REPLICAS):
            features = dict(task.features)
            inputsize = features.get("inputsize")
            if isinstance(inputsize, (int, float)):
                features["inputsize"] = float(inputsize) * (
                    1.0 + rng.gauss(0.0, INPUT_NOISE)
                )
            log.add_task(
                TaskRecord(
                    task_id=f"{task.task_id}__r{replica}",
                    job_id=task.job_id,
                    features=features,
                    duration=task.duration * (1.0 + rng.gauss(0.0, DURATION_NOISE)),
                )
            )
    return log


def test_columnar_pair_pipeline_beats_dict_path(benchmark, experiment_log):
    log = _expanded_task_log(experiment_log)
    schema = infer_schema(log.tasks)
    query = why_last_task_faster()

    start = time.perf_counter()
    reference_examples = construct_training_examples_reference(
        log, query, schema, rng=random.Random(0)
    )
    reference_seconds = time.perf_counter() - start

    def construct_columnar():
        return construct_training_examples(log, query, schema, rng=random.Random(0))

    kernel_examples = benchmark.pedantic(construct_columnar, rounds=1, iterations=1)
    kernel_seconds = benchmark.stats.stats.mean

    # The speedup must not come from constructing a different training set:
    # ids, labels and full feature vectors have to match exactly.
    assert len(kernel_examples) == len(reference_examples)
    for kernel_example, reference_example in zip(kernel_examples, reference_examples):
        assert kernel_example == reference_example

    speedup = reference_seconds / kernel_seconds
    benchmark.extra_info["tasks"] = len(log.tasks)
    benchmark.extra_info["examples"] = len(kernel_examples)
    benchmark.extra_info["reference_seconds"] = round(reference_seconds, 3)
    benchmark.extra_info["kernel_seconds"] = round(kernel_seconds, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)

    print(
        f"\nPair-pipeline throughput — {len(log.tasks)} tasks, "
        f"{len(kernel_examples)} examples:"
    )
    print(f"  dict path : {reference_seconds:.2f} s")
    print(f"  columnar  : {kernel_seconds:.2f} s")
    print(f"  speedup   : {speedup:.1f}x")

    assert speedup >= SPEEDUP_FLOOR, (
        f"the columnar pair pipeline should be at least {SPEEDUP_FLOOR}x faster "
        f"than the dict reference path (got {speedup:.2f}x)"
    )
