"""Tree-fit throughput: the columnar training pipeline vs the frozen row path.

The columnar pipeline (:mod:`repro.ml.matrix`) encodes a training set once
— integer value codes, float arrays, one global sort per numeric column —
and fits :class:`repro.ml.decision_tree.DecisionTree` on index subsets with
prefix-count threshold sweeps.  The reference row path in
:mod:`repro.ml.rowpath` preserves the pre-refactor *data layout and
per-node work* — re-extracting and re-sorting every column at every node —
while sharing the live path's gain arithmetic and explicit tie-breaking,
so the comparison isolates exactly the columnar re-layout.  This benchmark
fits both on the same large task-level
dataset derived from the experiment grid, asserts the trees are
*identical* (the differential guarantee, not just statistically similar),
and asserts the columnar fit is at least 3x faster (1.5x on shared CI
runners).

The dataset adds deterministic multiplicative noise to the numeric task
features: the grid simulator emits quantized values, while real MapReduce
profiles carry continuous measurements (durations, byte counts), which is
exactly the high-cardinality regime where per-node re-sorting hurts most.

Baseline numbers are recorded in CHANGES.md so later performance PRs have a
trajectory to beat.
"""

from __future__ import annotations

import os
import random
import time

from repro.core.features import infer_schema
from repro.ml.decision_tree import DecisionTree, DecisionTreeNode
from repro.ml.rowpath import RowPathDecisionTree

#: Required speedup.  Relaxed on shared CI runners, where a noisy neighbor
#: can skew either side of the wall-clock comparison.
SPEEDUP_FLOOR = 1.5 if os.environ.get("CI") else 3.0

#: Rows to fit on (the task log is replicated with fresh noise to reach it).
TARGET_ROWS = 11_500

#: Tree shape: deep enough that per-node work dominates the one-off encode.
TREE_PARAMS = dict(max_depth=12, min_samples_split=4)

#: Relative noise applied to numeric features / the labeling target.
FEATURE_NOISE = 0.05
LABEL_NOISE = 0.10


def _training_data(log):
    """Labeled task rows: predict "slower than the median task"."""
    tasks = list(log.tasks)
    schema = infer_schema(tasks)
    numeric = {
        name: schema.is_numeric(name)
        for name in schema.names()
        if name != "duration"
    }
    durations = sorted(task.duration for task in tasks)
    median = durations[len(durations) // 2]
    replications = max(1, TARGET_ROWS // len(tasks))
    rng = random.Random(0)
    rows, labels = [], []
    for _ in range(replications):
        for task in tasks:
            row = {}
            for name, value in task.features.items():
                if name == "duration":
                    continue
                if (
                    numeric.get(name)
                    and isinstance(value, (int, float))
                    and not isinstance(value, bool)
                ):
                    row[name] = float(value) * (1.0 + rng.gauss(0.0, FEATURE_NOISE))
                else:
                    row[name] = value
            rows.append(row)
            labels.append(task.duration * (1.0 + rng.gauss(0.0, LABEL_NOISE)) > median)
    return rows, labels, numeric


def _signature(node: DecisionTreeNode | None):
    if node is None:
        return None
    if node.is_leaf:
        return ("leaf", node.prediction, node.probability)
    return (
        (node.split.feature, node.split.operator, node.split.value, node.split.gain),
        _signature(node.left),
        _signature(node.right),
    )


def test_columnar_fit_beats_row_path(benchmark, experiment_log):
    rows, labels, numeric = _training_data(experiment_log)

    start = time.perf_counter()
    row_tree = RowPathDecisionTree(**TREE_PARAMS).fit(rows, labels, numeric=numeric)
    rowpath_seconds = time.perf_counter() - start

    def fit_columnar():
        return DecisionTree(**TREE_PARAMS).fit(rows, labels, numeric=numeric)

    columnar_tree = benchmark.pedantic(fit_columnar, rounds=1, iterations=1)
    columnar_seconds = benchmark.stats.stats.mean

    # The speedup must not come from fitting a different tree: structures,
    # split gains and predictions have to match exactly.
    assert _signature(columnar_tree.root) == _signature(row_tree.root)
    probe = rows[:: max(1, len(rows) // 200)]
    for row in probe:
        assert columnar_tree.predict_proba(row) == row_tree.predict_proba(row)

    speedup = rowpath_seconds / columnar_seconds
    benchmark.extra_info["rows"] = len(rows)
    benchmark.extra_info["features"] = len(numeric)
    benchmark.extra_info["tree_depth"] = columnar_tree.depth()
    benchmark.extra_info["rowpath_seconds"] = round(rowpath_seconds, 3)
    benchmark.extra_info["columnar_seconds"] = round(columnar_seconds, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)

    print(f"\nTree-fit throughput — {len(rows)} rows x {len(numeric)} features, "
          f"depth {columnar_tree.depth()}:")
    print(f"  row path : {rowpath_seconds:.2f} s")
    print(f"  columnar : {columnar_seconds:.2f} s")
    print(f"  speedup  : {speedup:.1f}x")

    assert speedup >= SPEEDUP_FLOOR, (
        f"columnar tree fitting should be at least {SPEEDUP_FLOOR}x faster than "
        f"the row path (got {speedup:.2f}x)"
    )
