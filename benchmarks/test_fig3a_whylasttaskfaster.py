"""Figure 3(a): explanation precision vs. width for WhyLastTaskFaster.

The task-level query: despite belonging to the same job, processing similar
input, on the same host, the later task was faster.  The paper reports that
PerfXplain and RuleOfThumb reach ~0.85 precision by width 3 (pointing at
machine-load differences) while SimButDiff lags; the *shape* we check is
that PerfXplain's precision rises steeply with width and beats the width-0
baseline by a large margin.
"""

from __future__ import annotations

from conftest import WIDTHS, bench_repetitions, record_series

from repro.core.evaluation import evaluate_precision_vs_width


def test_fig3a_precision_vs_width(benchmark, experiment_log, whylasttaskfaster_query,
                                  techniques):
    def run_sweep():
        return evaluate_precision_vs_width(
            experiment_log,
            whylasttaskfaster_query,
            techniques,
            widths=WIDTHS,
            repetitions=bench_repetitions(),
            seed=1,
        )

    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    record_series(benchmark, sweep, "precision")
    record_series(benchmark, sweep, "generality")

    print("\nFigure 3(a) — WhyLastTaskFaster: precision vs. explanation width")
    print(sweep.format_table("precision"))

    perfxplain_w0 = sweep.mean("PerfXplain", 0)
    perfxplain_w3 = sweep.mean("PerfXplain", 3)
    # Width 0 is the base rate P(obs | des): rare, as in the paper (~0.03).
    assert perfxplain_w0 < 0.3
    # The learned explanation must lift precision far above the base rate.
    assert perfxplain_w3 > perfxplain_w0 + 0.2
    # PerfXplain is at least competitive with both baselines at width 3.
    for baseline in ("RuleOfThumb", "SimButDiff"):
        assert perfxplain_w3 >= sweep.mean(baseline, 3) - 0.1
