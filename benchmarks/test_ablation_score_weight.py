"""Ablation (beyond the paper): the precision/generality score weight.

Algorithm 1 scores candidate predicates by ``w * precision_rank +
(1 - w) * generality_rank`` with ``w = 0.8``.  This ablation sweeps ``w`` to
show the trade-off the paper describes: a precision-only score (w = 1.0)
yields narrow explanations, while a balanced score keeps generality higher
at a modest precision cost.
"""

from __future__ import annotations

from conftest import bench_repetitions

from repro.core.evaluation import evaluate_precision_vs_width
from repro.core.explainer import PerfXplainConfig, PerfXplainExplainer

WEIGHTS = (0.5, 0.8, 1.0)


def test_ablation_score_weight(benchmark, experiment_log, whyslower_query):
    def run_sweep():
        techniques = []
        for weight in WEIGHTS:
            explainer = PerfXplainExplainer(PerfXplainConfig(score_weight=weight))
            explainer.name = f"PerfXplain-w{weight:.1f}"
            techniques.append(explainer)
        return evaluate_precision_vs_width(
            experiment_log, whyslower_query, techniques, widths=(3,),
            repetitions=bench_repetitions(), seed=11,
        )

    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print("\nAblation — candidate-score weight (width 3)")
    print("weight".ljust(10) + "precision".ljust(14) + "generality")
    results = {}
    for weight in WEIGHTS:
        name = f"PerfXplain-w{weight:.1f}"
        precision = sweep.mean(name, 3, "precision")
        generality = sweep.mean(name, 3, "generality")
        results[name] = {"precision": round(precision, 4), "generality": round(generality, 4)}
        print(f"{weight:.1f}".ljust(10) + f"{precision:.3f}".ljust(14) + f"{generality:.3f}")
    benchmark.extra_info["by_weight"] = results

    # Every weighting produces a usable explanation.
    assert all(entry["precision"] > 0.5 for entry in results.values())


def test_ablation_sampling(benchmark, experiment_log, whyslower_query):
    """Ablation: balanced-sample size (Section 4.3's m = 2000 default)."""

    def run_sweep():
        techniques = []
        for sample_size in (200, 2000):
            explainer = PerfXplainExplainer(PerfXplainConfig(sample_size=sample_size))
            explainer.name = f"PerfXplain-m{sample_size}"
            techniques.append(explainer)
        return evaluate_precision_vs_width(
            experiment_log, whyslower_query, techniques, widths=(3,),
            repetitions=bench_repetitions(), seed=12,
        )

    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print("\nAblation — balanced-sample size (width 3)")
    results = {}
    for name in sweep.techniques():
        precision = sweep.mean(name, 3, "precision")
        results[name] = round(precision, 4)
        print(f"  {name}: precision={precision:.3f}")
    benchmark.extra_info["by_sample_size"] = results

    assert all(precision > 0.5 for precision in results.values())
