"""Table 3: relevance of the empty despite clause vs. a generated width-3 clause.

The paper reports that PerfXplain's automatically generated despite clause
raises relevance from 0.49 to 0.99 for WhyLastTaskFaster and from 0.24 to
0.72 for WhySlowerDespiteSameNumInstances (an improvement of up to 200%).
We check the same direction: the generated clause substantially increases
relevance over the empty clause for both queries.
"""

from __future__ import annotations

from conftest import bench_repetitions

from repro.core.evaluation import evaluate_despite_relevance, relevance_of_user_despite


def _relevance_before_after(log, query, seed):
    sweep = evaluate_despite_relevance(
        log, query, widths=(0, 3), repetitions=bench_repetitions(), seed=seed,
    )
    before = sweep.mean("PerfXplain-despite", 0, "relevance")
    after = sweep.mean("PerfXplain-despite", 3, "relevance")
    return before, after


def test_table3_despite_relevance(benchmark, experiment_log, whylasttaskfaster_query,
                                  whyslower_query):
    def run_table():
        rows = {}
        for name, query, seed in (
            ("WhyLastTaskFaster", whylasttaskfaster_query, 5),
            ("WhySlowerDespiteSameNumInstances", whyslower_query, 6),
        ):
            before, after = _relevance_before_after(experiment_log, query, seed)
            user = relevance_of_user_despite(
                experiment_log, query, repetitions=bench_repetitions(), seed=seed
            )
            rows[name] = {
                "relevance_empty_despite": round(before, 3),
                "relevance_generated_despite": round(after, 3),
                "relevance_user_despite": round(sum(user) / len(user), 3),
            }
        return rows

    rows = benchmark.pedantic(run_table, rounds=1, iterations=1)
    benchmark.extra_info["table3"] = rows

    print("\nTable 3 — relevance before/after the generated despite clause")
    print("query".ljust(36) + "empty".ljust(10) + "generated".ljust(12) + "user-specified")
    for name, row in rows.items():
        print(name.ljust(36)
              + f"{row['relevance_empty_despite']:.2f}".ljust(10)
              + f"{row['relevance_generated_despite']:.2f}".ljust(12)
              + f"{row['relevance_user_despite']:.2f}")

    for name, row in rows.items():
        assert row["relevance_generated_despite"] > row["relevance_empty_despite"], name
