"""Concurrent-service throughput: a mixed workload vs. cold facade calls.

The service layer (:mod:`repro.service`) exists so one long-lived process
can serve heavy query traffic over a catalog of execution logs: per-log
sessions keep record blocks, training matrices and whole explanations warm,
identical in-flight queries are deduplicated, and a thread pool interleaves
traffic across logs.  This benchmark quantifies that against the baseline a
service replaces — a cold :class:`~repro.core.api.PerfXplain` facade built
per query — on a mixed workload of repeated and novel queries spread over
two catalog logs.

Responses are asserted **bit-identical** to direct synchronous
:class:`~repro.core.api.PerfXplainSession` calls: concurrency and caching
must never change an answer.

Baseline numbers are recorded in CHANGES.md so later performance PRs have a
trajectory to beat.
"""

from __future__ import annotations

import os
import time

from repro.core.api import PerfXplain, PerfXplainSession
from repro.service import BatchRequest, LogCatalog, PerfXplainService, QueryRequest
from repro.workloads.grid import build_experiment_log, tiny_grid

#: Required speedup.  Relaxed on shared CI runners, where a noisy neighbor
#: can skew either phase of the wall-clock comparison.
SPEEDUP_FLOOR = 1.3 if os.environ.get("CI") else 2.0

_WHY_SLOWER = """
    FOR JOBS ?, ?
    DESPITE numinstances_isSame = T AND pig_script_isSame = T
    OBSERVED duration_compare = GT
    EXPECTED duration_compare = SIM
"""

_WHY_SLOWER_LOOSE = """
    FOR JOBS ?, ?
    DESPITE pig_script_isSame = T
    OBSERVED duration_compare = GT
    EXPECTED duration_compare = SIM
"""

_WHY_LAST_TASK_FASTER = """
    FOR TASKS ?, ?
    DESPITE job_id_isSame = T AND task_type_isSame = T
        AND inputsize_compare = SIM AND hostname_isSame = T
    OBSERVED duration_compare = GT
    EXPECTED duration_compare = SIM
"""


def _request_mix() -> list[QueryRequest]:
    """Repeated and novel queries interleaved across the two logs.

    Six distinct (log, clause-signature, width, technique) shapes, each
    asked several times — the traffic profile a debugging service sees:
    most questions repeat, a few are novel.
    """
    shapes = [
        QueryRequest(log="grid", query=_WHY_SLOWER, width=3),
        QueryRequest(log="grid", query=_WHY_LAST_TASK_FASTER, width=3),
        QueryRequest(log="grid", query=_WHY_SLOWER_LOOSE, width=2),
        QueryRequest(log="aux", query=_WHY_SLOWER, width=3),
        QueryRequest(log="aux", query=_WHY_SLOWER_LOOSE, width=2),
        QueryRequest(log="grid", query=_WHY_SLOWER, width=3, technique="simbutdiff"),
    ]
    repeats = [4, 4, 3, 4, 3, 2]
    mix: list[QueryRequest] = []
    for round_index in range(max(repeats)):
        for shape, count in zip(shapes, repeats):
            if round_index < count:
                mix.append(shape)
    return mix


def test_concurrent_service_beats_cold_facades(benchmark, experiment_log):
    aux_log = build_experiment_log(tiny_grid(), seed=23)
    logs = {"grid": experiment_log, "aux": aux_log}
    mix = _request_mix()

    # Sequential oracle: one direct synchronous session per log, fixed
    # seed 0 (the catalog default) — the ground truth every service
    # response must match bit-for-bit.
    oracle_sessions = {
        name: PerfXplainSession(log, seed=0) for name, log in logs.items()
    }
    oracle: dict[tuple, dict] = {}
    for request in mix:
        key = request.canonical_key()
        if key not in oracle:
            session = oracle_sessions[request.log]
            resolved = session.resolve(request.query)
            explanation = session.explain(
                resolved, width=request.width, technique=request.technique
            )
            oracle[key] = explanation.to_dict()

    # Cold baseline: a fresh facade per query, as scripted one-shot use
    # (or a service without the session/catalog layers) would pay.
    start = time.perf_counter()
    cold_explanations = [
        PerfXplain(logs[request.log], seed=0).explain(
            request.query, width=request.width, technique=request.technique
        )
        for request in mix
    ]
    cold_seconds = time.perf_counter() - start

    def run_service():
        catalog = LogCatalog()
        for name, log in logs.items():
            catalog.register(name, log)
        with PerfXplainService(catalog, max_workers=4) as service:
            response = service.execute_batch(BatchRequest(requests=tuple(mix)))
            return response, service.stats()

    response, stats = benchmark.pedantic(run_service, rounds=1, iterations=1)
    service_seconds = benchmark.stats.stats.mean

    assert len(response.responses) == len(mix)
    assert response.ok, [item for item in response.responses if not item.ok]
    for request, item in zip(mix, response.responses):
        assert item.entry.explanation is not None
        assert item.entry.explanation.to_dict() == oracle[request.canonical_key()], (
            "service response diverged from the direct session call"
        )
    # The cold path is a timing baseline only: a facade lets each technique
    # draw its own training sample (technique-offset rng), so its metrics
    # legitimately differ in the last decimals from the session path.
    assert all(cold.width >= 1 for cold in cold_explanations)
    assert stats["executed"] + stats["deduplicated"] == len(mix)
    assert stats["deduplicated"] > 0, "repeated queries should dedup or hit caches"

    speedup = cold_seconds / service_seconds
    benchmark.extra_info["num_requests"] = len(mix)
    benchmark.extra_info["num_logs"] = len(logs)
    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 3)
    benchmark.extra_info["service_seconds"] = round(service_seconds, 3)
    benchmark.extra_info["deduplicated"] = stats["deduplicated"]
    benchmark.extra_info["speedup"] = round(speedup, 2)

    print(
        f"\nService throughput — {len(mix)} mixed queries over "
        f"{logs['grid'].num_jobs}-job and {logs['aux'].num_jobs}-job logs:"
    )
    print(f"  cold facades       : {cold_seconds:.2f} s")
    print(f"  concurrent service : {service_seconds:.2f} s")
    print(f"  deduplicated       : {stats['deduplicated']} of {len(mix)}")
    print(f"  speedup            : {speedup:.1f}x")

    assert speedup >= SPEEDUP_FLOOR, (
        f"the concurrent service should be at least {SPEEDUP_FLOOR}x faster "
        f"than cold facades (got {speedup:.2f}x)"
    )
