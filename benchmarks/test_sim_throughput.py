"""Simulation throughput: event-core engine vs the frozen reference loop.

End-to-end ``build_experiment_log`` over a deliberately *contended* grid —
large clusters with full map-slot occupancy across several waves, the
regime where the reference loop's per-event, per-attempt rate recomputation
(each call scanning every running attempt for co-located ones) goes
quadratic in the number of running tasks.  The event-core engine caches
rates per instance and rescores only instances whose member set, member
phase kinds or background episode actually changed, emits the utilization
trace as raw columnar rows, and shares one monotonic background-load
cursor per instance; the sweep path around it (sampler, aggregates, record
batches) is shared by both engines, so the ratio isolates the engine
overhaul.

The speedup must not come from simulating something different: both sweeps
are asserted to produce **identical** execution logs, record by record.

Baseline numbers are recorded in CHANGES.md so later performance PRs have a
trajectory to beat.
"""

from __future__ import annotations

import os
import time

from repro.units import MB
from repro.workloads.grid import ParameterGrid, build_experiment_log

#: Required speedup.  Relaxed on shared CI runners, where a noisy neighbor
#: can skew either side of the wall-clock comparison.
SPEEDUP_FLOOR = 1.5 if os.environ.get("CI") else 3.0

#: Large clusters + small blocks: 42-83 maps over 32 map slots per job,
#: i.e. two to three full waves of 32 concurrently running attempts.
CONTENDED_GRID = ParameterGrid(
    num_instances=(16,),
    concat_factors=(60, 120),
    block_sizes=(64 * MB,),
    reduce_tasks_factors=(1.5,),
    io_sort_factors=(10,),
    script_names=("simple-filter.pig", "simple-groupby.pig"),
)


def test_event_engine_beats_reference_on_contended_sweep(benchmark):
    start = time.perf_counter()
    reference_log = build_experiment_log(CONTENDED_GRID, seed=7, engine="reference")
    reference_seconds = time.perf_counter() - start

    def sweep_event_engine():
        return build_experiment_log(CONTENDED_GRID, seed=7, engine="event")

    event_log = benchmark.pedantic(sweep_event_engine, rounds=1, iterations=1)
    event_seconds = benchmark.stats.stats.mean

    # The speedup must not come from simulating a different workload: every
    # job and task record has to match exactly.
    assert event_log.jobs == reference_log.jobs
    assert event_log.tasks == reference_log.tasks

    speedup = reference_seconds / event_seconds
    benchmark.extra_info["jobs"] = reference_log.num_jobs
    benchmark.extra_info["tasks"] = reference_log.num_tasks
    benchmark.extra_info["reference_seconds"] = round(reference_seconds, 3)
    benchmark.extra_info["event_seconds"] = round(event_seconds, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)

    print(
        f"\nSimulation throughput — {reference_log.num_jobs} contended jobs, "
        f"{reference_log.num_tasks} tasks:"
    )
    print(f"  reference loop : {reference_seconds:.2f} s")
    print(f"  event core     : {event_seconds:.2f} s")
    print(f"  speedup        : {speedup:.1f}x")

    assert speedup >= SPEEDUP_FLOOR, (
        f"the event-core engine should sweep the contended grid at least "
        f"{SPEEDUP_FLOOR}x faster than the reference loop (got {speedup:.2f}x)"
    )
