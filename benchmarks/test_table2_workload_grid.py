"""Table 2: the workload parameter grid and the log it produces.

The paper's Table 2 lists the varied parameters; this benchmark regenerates
the grid, runs it through the simulator (at the configured scale) and
reports summary statistics of the resulting execution log — the substrate
every other experiment consumes.
"""

from __future__ import annotations

import statistics

from conftest import bench_scale

from repro.units import GB, MB, format_size
from repro.workloads.excite import excite_dataset
from repro.workloads.grid import build_experiment_log, paper_grid, small_grid, tiny_grid


def test_table2_parameter_grid(benchmark, experiment_log):
    """Regenerate the Table 2 grid and summarise the collected log."""
    grid = paper_grid() if bench_scale() == "paper" else small_grid()

    def summarise():
        durations = [job.duration for job in experiment_log.jobs]
        return {
            "configurations": len(grid),
            "jobs": experiment_log.num_jobs,
            "tasks": experiment_log.num_tasks,
            "job_features": len(experiment_log.jobs[0].features),
            "task_features": len(experiment_log.tasks[0].features),
            "min_duration_s": round(min(durations), 1),
            "median_duration_s": round(statistics.median(durations), 1),
            "max_duration_s": round(max(durations), 1),
        }

    summary = benchmark.pedantic(summarise, rounds=1, iterations=1)
    benchmark.extra_info["table2"] = {
        "num_instances": list(grid.num_instances),
        "input_sizes": [format_size(excite_dataset(f).size_bytes)
                        for f in grid.concat_factors],
        "block_sizes": [format_size(b) for b in grid.block_sizes],
        "reduce_tasks_factors": list(grid.reduce_tasks_factors),
        "io_sort_factors": list(grid.io_sort_factors),
        "pig_scripts": list(grid.script_names),
    }
    benchmark.extra_info["log_summary"] = summary

    print("\nTable 2 — varied parameters")
    print(f"  Number of instances : {list(grid.num_instances)}")
    print(f"  Input file size     : "
          f"{[format_size(excite_dataset(f).size_bytes) for f in grid.concat_factors]}")
    print(f"  DFS block size      : {[format_size(b) for b in grid.block_sizes]}")
    print(f"  Reduce tasks factor : {list(grid.reduce_tasks_factors)}")
    print(f"  IO sort factor      : {list(grid.io_sort_factors)}")
    print(f"  Pig script          : {list(grid.script_names)}")
    print(f"Collected log: {summary}")

    assert summary["jobs"] == len(grid)
    # The paper records 36 job features and 64 task features; ours are the
    # same order of magnitude.
    assert summary["job_features"] >= 30
    assert summary["task_features"] >= 40


def test_table2_paper_grid_shape(benchmark):
    """The full paper grid has exactly 540 configurations (Table 2)."""
    def build_points():
        return paper_grid().points()

    points = benchmark(build_points)
    assert len(points) == 540
