"""Figure 4(a): relevance of generated despite clauses as their width grows.

For both PXQL queries (with the user's despite clause removed) PerfXplain
generates despite clauses of width 0-5; the paper shows relevance rising
quickly with width and staying high.
"""

from __future__ import annotations

from conftest import WIDTHS, bench_repetitions

from repro.core.evaluation import evaluate_despite_relevance


def test_fig4a_despite_relevance_vs_width(benchmark, experiment_log,
                                          whylasttaskfaster_query, whyslower_query):
    def run_sweeps():
        return {
            "WhyLastTaskFaster": evaluate_despite_relevance(
                experiment_log, whylasttaskfaster_query, widths=WIDTHS,
                repetitions=bench_repetitions(), seed=7,
            ),
            "WhySlowerDespiteSameNumInstances": evaluate_despite_relevance(
                experiment_log, whyslower_query, widths=WIDTHS,
                repetitions=bench_repetitions(), seed=8,
            ),
        }

    sweeps = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)

    print("\nFigure 4(a) — relevance of generated despite clauses vs. width")
    series = {}
    for name, sweep in sweeps.items():
        points = sweep.series("PerfXplain-despite", "relevance")
        series[name] = [
            {"width": width, "mean": round(mean, 4), "std": round(std, 4)}
            for width, mean, std in points
        ]
        rendered = "  ".join(f"w{width}={mean:.2f}" for width, mean, _ in points)
        print(f"  {name}: {rendered}")
    benchmark.extra_info["relevance"] = series

    for name, sweep in sweeps.items():
        empty = sweep.mean("PerfXplain-despite", 0, "relevance")
        generated = max(sweep.mean("PerfXplain-despite", width, "relevance")
                        for width in WIDTHS[1:])
        assert generated > empty, name
        assert generated > 0.5, name
