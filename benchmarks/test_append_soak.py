"""Append soak: a 100k-task log grown live in 1k batches under query load.

Two assertions back the O(delta) append pipeline:

* **soak** — the service grows a log from 1k to 100k tasks in 1k-record
  ``AppendRequest`` batches while query threads keep asking PXQL questions
  against the moving log.  Every response must be well-formed, the final
  log must hold every record exactly once, and the last answer must be
  bit-identical (explanation, pair, technique; ``elapsed_ms`` excluded) to
  a cold session over a freshly-built log with the same records.
* **speedup floor** — at 100k rows, folding a 1k append into the cached
  block (``extend_from``: code tables, masks and blocking groups grow in
  place) must beat rebuilding the block from scratch by at least
  :func:`_speedup_floor` (5x locally, 2x on noisy CI runners) — the
  difference between O(delta) maintenance and O(n) rebuild per append.
"""

from __future__ import annotations

import os
import random
import threading
import time

import pytest

from repro.core.api import PerfXplainSession
from repro.core.explainer import PerfXplainConfig
from repro.core.features import FeatureKind, FeatureSchema
from repro.logs.records import TaskRecord
from repro.logs.store import ExecutionLog, RecordBlock
from repro.service import (
    AppendRequest,
    AppendResponse,
    LogCatalog,
    PerfXplainService,
    QueryRequest,
    QueryResponse,
)

TASKS = 100_000
BATCH = 1_000
GROUP_SIZE = 10

#: Queries issued per hammer thread while the log grows.  Each query pays
#: a full matrix build (append invalidation is the point), so the count is
#: small and fixed rather than a busy loop.
QUERIES_PER_THREAD = 3
QUERY_THREADS = 2

QUERY = """
    FOR TASKS ?, ?
    DESPITE pig_script_isSame = T AND operator_isSame = T AND inputsize_isSame = T
    OBSERVED duration_compare = GT
    EXPECTED duration_compare = SIM
"""


def _speedup_floor() -> float:
    """Incremental-vs-rebuild floor: generous on noisy shared CI runners."""
    return 2.0 if os.environ.get("CI") else 5.0


def _make_tasks(count: int) -> list[TaskRecord]:
    """``count`` tasks in blocking groups of ~``GROUP_SIZE`` noisy replicas."""
    rng = random.Random(0)
    hosts = [f"host-{index}" for index in range(40)]
    operators = ("MAP", "REDUCE", "FILTER", "JOIN")
    tasks = []
    for index in range(count):
        group = index // GROUP_SIZE
        features = {
            "pig_script": f"script-{group % 97}.pig",
            "operator": operators[group % 4],
            "host": hosts[rng.randrange(40)],
            "inputsize": 1000.0 * (1 + group % 13) * (1.0 + rng.gauss(0.0, 0.01)),
            "memory": float(rng.choice([512, 1024, 2048])),
        }
        tasks.append(
            TaskRecord(
                task_id=f"t{index}",
                job_id=f"j{group}",
                features=features,
                duration=10.0 * (1 + group % 7) * (1.0 + rng.gauss(0.0, 0.08)),
            )
        )
    return tasks


@pytest.fixture(scope="module")
def all_tasks():
    return _make_tasks(TASKS)


@pytest.fixture(scope="module")
def task_schema():
    schema = FeatureSchema()
    for name in ("pig_script", "operator", "host"):
        schema.add(name, FeatureKind.NOMINAL)
    for name in ("inputsize", "memory", "duration"):
        schema.add(name, FeatureKind.NUMERIC)
    return schema


def test_append_soak_under_query_load(benchmark, all_tasks):
    config = PerfXplainConfig(sample_size=500)
    catalog = LogCatalog(config=config, seed=0)
    catalog.register("live", ExecutionLog(tasks=list(all_tasks[:BATCH])))
    bad_responses: list = []
    queries_answered = [0]

    with PerfXplainService(catalog, max_workers=QUERY_THREADS + 2) as service:

        def hammer():
            for _ in range(QUERIES_PER_THREAD):
                response = service.execute(QueryRequest(log="live", query=QUERY))
                if isinstance(response, QueryResponse):
                    queries_answered[0] += 1
                else:
                    bad_responses.append(response)

        def grow():
            threads = [
                threading.Thread(target=hammer) for _ in range(QUERY_THREADS)
            ]
            for thread in threads:
                thread.start()
            appended = 0
            for start in range(BATCH, TASKS, BATCH):
                response = service.execute(
                    AppendRequest(
                        log="live", tasks=tuple(all_tasks[start : start + BATCH])
                    )
                )
                if isinstance(response, AppendResponse):
                    appended += len(all_tasks[start : start + BATCH])
                else:
                    bad_responses.append(response)
            for thread in threads:
                thread.join()
            return appended

        appended = benchmark.pedantic(grow, rounds=1, iterations=1)
        soak_seconds = benchmark.stats.stats.mean

        assert bad_responses == []
        assert appended == TASKS - BATCH
        log = catalog.log("live")
        assert log.num_tasks == TASKS
        assert len({task.task_id for task in log.tasks}) == TASKS
        # The O(delta) path actually carried the growth: blocks built by
        # mid-growth queries were extended, not rebuilt, by later appends.
        stats = log.append_stats()
        assert stats["block_extends"] > 0
        assert stats["tasks_epoch"] == 0  # appends never moved the epoch

        final = service.execute(QueryRequest(log="live", query=QUERY))
        assert isinstance(final, QueryResponse)
        # Read latency while the log grew: every query raced appends on
        # the per-log reader-writer lock and paid append invalidation,
        # so the p99 here is the worst-case read experience under growth.
        # (identical in-flight queries dedup onto one execution, so the
        # sample count tracks executions, not answers)
        read_latency = service.metrics()["latency_ms"]["query"]
        assert read_latency["count"] >= 1
        assert read_latency["p99_ms"] > 0.0

    # Bit-identity: a cold session over a freshly-built log with the same
    # records gives the exact same answer (elapsed_ms excluded).
    oracle = PerfXplainSession(
        ExecutionLog(tasks=list(all_tasks)), config=config, seed=0
    )
    resolved = oracle.resolve(QUERY)
    explanation = oracle.explain(QUERY)
    assert (final.entry.first_id, final.entry.second_id) == (
        resolved.first_id,
        resolved.second_id,
    )
    assert final.entry.explanation.to_dict() == explanation.to_dict()

    benchmark.extra_info["tasks"] = TASKS
    benchmark.extra_info["batches"] = TASKS // BATCH - 1
    benchmark.extra_info["queries_answered"] = queries_answered[0]
    benchmark.extra_info["block_extends"] = stats["block_extends"]
    benchmark.extra_info["read_p50_ms"] = round(read_latency["p50_ms"], 1)
    benchmark.extra_info["read_p99_ms"] = round(read_latency["p99_ms"], 1)
    print(f"\nAppend soak — {TASKS} tasks in {BATCH}-record batches:")
    print(f"  growth under load : {soak_seconds:.2f} s")
    print(f"  queries answered  : {queries_answered[0]} (concurrent)")
    print(f"  block extends     : {stats['block_extends']}")
    print(f"  read p50 / p99    : {read_latency['p50_ms']:.0f} ms / "
          f"{read_latency['p99_ms']:.0f} ms (while growing)")


def test_incremental_extend_beats_rebuild(benchmark, all_tasks, task_schema):
    features = [name for name in task_schema.specs]
    blocking = ("pig_script", "operator")
    log = ExecutionLog(tasks=list(all_tasks[: TASKS - 10 * BATCH]))
    block = log.record_block(task_schema, kind="task")
    for name in features:
        block.column(name)
    block.blocking_groups(blocking)

    def grow_incrementally():
        for start in range(TASKS - 10 * BATCH, TASKS, BATCH):
            log.extend(tasks=all_tasks[start : start + BATCH])
            served = log.record_block(task_schema, kind="task")
            assert served is block
        return block

    benchmark.pedantic(grow_incrementally, rounds=1, iterations=1)
    per_append_seconds = benchmark.stats.stats.mean / 10

    start = time.perf_counter()
    rebuilt = RecordBlock(log.tasks, task_schema)
    for name in features:
        rebuilt.column(name)
    rebuilt.blocking_groups(blocking)
    rebuild_seconds = time.perf_counter() - start

    # The cheap path must still be the correct path.
    assert len(block) == len(rebuilt) == TASKS
    assert block.ids == rebuilt.ids
    for name in features:
        assert block.column(name).raw == rebuilt.column(name).raw
    grown_groups = block.blocking_groups(blocking)
    assert sorted(map(sorted, grown_groups)) == sorted(
        map(sorted, rebuilt.blocking_groups(blocking))
    )

    speedup = rebuild_seconds / per_append_seconds
    floor = _speedup_floor()
    benchmark.extra_info["tasks"] = TASKS
    benchmark.extra_info["per_append_ms"] = round(per_append_seconds * 1e3, 2)
    benchmark.extra_info["rebuild_ms"] = round(rebuild_seconds * 1e3, 2)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    print(f"\nIncremental append vs rebuild — {TASKS} tasks, {BATCH}-record batch:")
    print(f"  extend in place : {per_append_seconds * 1e3:.2f} ms per batch")
    print(f"  full rebuild    : {rebuild_seconds * 1e3:.2f} ms")
    print(f"  speedup         : {speedup:.1f}x (floor {floor}x)")
    assert speedup >= floor, (
        f"extending a cached block with a {BATCH}-record batch should be at "
        f"least {floor}x faster than rebuilding it over {TASKS} records "
        f"(got {speedup:.1f}x)"
    )
