#!/usr/bin/env python3
"""The paper's motivating scenario: a small dataset takes as long as a big one.

Section 2.1 of the paper: a user debugging a job re-runs it on a much
smaller dataset expecting a big speed-up, but both take the same time.  The
cause is the block size: with large blocks neither dataset fills the
cluster's map slots, so the runtime is the time to process one block.

This example reproduces the scenario on the simulator — a 16-instance
cluster, 256 MB blocks, one large and one small dataset — then asks
PerfXplain why the runtimes were the same and prints the explanation, which
points at the block size / cluster-capacity configuration rather than the
input size.

Run with:  python examples/debug_slow_job.py
"""

from __future__ import annotations

from repro import PerfXplain
from repro.cluster.config import MapReduceConfig
from repro.logs.store import ExecutionLog
from repro.units import MB, format_duration, format_size
from repro.workloads import SIMPLE_FILTER, build_experiment_log, excite_dataset, small_grid
from repro.workloads.runner import run_workload


def main() -> None:
    # --- 1. reproduce the user's two runs -------------------------------
    config = MapReduceConfig(dfs_block_size=256 * MB, num_reduce_tasks=1)
    big_dataset = excite_dataset(48)    # ~2 GB
    small_dataset = excite_dataset(6)   # ~260 MB

    print("Re-running the user's two jobs on a 16-instance cluster "
          "(block size 256 MB)...")
    big_run = run_workload(SIMPLE_FILTER, big_dataset, config, num_instances=16,
                           seed=20, job_sequence=9001)
    small_run = run_workload(SIMPLE_FILTER, small_dataset, config, num_instances=16,
                             seed=120, job_sequence=9002)

    for label, run, dataset in (("large", big_run, big_dataset),
                                ("small", small_run, small_dataset)):
        record = run.job_record
        print(f"  {label:>5} dataset: {format_size(dataset.size_bytes):>9} "
              f"in {record.features['num_map_tasks']:>3} map tasks "
              f"-> {format_duration(record.duration)}")
    ratio = big_run.job_record.duration / small_run.job_record.duration
    print(f"  runtime ratio: {ratio:.2f}x  "
          "(the user expected roughly an 8x difference)\n")

    # --- 2. build a log of past executions and add the two runs ---------
    print("Building a log of past executions to learn explanations from...")
    log = build_experiment_log(small_grid(), seed=7)
    extra = ExecutionLog()
    extra.add_job(big_run.job_record, big_run.task_records)
    extra.add_job(small_run.job_record, small_run.task_records)
    log = log.merge(extra)
    print(f"  -> {log.num_jobs} jobs in the log\n")

    # --- 3. ask PerfXplain why the runtimes were similar ----------------
    px = PerfXplain(log)
    query = px.parse(f"""
        FOR JOBS '{big_run.job_record.job_id}', '{small_run.job_record.job_id}'
        DESPITE inputsize_compare = GT AND pig_script_isSame = T
        OBSERVED duration_compare = SIM
        EXPECTED duration_compare = GT
    """)
    print("PXQL query (Example 3 from the paper):")
    print(str(query))
    print()

    explanation = px.explain(query, width=3)
    print("PerfXplain explanation:")
    print(explanation.format())
    print()
    print("Reading: despite the much larger input, both jobs finish in the")
    print("time it takes to process one block, because neither job has enough")
    print("map tasks to fill the cluster's map slots at this block size.")


if __name__ == "__main__":
    main()
