#!/usr/bin/env python3
"""Task-level debugging: why was the last task on a machine faster?

This is the paper's WhyLastTaskFaster scenario (Section 6.2, query 1): map
tasks of the same job, on the same host, processing the same amount of
data, still show different runtimes.  The cause on EC2 — and in the
simulator — is the load on the machine while each task ran: a task that has
the node to itself (or that ran during a quiet background period) finishes
faster.

The example builds a task-level log, finds a pair of such tasks, asks the
PXQL question and prints the explanations produced by PerfXplain and the
two baselines, plus an automatically generated DESPITE clause for the
under-specified version of the query.

Run with:  python examples/straggler_tasks.py
"""

from __future__ import annotations

from repro import PerfXplain
from repro.core.queries import why_last_task_faster
from repro.workloads import build_experiment_log, small_grid


def main() -> None:
    print("Building the execution log (this also records per-task Ganglia averages)...")
    log = build_experiment_log(small_grid(), seed=7)
    print(f"  -> {log.num_tasks} task records\n")

    px = PerfXplain(log)
    query = why_last_task_faster()
    slower_id, faster_id = px.find_pair(query)
    query = query.with_pair(slower_id, faster_id)

    slower = log.find_task(slower_id)
    faster = log.find_task(faster_id)
    print("Pair of interest (two map tasks of the same job on the same host):")
    for label, task in (("slower", slower), ("faster", faster)):
        features = task.features
        print(f"  {label}: {task.task_id}")
        print(f"        duration {task.duration:6.1f} s | "
              f"input {features['inputsize'] / 2**20:6.1f} MB | "
              f"avg cpu_user {features['avg_cpu_user']:5.1f}% | "
              f"avg proc_run {features['avg_proc_run']:4.2f} | "
              f"avg mem_free {features['avg_mem_free'] / 1024:6.0f} MB")
    print()

    print("PXQL query:")
    print(str(query))
    print()

    for technique in ("perfxplain", "ruleofthumb", "simbutdiff"):
        explanation = px.explain(query, width=3, technique=technique)
        print(f"--- {explanation.technique}")
        print(explanation.format())
        print()

    print("Automatically generated DESPITE clause for the under-specified query")
    print("(the user only states what they observed and expected):")
    despite = px.suggest_despite(query.without_despite(), width=3)
    print(f"  DESPITE {despite}")


if __name__ == "__main__":
    main()
