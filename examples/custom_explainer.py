#!/usr/bin/env python3
"""Extending PerfXplain with a custom explanation technique.

The explainer registry (:mod:`repro.core.registry`) makes the set of
techniques open-ended: anything with a ``name`` and an
``explain(log, query, schema=None, width=None)`` method can be registered
under a technique name and is then usable everywhere a built-in is — the
:class:`repro.PerfXplain` facade, the batch
:class:`repro.PerfXplainSession`, the evaluation harness, and the CLI
(``--plugin this_file.py --technique biggest-gap``).

The example technique is deliberately simple: it blames the ``diff`` pair
feature with the largest relative numeric gap between the two executions.
That is a worse explainer than the paper's Algorithm 1, but it shows the
full extension surface, including how registered techniques can opt into
the session's shared training examples to score their output.

Run with:  python examples/custom_explainer.py
"""

from __future__ import annotations

from repro import Explanation, PerfXplainSession, register_explainer
from repro.core.evaluation import evaluate_precision_vs_width
from repro.core.explanation import evaluate_explanation
from repro.core.pairs import IS_SAME_SUFFIX, NOT_SAME
from repro.core.pxql.ast import Comparison, Operator, Predicate
from repro.core.queries import why_slower_despite_same_num_instances
from repro.workloads import build_experiment_log, small_grid


@register_explainer("biggest-gap")
class BiggestGapExplainer:
    """Blame the raw features on which the two executions differ the most."""

    name = "BiggestGap"

    def explain(self, log, query, schema=None, width=None, examples=None):
        width = width if width is not None else 3
        first = log.find_job(query.first_id) if query.entity.value == "job" \
            else log.find_task(query.first_id)
        second = log.find_job(query.second_id) if query.entity.value == "job" \
            else log.find_task(query.second_id)

        gaps: list[tuple[float, str]] = []
        for feature, left in first.features.items():
            right = second.features.get(feature)
            if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
                continue
            if isinstance(left, bool) or isinstance(right, bool):
                continue
            biggest = max(abs(left), abs(right))
            if biggest == 0:
                continue
            gaps.append((abs(left - right) / biggest, feature))
        gaps.sort(reverse=True)

        atoms = [
            Comparison(feature + IS_SAME_SUFFIX, Operator.EQ, NOT_SAME)
            for _, feature in gaps[:width]
        ]
        explanation = Explanation(
            because=Predicate.conjunction(atoms), technique=self.name
        )
        # `examples` is the session's shared training set; a technique that
        # declares the keyword gets it for free and can score itself.
        if examples:
            explanation = explanation.with_metrics(
                evaluate_explanation(explanation, examples)
            )
        return explanation


def main() -> None:
    print("Building the execution log...")
    log = build_experiment_log(small_grid(), seed=7)

    session = PerfXplainSession(log)
    query = session.resolve(why_slower_despite_same_num_instances())
    print(f"Pair of interest: {query.first_id} vs {query.second_id}\n")

    for technique in ("biggest-gap", "perfxplain"):
        explanation = session.explain(query, width=3, technique=technique)
        print(f"{explanation.technique}:")
        print(explanation.format())
        print()

    print("Evaluating the custom technique next to PerfXplain "
          "(2-fold cross-validation, 2 repetitions)...")
    sweep = evaluate_precision_vs_width(
        log, query,
        [session.technique("biggest-gap"), session.technique("perfxplain")],
        widths=(1, 2, 3), repetitions=2, seed=1,
    )
    print(sweep.format_table("precision"))


if __name__ == "__main__":
    main()
