"""Diff two runs of the same workload and explain the regression.

Builds a baseline log and a pathological log from the scenario catalog
(`merge-misconfiguration`: io.sort.factor dropped, extra merge passes),
then asks the cross-log diff subsystem what changed and why.  The same
report is available from the CLI::

    repro-perfxplain diff --before baseline.jsonl --after regressed.jsonl

and from a running service (``POST /v1/diff``).

Run with: PYTHONPATH=src python examples/diff_regression.py
"""

import dataclasses

from repro.diff import DiffEngine
from repro.workloads.scenarios import build_scenario_log, get_scenario

SEED = 5


def main() -> None:
    scenario = get_scenario("merge-misconfiguration")
    baseline = tuple(v for v in scenario.variants if v.label == "baseline")
    pathological = tuple(v for v in scenario.variants if v.label != "baseline")

    # The "before" run is the healthy baseline; the "after" run replays
    # the same workload with the pathology injected (same seed).
    before = build_scenario_log(
        dataclasses.replace(scenario, variants=baseline), seed=SEED
    )
    after = build_scenario_log(
        dataclasses.replace(scenario, variants=pathological), seed=SEED
    )

    report = DiffEngine(before, after).report()

    print(report.format())
    print()

    # The report cites the pathology's ground-truth features.
    cited = report.cited_features()
    print(f"cited features: {sorted(cited)}")
    print(f"ground truth:   {sorted(scenario.consistent_features)}")
    assert cited & scenario.consistent_features

    # The report is a plain JSON document with an exact round-trip —
    # ship it to a dashboard, store it next to the run, diff it in CI.
    payload = report.to_json(indent=2)
    print(f"\nreport JSON: {len(payload)} bytes (exact from_json round-trip)")


if __name__ == "__main__":
    main()
