#!/usr/bin/env python3
"""Real-log ingestion and deterministic detectors, end to end.

PerfXplain learns its explanations from whatever log it is given — and
:mod:`repro.ingest` lets that log be a *real* one: a Hadoop JobHistory
(.jhist) file or a Spark event log, sniffed by format and mapped into the
same canonical job/task records the simulator emits.  On top of that,
:mod:`repro.detectors` provides deterministic rule-based detectors
(data skew, stragglers, misconfiguration, cluster underuse) registered as
ordinary techniques — a second, independent opinion on the same pair of
executions, with the rule's threshold evidence attached to the metrics.

The example ingests the repository's golden Hadoop fixture, asks a
task-level PXQL question, and compares the learned explanation with the
skew and straggler detectors via the agreement harness.

Run with:  python examples/ingest_and_detect.py
"""

from __future__ import annotations

from pathlib import Path

from repro import PerfXplain
from repro.detectors import score_agreement
from repro.ingest import ingest_path

JHIST = (
    Path(__file__).resolve().parent.parent
    / "tests" / "logs" / "fixtures" / "job_201207121733_0001.jhist"
)

QUERY = """\
FOR TASKS ?, ?
DESPITE job_id_isSame = T AND task_type_isSame = T
OBSERVED duration_compare = GT
EXPECTED duration_compare = SIM"""


def main() -> None:
    print(f"Ingesting {JHIST.name} ...")
    result = ingest_path(JHIST)
    stats = result.stats
    print(f"  -> format {result.source_format}: {stats.jobs} job(s), "
          f"{stats.tasks} task(s) from {stats.lines} lines "
          f"({'clean' if stats.clean else stats.to_dict()})\n")

    log = result.log
    for task in log.tasks:
        marker = "  <- straggler?" if task.duration > 20 else ""
        print(f"  {task.task_id}  {task.features['task_type']:6s} "
              f"{task.duration:5.1f}s on {task.features['hostname']}{marker}")
    print()

    print("PXQL query:")
    print(QUERY)
    print()

    px = PerfXplain(log, seed=0)
    learned = px.explain(QUERY, technique="perfxplain")
    print("--- learned (PerfXplain)")
    print(learned.format())
    print()

    for detector in ("detect-skew", "detect-straggler"):
        explanation = px.explain(QUERY, technique=detector)
        print(f"--- {detector}")
        print(explanation.format())
        for name, value in explanation.metrics.evidence:
            print(f"    evidence: {name} = {value:g}")
        print()

    print("Agreement between rule and learner on the same pair:")
    report = score_agreement(log, QUERY, "detect-skew", seed=0)
    print(f"  detector cites {sorted(report.detector_features)}")
    print(f"  learner  cites {sorted(report.learned_features)}")
    print(f"  shared: {sorted(report.shared_features)} "
          f"(jaccard {report.jaccard:.2f})")


if __name__ == "__main__":
    main()
