#!/usr/bin/env python3
"""Quickstart: build an execution log and ask a PXQL performance question.

This script:

1. simulates a small grid of Pig jobs (the substitute for the paper's EC2
   cluster) to obtain a log of past executions;
2. wraps the log in the :class:`repro.PerfXplain` facade;
3. asks the paper's job-level question — "why was this job slower than that
   one, even though both ran the same script on the same number of
   instances?" — written in PXQL;
4. prints the generated explanation, its quality metrics, and the same
   result as machine-readable JSON (``Explanation.to_json`` round-trips
   through ``Explanation.from_json``).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import PerfXplain
from repro.workloads import build_experiment_log, small_grid


def main() -> None:
    print("Building the execution log (simulating the workload grid)...")
    log = build_experiment_log(small_grid(), seed=7)
    print(f"  -> {log.num_jobs} jobs, {log.num_tasks} tasks collected\n")

    px = PerfXplain(log)

    # The pair identifiers are left as '?'; resolve() picks a pair of
    # interest from the log that matches the DESPITE and OBSERVED clauses
    # and returns a BoundQuery with both identifiers guaranteed set.
    query = px.resolve("""
        FOR JOBS ?, ?
        DESPITE numinstances_isSame = T AND pig_script_isSame = T
        OBSERVED duration_compare = GT
        EXPECTED duration_compare = SIM
    """)

    slow = log.find_job(query.first_id)
    fast = log.find_job(query.second_id)
    print("Pair of interest:")
    for job in (slow, fast):
        print(f"  {job.job_id}: {job.features['pig_script']} on "
              f"{job.features['numinstances']} instances, "
              f"input {job.features['inputsize'] / 2**30:.2f} GB, "
              f"block {job.features['blocksize'] // 2**20} MB "
              f"-> {job.duration:.0f} s")
    print()

    print("PXQL query:")
    print(str(query))
    print()

    explanation = px.explain(query, width=3)
    print("PerfXplain explanation:")
    print(explanation.format())
    print()

    print("The same explanation as machine-readable JSON:")
    print(explanation.to_json(indent=2))


if __name__ == "__main__":
    main()
