#!/usr/bin/env python3
"""Service layer walkthrough: catalog, HTTP endpoint and client.

This script exercises the full service stack in one process:

1. simulates two execution logs and saves one as ``.jsonl.gz`` (the
   streaming format production logs use) so the catalog can lazy-load it;
2. builds a :class:`repro.service.LogCatalog` with both logs and wraps it
   in a :class:`repro.service.PerfXplainService` (thread pool, per-log
   locking, in-flight deduplication);
3. starts the JSON-over-HTTP endpoint on an ephemeral port — exactly what
   ``repro-perfxplain serve --log name=path --port N`` runs;
4. asks PXQL questions through :class:`repro.service.ServiceClient`, one
   at a time and as a concurrent batch, and shows that repeated questions
   are answered from the per-log session caches;
5. prints the per-log cache statistics the service exposes.

Run with:  python examples/service_client.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.service import (
    LogCatalog,
    PerfXplainHTTPServer,
    PerfXplainService,
    QueryRequest,
    ServiceClient,
)
from repro.workloads import build_experiment_log, tiny_grid

WHY_SLOWER = """
    FOR JOBS ?, ?
    DESPITE pig_script_isSame = T
    OBSERVED duration_compare = GT
    EXPECTED duration_compare = SIM
"""


def main() -> None:
    print("Simulating two execution logs...")
    staging_log = build_experiment_log(tiny_grid(), seed=11)
    prod_path = Path(tempfile.mkdtemp()) / "prod.jsonl.gz"
    build_experiment_log(tiny_grid(), seed=23).save(prod_path)
    print(f"  -> staging in memory, prod written to {prod_path}\n")

    # The catalog: named logs, one shared session per log.  `prod` is a
    # path registration — it is not parsed until the first query needs it.
    catalog = LogCatalog()
    catalog.register("staging", staging_log)
    catalog.register_path("prod", prod_path)

    with PerfXplainService(catalog, max_workers=4) as service:
        with PerfXplainHTTPServer(service, port=0) as server:
            print(f"Service listening on {server.url}")
            client = ServiceClient(server.url)
            print(f"  health: {client.health()}\n")

            # One question over HTTP.  The response round-trips through the
            # versioned wire protocol; the entry is self-describing.
            entry = client.explain("prod", WHY_SLOWER, width=2)
            print("Why was the job slower? (log: prod)")
            print(f"  pair      : {entry.first_id} vs {entry.second_id}")
            print(f"  technique : {entry.technique}, width {entry.width}, "
                  f"{entry.elapsed_ms:.1f} ms")
            assert entry.explanation is not None
            print("  " + entry.explanation.format().replace("\n", "\n  ") + "\n")

            # A concurrent batch across both logs, with deliberate repeats:
            # identical in-flight questions are deduplicated and repeats of
            # answered ones come straight from the session caches.
            requests = [
                QueryRequest(log=name, query=WHY_SLOWER, width=2)
                for name in ("staging", "prod", "staging", "prod", "staging")
            ]
            batch = client.batch(requests)
            print(f"Batch of {len(requests)} queries -> "
                  f"{sum(1 for r in batch.responses if r.ok)} answered")

            stats = client.logs()
            print(f"  executed={stats['executed']} "
                  f"deduplicated={stats['deduplicated']}")
            for name, info in sorted(stats["logs"].items()):
                cache = info["cache_stats"]["explanations"]
                print(f"  {name:8s} explanations cache: "
                      f"hits={cache['hits']} misses={cache['misses']}")

    print("\nThe same service is available from the command line:")
    print(f"  repro-perfxplain serve --log prod={prod_path} --port 8000")


if __name__ == "__main__":
    main()
