#!/usr/bin/env python3
"""Compare the three explanation techniques with held-out evaluation.

This example runs a miniature version of the paper's evaluation (Section 6):
it builds a log, binds the job-level PXQL query to a pair of interest, and
performs repeated 2-fold cross-validation — generating explanations of
widths 0-4 from the training half and measuring precision and generality on
the held-out half — for PerfXplain, RuleOfThumb and SimButDiff.

It also shows how to persist the log as Hadoop-style job-history files and
reload it, exercising the same parsing path a real deployment would use.

Run with:  python examples/compare_techniques.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import PerfXplain
from repro.core.evaluation import evaluate_precision_vs_width, precision_generality_points
from repro.core.queries import why_slower_despite_same_num_instances
from repro.logs.parser import parse_job_history
from repro.logs.store import ExecutionLog
from repro.logs.writer import write_job_history
from repro.workloads import build_experiment_log, small_grid


def roundtrip_through_history_files(log: ExecutionLog) -> ExecutionLog:
    """Write every job as a job-history file and parse the files back."""
    rebuilt = ExecutionLog()
    with tempfile.TemporaryDirectory() as tmp:
        for job in log.jobs:
            path = Path(tmp) / f"{job.job_id}.jhist"
            write_job_history(path, job, log.tasks_of_job(job.job_id))
            rebuilt.add_job(*parse_job_history(path))
    return rebuilt


def main() -> None:
    print("Building the execution log...")
    log = build_experiment_log(small_grid(), seed=7)

    print("Round-tripping the log through Hadoop-style history files...")
    log = roundtrip_through_history_files(log)
    print(f"  -> {log.num_jobs} jobs reloaded from history files\n")

    # The facade resolves the pair of interest and hands out one instance of
    # every registered technique (custom ones included, had we registered any).
    px = PerfXplain(log)
    query = px.resolve(why_slower_despite_same_num_instances())
    print(f"Pair of interest: {query.first_id} (slower) vs {query.second_id}\n")

    techniques = list(px.techniques().values())
    print("Running repeated 2-fold cross-validation (3 repetitions, widths 0-4)...")
    sweep = evaluate_precision_vs_width(
        log, query, techniques, widths=(0, 1, 2, 3, 4), repetitions=3, seed=1,
    )

    print("\nPrecision on the held-out log:")
    print(sweep.format_table("precision"))
    print("\nGenerality on the held-out log:")
    print(sweep.format_table("generality"))

    print("\nPrecision/generality frontier points (one per width):")
    for technique in sweep.techniques():
        points = precision_generality_points(sweep, technique)
        rendered = "  ".join(f"({g:.2f}, {p:.2f})" for g, p in points)
        print(f"  {technique}: {rendered}")


if __name__ == "__main__":
    main()
