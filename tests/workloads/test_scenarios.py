"""End-to-end tests for the scenario catalog.

Each catalog scenario must (a) manufacture the pathology it claims —
affected jobs really are slower (or really similar, for the SIM-observed
scenarios), (b) stamp full provenance into every record, and (c) lead
PerfXplain to a *scenario-consistent* explanation: the because clause cites
at least one feature from the scenario's declared ground truth.
"""

from __future__ import annotations

import pytest

from repro.core.api import PerfXplain
from repro.core.features import infer_schema
from repro.core.pairs import raw_feature_of
from repro.exceptions import WorkloadError
from repro.workloads.scenarios import (
    Scenario,
    ScenarioVariant,
    build_catalog_log,
    build_scenario_log,
    get_scenario,
    scenario_catalog,
)

#: One deterministic seed under which every scenario's end-to-end
#: explanation is scenario-consistent (asserted below).
SEED = 5

CATALOG = scenario_catalog()
SCENARIO_NAMES = sorted(CATALOG)


@pytest.fixture(scope="module")
def scenario_logs():
    """Every scenario's log, built once for the module."""
    return {
        name: build_scenario_log(CATALOG[name], seed=SEED)
        for name in SCENARIO_NAMES
    }


class TestCatalogShape:
    def test_catalog_ships_at_least_eight_scenarios(self):
        assert len(CATALOG) >= 8

    def test_catalog_names_match_keys(self):
        assert all(scenario.name == name for name, scenario in CATALOG.items())

    def test_every_scenario_declares_ground_truth_and_query(self):
        for scenario in CATALOG.values():
            assert scenario.consistent_features
            assert scenario.despite
            query = scenario.query()
            assert query.name == f"scenario:{scenario.name}"
            assert query.despite.atoms

    def test_get_scenario_roundtrip_and_unknown(self):
        assert get_scenario("data-skew").name == "data-skew"
        with pytest.raises(WorkloadError):
            get_scenario("no-such-pathology")

    def test_invalid_entity_rejected(self):
        scenario = CATALOG["data-skew"]
        with pytest.raises(WorkloadError):
            Scenario(
                name="bad", entity="stage", description="", paper_query="",
                knobs="", consistent_features=frozenset({"x"}),
                variants=scenario.variants, despite=scenario.despite,
            )

    def test_variant_composition(self):
        base = ScenarioVariant(label="baseline")
        derived = base.but("affected", concat_factor=12)
        assert derived.label == "affected"
        assert derived.concat_factor == 12
        assert base.concat_factor == 6


class TestProvenanceStamps:
    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_every_record_is_stamped(self, scenario_logs, name):
        log = scenario_logs[name]
        for job in log.jobs:
            assert job.features["scenario"] == name
            assert "scenario_variant" in job.features
            assert isinstance(job.features["engine_seed"], int)
        for task in log.tasks:
            assert task.features["scenario"] == name
            assert "scenario_variant" in task.features
            assert isinstance(task.features["engine_seed"], int)

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_stamps_never_reach_the_schema(self, scenario_logs, name):
        log = scenario_logs[name]
        schema = infer_schema(log.jobs)
        for stamp in ("scenario", "scenario_variant", "engine_seed"):
            assert stamp not in schema
        if log.tasks:
            task_schema = infer_schema(log.tasks)
            assert "scenario" not in task_schema
            assert "engine_seed" not in task_schema

    def test_build_is_deterministic(self):
        scenario = CATALOG["data-skew"]
        first = build_scenario_log(scenario, seed=SEED)
        second = build_scenario_log(scenario, seed=SEED)
        assert first.to_json() == second.to_json()

    def test_different_seeds_differ(self):
        scenario = CATALOG["degraded-node"]
        first = build_scenario_log(scenario, seed=1)
        second = build_scenario_log(scenario, seed=2)
        assert first.to_json() != second.to_json()


class TestPathologyIsReal:
    """The affected variants actually exhibit the claimed pathology."""

    def _mean_durations(self, log):
        by_variant: dict[str, list[float]] = {}
        for job in log.jobs:
            by_variant.setdefault(job.features["scenario_variant"], []).append(
                job.duration
            )
        return {label: sum(values) / len(values)
                for label, values in by_variant.items()}

    @pytest.mark.parametrize("name", [
        "input-growth-step", "degraded-node", "background-contention",
        "heterogeneous-hardware", "merge-misconfiguration",
        "reducer-starvation", "cold-hdfs-locality",
    ])
    def test_affected_jobs_slower(self, scenario_logs, name):
        means = self._mean_durations(scenario_logs[name])
        assert means["affected"] > means["baseline"] * 1.1

    def test_cluster_underuse_durations_similar_despite_input(self, scenario_logs):
        means = self._mean_durations(scenario_logs["cluster-underuse"])
        assert means["affected"] < means["baseline"] * 1.4
        assert means["contrast"] < means["baseline"]

    def test_data_skew_spreads_reduce_durations(self, scenario_logs):
        log = scenario_logs["data-skew"]
        job = log.jobs[0]
        reduces = [task.duration for task in log.tasks_of_job(job.job_id)
                   if task.features["task_type"] == "REDUCE"]
        assert max(reduces) > 2.0 * min(reduces)

    def test_last_task_faster_has_partial_final_wave(self, scenario_logs):
        log = scenario_logs["last-task-faster"]
        job = log.jobs[0]
        tasks = log.tasks_of_job(job.job_id)
        final_wave = max(task.features["wave"] for task in tasks)
        finals = [task for task in tasks if task.features["wave"] == final_wave]
        assert 0 < len(finals) < 4  # fewer tasks than the cluster's map slots


class TestScenarioConsistentExplanations:
    """The acceptance bar: PerfXplain explains each pathology with ground
    truth — at least one because-atom cites a consistent feature."""

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_explanation_is_scenario_consistent(self, scenario_logs, name):
        scenario = CATALOG[name]
        log = scenario_logs[name]
        explainer = PerfXplain(log, seed=1)
        explanation = explainer.explain(scenario.query(), width=2)
        assert explanation.because.atoms, "expected a non-empty because clause"
        cited = {raw_feature_of(atom.feature) for atom in explanation.because.atoms}
        assert scenario.is_consistent(explanation), (
            f"scenario {name}: because clause {explanation.because} cites "
            f"{sorted(cited)}, none of which are in the scenario's ground "
            f"truth {sorted(scenario.consistent_features)}"
        )


class TestCatalogLog:
    def test_merged_catalog_log_has_unique_ids(self):
        scenarios = [CATALOG["data-skew"], CATALOG["degraded-node"]]
        log = build_catalog_log(scenarios, seed=SEED)
        job_ids = [job.job_id for job in log.jobs]
        assert len(job_ids) == len(set(job_ids))
        assert {job.features["scenario"] for job in log.jobs} == {
            "data-skew", "degraded-node",
        }
