"""Tests for the Excite log generator and the Pig cost models."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.config import MapReduceConfig
from repro.cluster.tasks import TaskType
from repro.exceptions import WorkloadError
from repro.units import GB, MB
from repro.workloads.excite import (
    BASE_FILE_BYTES,
    ExciteLogProfile,
    excite_dataset,
    generate_excite_records,
    records_to_text,
)
from repro.workloads.pig import (
    PIG_SCRIPTS,
    SIMPLE_FILTER,
    SIMPLE_GROUPBY,
    compile_pig_job,
    get_script,
)


class TestExciteDataset:
    def test_paper_sizes(self):
        # Concatenating the tutorial file 30 / 60 times gives ~1.3 / ~2.6 GB.
        assert excite_dataset(30).size_bytes == pytest.approx(1.3 * GB, rel=0.02)
        assert excite_dataset(60).size_bytes == pytest.approx(2.6 * GB, rel=0.02)

    def test_records_scale_with_factor(self):
        assert excite_dataset(60).num_records == pytest.approx(
            2 * excite_dataset(30).num_records, rel=0.01
        )

    def test_invalid_factor(self):
        with pytest.raises(WorkloadError):
            excite_dataset(0)

    def test_profile_validation(self):
        with pytest.raises(WorkloadError):
            ExciteLogProfile(url_fraction=1.5)
        with pytest.raises(WorkloadError):
            ExciteLogProfile(distinct_user_fraction=0.0)


class TestExciteRecords:
    def test_count(self):
        records = list(generate_excite_records(500, rng=random.Random(0)))
        assert len(records) == 500

    def test_url_fraction_approximate(self):
        profile = ExciteLogProfile(url_fraction=0.2)
        records = list(generate_excite_records(4000, profile, rng=random.Random(1)))
        urls = sum(1 for _, _, query in records if query.startswith("http://"))
        assert 0.15 < urls / len(records) < 0.25

    def test_users_are_skewed(self):
        records = list(generate_excite_records(4000, rng=random.Random(2)))
        counts = {}
        for user, _, _ in records:
            counts[user] = counts.get(user, 0) + 1
        top = max(counts.values())
        assert top > 3 * (len(records) / len(counts))

    def test_timestamps_nondecreasing(self):
        records = list(generate_excite_records(200, rng=random.Random(3)))
        stamps = [ts for _, ts, _ in records]
        assert all(b >= a for a, b in zip(stamps, stamps[1:]))

    def test_text_rendering_is_tab_separated(self):
        text = records_to_text(generate_excite_records(10, rng=random.Random(4)))
        lines = text.strip().splitlines()
        assert len(lines) == 10
        assert all(line.count("\t") == 2 for line in lines)

    def test_negative_count_rejected(self):
        with pytest.raises(WorkloadError):
            list(generate_excite_records(-1))


class TestPigScripts:
    def test_catalogue_contains_paper_scripts(self):
        assert "simple-filter.pig" in PIG_SCRIPTS
        assert "simple-groupby.pig" in PIG_SCRIPTS

    def test_get_script_unknown(self):
        with pytest.raises(WorkloadError):
            get_script("mystery.pig")

    def test_filter_is_map_only(self):
        assert SIMPLE_FILTER.map_only is True

    def test_groupby_shrinks_data(self):
        assert SIMPLE_GROUPBY.map_output_byte_ratio < 0.5


class TestCompilePigJob:
    def _compile(self, script=SIMPLE_GROUPBY, concat=6, block=64 * MB, reducers=4):
        dataset = excite_dataset(concat)
        config = MapReduceConfig(dfs_block_size=block, num_reduce_tasks=reducers)
        return compile_pig_job("job_x_0001", script, dataset, config,
                               rng=random.Random(0)), dataset

    def test_one_map_task_per_block(self):
        job, dataset = self._compile(block=64 * MB)
        expected = -(-dataset.size_bytes // (64 * MB))
        assert job.num_map_tasks == expected

    def test_block_size_controls_map_count(self):
        small_block, _ = self._compile(block=64 * MB)
        large_block, _ = self._compile(block=256 * MB)
        assert small_block.num_map_tasks > large_block.num_map_tasks

    def test_filter_has_no_reducers(self):
        job, _ = self._compile(script=SIMPLE_FILTER, reducers=4)
        assert job.num_reduce_tasks == 0

    def test_groupby_has_requested_reducers(self):
        job, _ = self._compile(script=SIMPLE_GROUPBY, reducers=5)
        assert job.num_reduce_tasks == 5

    def test_map_counters_cover_dataset(self):
        job, dataset = self._compile()
        read = sum(task.counters.input_bytes for task in job.map_tasks)
        assert read == dataset.size_bytes

    def test_reducer_shares_cover_map_output(self):
        job, _ = self._compile(reducers=7)
        map_output = sum(task.counters.output_bytes for task in job.map_tasks)
        shuffle = sum(task.counters.shuffle_bytes for task in job.reduce_tasks)
        assert shuffle == pytest.approx(map_output, rel=0.01)

    def test_task_ids_are_unique_and_well_formed(self):
        job, _ = self._compile()
        ids = [task.task_id for task in job.all_tasks]
        assert len(ids) == len(set(ids))
        assert all(task.task_id.startswith("task_x_0001_m_") for task in job.map_tasks)
        assert all(task.task_id.startswith("task_x_0001_r_") for task in job.reduce_tasks)

    def test_reduce_skew_varies_shares(self):
        job, _ = self._compile(script=SIMPLE_GROUPBY, reducers=8)
        shares = [task.counters.shuffle_bytes for task in job.reduce_tasks]
        assert max(shares) > min(shares)

    def test_metadata_records_workload(self):
        job, dataset = self._compile()
        assert job.metadata["pig_script"] == SIMPLE_GROUPBY.name
        assert job.metadata["inputsize"] == dataset.size_bytes

    @settings(max_examples=20, deadline=None)
    @given(
        concat=st.integers(min_value=1, max_value=30),
        block=st.sampled_from([64 * MB, 256 * MB, 1024 * MB]),
        reducers=st.integers(min_value=1, max_value=16),
    )
    def test_compile_invariants(self, concat, block, reducers):
        dataset = excite_dataset(concat)
        config = MapReduceConfig(dfs_block_size=block, num_reduce_tasks=reducers)
        job = compile_pig_job("job_p_0001", SIMPLE_GROUPBY, dataset, config,
                              rng=random.Random(0))
        assert job.num_map_tasks == -(-dataset.size_bytes // block)
        assert job.num_reduce_tasks == reducers
        assert all(task.nominal_duration > 0 for task in job.all_tasks)
        assert all(task.task_type is TaskType.MAP for task in job.map_tasks)
