"""Tests for the workload runner and the experiment grid."""

import pytest

from repro.cluster.config import MapReduceConfig
from repro.exceptions import WorkloadError
from repro.logs.store import ExecutionLog
from repro.units import GB, MB
from repro.workloads.excite import excite_dataset
from repro.workloads.grid import (
    GridPoint,
    ParameterGrid,
    build_experiment_log,
    paper_grid,
    small_grid,
    tiny_grid,
)
from repro.workloads.pig import SIMPLE_FILTER
from repro.workloads.runner import run_workload


class TestRunWorkload:
    def test_produces_job_and_task_records(self, single_run):
        assert single_run.job_record.duration > 0
        assert len(single_run.task_records) == len(single_run.simulation.tasks)

    def test_job_features_include_configuration(self, single_run):
        features = single_run.job_record.features
        assert features["pig_script"] == "simple-filter.pig"
        assert features["numinstances"] == 4
        assert features["blocksize"] == 64 * MB
        assert features["inputsize"] == excite_dataset(6).size_bytes

    def test_job_features_include_ganglia_averages(self, single_run):
        features = single_run.job_record.features
        assert "avg_cpu_user" in features
        assert "avg_load_five" in features
        assert 0 <= features["avg_cpu_user"] <= 100

    def test_job_features_do_not_leak_duration(self, single_run):
        # Task-timing aggregates would let explanations restate the runtime.
        assert "duration" not in single_run.job_record.features
        assert "avg_map_task_seconds" not in single_run.job_record.features
        assert "finish_time" not in single_run.job_record.features

    def test_task_features_match_paper_names(self, single_run):
        features = single_run.task_records[0].features
        for name in ("task_type", "tracker_name", "hostname", "inputsize",
                     "hdfs_bytes_read", "sorttime", "taskfinishtime",
                     "avg_cpu_user", "job_id"):
            assert name in features

    def test_map_task_count_follows_block_size(self, single_run):
        features = single_run.job_record.features
        expected = -(-features["inputsize"] // features["blocksize"])
        assert features["num_map_tasks"] == expected

    def test_task_durations_sum_to_less_than_walltime_times_slots(self, single_run):
        job = single_run.job_record
        total_task_time = sum(task.duration for task in single_run.task_records)
        # 4 instances x (2 map + 2 reduce) slots bounds the parallel work.
        assert total_task_time <= job.duration * 4 * 4

    def test_filter_map_only_has_no_reduce_records(self, single_run):
        types = {task.features["task_type"] for task in single_run.task_records}
        assert types == {"MAP"}

    def test_groupby_has_reduce_records(self, groupby_run):
        types = {task.features["task_type"] for task in groupby_run.task_records}
        assert types == {"MAP", "REDUCE"}
        reduce_tasks = [t for t in groupby_run.task_records
                        if t.features["task_type"] == "REDUCE"]
        assert all(t.features["shuffletime"] is not None for t in reduce_tasks)

    def test_same_seed_reproducible(self):
        config = MapReduceConfig(dfs_block_size=64 * MB, num_reduce_tasks=2)
        first = run_workload(SIMPLE_FILTER, excite_dataset(3), config, 2, seed=42)
        second = run_workload(SIMPLE_FILTER, excite_dataset(3), config, 2, seed=42)
        assert first.job_record.duration == pytest.approx(second.job_record.duration)

    def test_different_seeds_differ(self):
        config = MapReduceConfig(dfs_block_size=64 * MB, num_reduce_tasks=2)
        first = run_workload(SIMPLE_FILTER, excite_dataset(3), config, 2, seed=1)
        second = run_workload(SIMPLE_FILTER, excite_dataset(3), config, 2, seed=2)
        assert first.job_record.duration != pytest.approx(second.job_record.duration)

    def test_larger_input_takes_longer(self):
        config = MapReduceConfig(dfs_block_size=64 * MB, num_reduce_tasks=2)
        small = run_workload(SIMPLE_FILTER, excite_dataset(3), config, 4, seed=5)
        large = run_workload(SIMPLE_FILTER, excite_dataset(24), config, 4, seed=5)
        assert large.job_record.duration > small.job_record.duration * 1.5

    def test_motivating_example_same_runtime_when_cluster_underused(self):
        # The paper's motivating scenario: with a large block size and a big
        # cluster, a dataset and a much smaller one take a similar time
        # because neither fills the cluster and each map processes one block.
        config = MapReduceConfig(dfs_block_size=256 * MB, num_reduce_tasks=1)
        big = run_workload(SIMPLE_FILTER, excite_dataset(24), config, 16, seed=8)
        small = run_workload(SIMPLE_FILTER, excite_dataset(6), config, 16, seed=9)
        ratio = big.job_record.duration / small.job_record.duration
        assert ratio < 1.6


class TestGrid:
    def test_paper_grid_matches_table2(self):
        grid = paper_grid()
        assert len(grid) == 5 * 2 * 3 * 3 * 3 * 2 == 540
        assert set(grid.num_instances) == {1, 2, 4, 8, 16}
        assert set(grid.block_sizes) == {64 * MB, 256 * MB, 1024 * MB}
        assert set(grid.io_sort_factors) == {10, 50, 100}
        assert set(grid.reduce_tasks_factors) == {1.0, 1.5, 2.0}

    def test_paper_grid_input_sizes(self):
        sizes = {excite_dataset(factor).size_bytes for factor in paper_grid().concat_factors}
        assert any(abs(size - 1.3 * GB) < 0.05 * GB for size in sizes)
        assert any(abs(size - 2.6 * GB) < 0.05 * GB for size in sizes)

    def test_points_enumeration(self):
        grid = tiny_grid()
        points = grid.points()
        assert len(points) == len(grid)
        assert len({tuple(vars(p).values()) for p in points}) == len(points)

    def test_grid_point_reducer_count_follows_paper_rule(self):
        point = GridPoint(8, 30, 64 * MB, 1.5, 10, "simple-groupby.pig")
        assert point.num_reduce_tasks() == 12

    def test_grid_point_config(self):
        point = GridPoint(4, 30, 256 * MB, 2.0, 50, "simple-groupby.pig")
        config = point.config()
        assert config.dfs_block_size == 256 * MB
        assert config.num_reduce_tasks == 8
        assert config.io_sort_factor == 50

    def test_unknown_script_rejected(self):
        with pytest.raises(WorkloadError):
            ParameterGrid((1,), (1,), (64 * MB,), (1.0,), (10,), ("nope.pig",))

    def test_empty_dimension_rejected(self):
        with pytest.raises(WorkloadError):
            ParameterGrid((), (1,), (64 * MB,), (1.0,), (10,), ("simple-filter.pig",))


class TestBuildExperimentLog:
    def test_tiny_log_covers_grid(self, tiny_log):
        assert tiny_log.num_jobs == len(tiny_grid())
        assert tiny_log.num_tasks > tiny_log.num_jobs

    def test_job_ids_unique(self, tiny_log):
        ids = [job.job_id for job in tiny_log.jobs]
        assert len(ids) == len(set(ids))

    def test_all_grid_scripts_present(self, tiny_log):
        scripts = {job.features["pig_script"] for job in tiny_log.jobs}
        assert scripts == {"simple-filter.pig", "simple-groupby.pig"}

    def test_durations_vary_across_configurations(self, tiny_log):
        durations = [job.duration for job in tiny_log.jobs]
        assert max(durations) > 2 * min(durations)

    def test_without_tasks(self):
        log = build_experiment_log(tiny_grid(), seed=3, include_tasks=False)
        assert log.num_tasks == 0
        assert log.num_jobs == len(tiny_grid())

    def test_repetitions_multiply_jobs(self):
        grid = ParameterGrid((2,), (2,), (64 * MB,), (1.0,), (10,),
                             ("simple-filter.pig",))
        log = build_experiment_log(grid, seed=1, repetitions=3, include_tasks=False)
        assert log.num_jobs == 3

    def test_invalid_repetitions(self):
        with pytest.raises(WorkloadError):
            build_experiment_log(tiny_grid(), repetitions=0)

    def test_submit_times_increase(self, tiny_log):
        submits = [job.features["submit_time"] for job in tiny_log.jobs]
        assert all(b > a for a, b in zip(submits, submits[1:]))

    def test_returns_execution_log(self, tiny_log):
        assert isinstance(tiny_log, ExecutionLog)


class TestEngineSelectionAndProvenance:
    def test_reference_engine_builds_identical_log(self):
        event = build_experiment_log(tiny_grid(), seed=3, engine="event")
        reference = build_experiment_log(tiny_grid(), seed=3, engine="reference")
        assert event.jobs == reference.jobs
        assert event.tasks == reference.tasks

    def test_unknown_engine_rejected(self):
        config = MapReduceConfig(dfs_block_size=64 * MB, num_reduce_tasks=2)
        with pytest.raises(WorkloadError):
            run_workload(SIMPLE_FILTER, excite_dataset(3), config, 2, engine="warp")

    def test_engine_seed_stamped_on_all_records(self, tiny_log):
        assert all("engine_seed" in job.features for job in tiny_log.jobs)
        assert all("engine_seed" in task.features for task in tiny_log.tasks)

    def test_engine_seed_replays_the_run(self):
        config = MapReduceConfig(dfs_block_size=64 * MB, num_reduce_tasks=2)
        run = run_workload(SIMPLE_FILTER, excite_dataset(3), config, 2, seed=77)
        seed = run.job_record.features["engine_seed"]
        assert seed == run.simulation.engine_seed == 77
        replay = run_workload(SIMPLE_FILTER, excite_dataset(3), config, 2, seed=seed)
        assert replay.job_record.duration == run.job_record.duration
        assert [t.duration for t in replay.task_records] == [
            t.duration for t in run.task_records
        ]

    def test_scenario_stamp_only_when_set(self):
        config = MapReduceConfig(dfs_block_size=64 * MB, num_reduce_tasks=2)
        plain = run_workload(SIMPLE_FILTER, excite_dataset(3), config, 2)
        tagged = run_workload(SIMPLE_FILTER, excite_dataset(3), config, 2,
                              scenario="data-skew")
        assert "scenario" not in plain.job_record.features
        assert tagged.job_record.features["scenario"] == "data-skew"
        assert all(t.features["scenario"] == "data-skew" for t in tagged.task_records)

    def test_provenance_excluded_from_schema(self, tiny_log):
        from repro.core.features import infer_schema

        schema = infer_schema(tiny_log.jobs)
        assert "engine_seed" not in schema
        assert "scenario" not in schema

    def test_cluster_spec_override(self):
        from repro.cluster.cluster import ClusterSpec

        config = MapReduceConfig(dfs_block_size=64 * MB, num_reduce_tasks=2)
        run = run_workload(
            SIMPLE_FILTER, excite_dataset(3), config, 2, seed=4,
            cluster_spec=ClusterSpec(num_instances=2, instance_type="m1.small"),
        )
        assert run.job_record.features["instance_type"] == "m1.small"
        with pytest.raises(WorkloadError):
            run_workload(
                SIMPLE_FILTER, excite_dataset(3), config, 4, seed=4,
                cluster_spec=ClusterSpec(num_instances=2),
            )

    def test_locality_misses_slow_the_job_via_network_reads(self):
        config = MapReduceConfig(dfs_block_size=64 * MB, num_reduce_tasks=1)
        local = run_workload(SIMPLE_FILTER, excite_dataset(6), config, 2, seed=5,
                             sampling_period=0.5)
        remote = run_workload(SIMPLE_FILTER, excite_dataset(6), config, 2, seed=5,
                              sampling_period=0.5, locality_miss_fraction=1.0)
        assert remote.job_record.duration > local.job_record.duration
        # Remote reads show up as network traffic on a map-only job.
        assert (remote.job_record.features["avg_bytes_in"]
                > local.job_record.features["avg_bytes_in"])
        with pytest.raises(WorkloadError):
            run_workload(SIMPLE_FILTER, excite_dataset(3), config, 2,
                         locality_miss_fraction=1.5)


class TestParallelSweep:
    def test_parallel_log_identical_to_sequential(self):
        sequential = build_experiment_log(tiny_grid(), seed=11)
        parallel = build_experiment_log(tiny_grid(), seed=11, workers=2)
        assert parallel.jobs == sequential.jobs
        assert parallel.tasks == sequential.tasks

    def test_invalid_workers_rejected(self):
        with pytest.raises(WorkloadError):
            build_experiment_log(tiny_grid(), workers=0)
