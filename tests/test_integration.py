"""End-to-end integration tests: workload -> log -> history files -> explanations."""

import random

import pytest

from repro import PerfXplain
from repro.core.explainer import PerfXplainExplainer
from repro.core.evaluation import evaluate_precision_vs_width, measure_on_log
from repro.core.explanation import Explanation
from repro.core.pxql.ast import TRUE_PREDICATE
from repro.core.queries import find_pair_of_interest, why_slower_despite_same_num_instances
from repro.logs.parser import parse_job_history
from repro.logs.store import ExecutionLog
from repro.logs.writer import write_job_history


class TestLogRoundTripIntegration:
    def test_simulated_records_survive_history_files(self, tiny_log, tmp_path):
        """Every simulated job can be written as a Hadoop-style history file
        and parsed back without losing features."""
        rebuilt = ExecutionLog()
        for job in tiny_log.jobs:
            path = tmp_path / f"{job.job_id}.log"
            write_job_history(path, job, tiny_log.tasks_of_job(job.job_id))
            parsed_job, parsed_tasks = parse_job_history(path)
            rebuilt.add_job(parsed_job, parsed_tasks)
        assert rebuilt.num_jobs == tiny_log.num_jobs
        assert rebuilt.num_tasks == tiny_log.num_tasks
        original = tiny_log.jobs[0]
        assert rebuilt.find_job(original.job_id).features == original.features

    def test_explanations_work_on_parsed_log(self, tiny_log, tmp_path):
        rebuilt = ExecutionLog()
        for job in tiny_log.jobs:
            path = tmp_path / f"{job.job_id}.log"
            write_job_history(path, job, tiny_log.tasks_of_job(job.job_id))
            rebuilt.add_job(*parse_job_history(path))
        px = PerfXplain(rebuilt)
        explanation = px.explain("""
            FOR JOBS ?, ?
            DESPITE pig_script_isSame = T
            OBSERVED duration_compare = GT
            EXPECTED duration_compare = SIM
        """, width=2)
        assert explanation.width >= 1


class TestPaperHeadlineResult:
    """The headline claim: PerfXplain explanations are more precise than the
    trivial (empty) explanation and at least match the naive baselines on the
    job-level query, measured on a held-out log."""

    def test_perfxplain_beats_empty_explanation_on_test_log(self, small_log, job_schema,
                                                            job_query):
        train, test = small_log.split_train_test(0.5, rng=random.Random(17),
                                                 always_include_job_ids=[job_query.first_id,
                                                                         job_query.second_id])
        explanation = PerfXplainExplainer().explain(train, job_query, width=3)
        empty = measure_on_log(Explanation(because=TRUE_PREDICATE), job_query, test)
        learned = measure_on_log(explanation, job_query, test)
        assert learned.precision > empty.precision + 0.1

    def test_precision_grows_with_width(self, small_log, job_query):
        sweep = evaluate_precision_vs_width(
            small_log, job_query, [PerfXplainExplainer()], widths=(0, 1, 3),
            repetitions=3, seed=5,
        )
        p0 = sweep.mean("PerfXplain", 0)
        p1 = sweep.mean("PerfXplain", 1)
        p3 = sweep.mean("PerfXplain", 3)
        assert p1 > p0
        assert p3 >= p1 - 0.05

    def test_motivating_scenario_explanation_mentions_configuration(self, small_log,
                                                                    job_schema):
        """Ask the motivating question (same script, same cluster size, very
        different input, same-ish runtime is *not* observed here, so we ask the
        GT question) and check the explanation points at configuration or data
        characteristics rather than identifiers."""
        query = why_slower_despite_same_num_instances()
        pair = find_pair_of_interest(small_log, query, schema=job_schema,
                                     rng=random.Random(2))
        explanation = PerfXplainExplainer().explain(
            small_log, query.with_pair(*pair), schema=job_schema, width=3
        )
        mentioned = {feature.split("_isSame")[0].split("_compare")[0]
                     for feature in explanation.because.features()}
        identifiers = {"dataset_name", "submit_time", "start_time"}
        assert mentioned - identifiers, "explanation should not consist solely of identifiers"
