"""The live-append path: protocol, catalog, service, HTTP, concurrency.

Appends are mutations: they run under the same per-log lock queries
hold, reject whole batches on duplicate ids with nothing applied, and
are never deduplicated in flight.  The concurrency hammer pins the
acceptance bar — queries racing appends from many threads end with the
exact answer a sequential cold session computes over the final log.
"""

import threading

import pytest

from repro.core.api import PerfXplainSession
from repro.exceptions import DuplicateRecordError, ProtocolError
from repro.logs.records import JobRecord, TaskRecord
from repro.logs.store import ExecutionLog
from repro.service import (
    AppendRequest,
    AppendResponse,
    ErrorCode,
    ErrorResponse,
    LogCatalog,
    PerfXplainHTTPServer,
    PerfXplainService,
    QueryRequest,
    QueryResponse,
    ServiceClient,
    parse_request,
)
from repro.workloads.grid import build_experiment_log, tiny_grid

WHY_SLOWER_LOOSE = """
    FOR JOBS ?, ?
    DESPITE pig_script_isSame = T
    OBSERVED duration_compare = GT
    EXPECTED duration_compare = SIM
"""


@pytest.fixture(scope="module")
def full_log():
    return build_experiment_log(tiny_grid(), seed=11)


def split_catalog(full, num_jobs, name="grow"):
    """A catalog serving the first ``num_jobs`` jobs, plus the tail."""
    head_ids = {job.job_id for job in full.jobs[:num_jobs]}
    log = ExecutionLog(
        jobs=full.jobs[:num_jobs],
        tasks=[task for task in full.tasks if task.job_id in head_ids],
    )
    catalog = LogCatalog()
    catalog.register(name, log)
    tail_jobs = list(full.jobs[num_jobs:])
    tail_tasks = [task for task in full.tasks if task.job_id not in head_ids]
    return catalog, tail_jobs, tail_tasks


def make_job(index):
    return JobRecord(
        job_id=f"appended_{index}",
        features={"pig_script": "extra.pig", "numinstances": 2},
        duration=10.0 + index,
    )


class TestProtocol:
    def test_request_round_trip(self):
        request = AppendRequest(
            log="grow",
            jobs=(make_job(0),),
            tasks=(
                TaskRecord(
                    task_id="t0", job_id="appended_0", features={}, duration=1.0
                ),
            ),
        )
        parsed = AppendRequest.from_json(request.to_json())
        assert parsed == request
        assert parse_request(request.to_dict()) == request

    def test_request_requires_protocol_2(self):
        data = AppendRequest(log="grow").to_dict()
        data["protocol_version"] = 1
        with pytest.raises(ProtocolError) as excinfo:
            AppendRequest.from_dict(data)
        assert excinfo.value.code is ErrorCode.UNSUPPORTED_PROTOCOL

    def test_request_rejects_kind_mismatch(self):
        data = AppendRequest(log="grow", jobs=(make_job(0),)).to_dict()
        data["jobs"][0]["kind"] = "task"
        with pytest.raises(ProtocolError):
            AppendRequest.from_dict(data)

    def test_request_rejects_non_array_records(self):
        data = AppendRequest(log="grow").to_dict()
        data["jobs"] = {"not": "an array"}
        with pytest.raises(ProtocolError):
            AppendRequest.from_dict(data)

    def test_response_round_trip(self):
        response = AppendResponse(
            log="grow",
            appended_jobs=2,
            appended_tasks=3,
            num_jobs=18,
            num_tasks=40,
            versions={"jobs_version": 18, "tasks_version": 40},
        )
        assert AppendResponse.from_json(response.to_json()) == response

    def test_response_rejects_non_integer_counts(self):
        data = AppendResponse(
            log="grow", appended_jobs=1, appended_tasks=0, num_jobs=1, num_tasks=0
        ).to_dict()
        data["num_jobs"] = "many"
        with pytest.raises(ProtocolError):
            AppendResponse.from_dict(data)


class TestCatalogAppend:
    def test_append_grows_log_and_counts(self, full_log):
        catalog, tail_jobs, tail_tasks = split_catalog(full_log, 12)
        result = catalog.append("grow", jobs=tail_jobs, tasks=tail_tasks)
        assert result["num_jobs"] == 16
        # One bulk extend = one version bump per kind.
        assert result["versions"]["jobs_version"] == 1
        assert result["versions"]["tasks_version"] == 1
        snapshot = catalog.describe()["grow"]
        assert snapshot["appends"] == 1
        assert snapshot["versions"] == result["versions"]

    def test_duplicate_batch_is_atomic(self, full_log):
        catalog, tail_jobs, _ = split_catalog(full_log, 12)
        log = catalog.log("grow")
        batch = [make_job(0), make_job(1), log.jobs[0]]
        with pytest.raises(DuplicateRecordError):
            catalog.append("grow", jobs=batch)
        assert log.num_jobs == 12  # nothing applied
        assert catalog.describe()["grow"]["appends"] == 0

    def test_append_flushes_cached_blocks_eagerly(self, full_log):
        catalog, tail_jobs, _ = split_catalog(full_log, 12)
        session = catalog.session("grow")
        session.explain(WHY_SLOWER_LOOSE)  # builds a job block
        catalog.append("grow", jobs=tail_jobs)
        # flush_appends on the write path extended the cached block.
        assert catalog.log("grow").append_stats()["block_extends"] >= 1


class TestServiceAppend:
    def test_execute_append_then_query_sees_growth(self, full_log):
        catalog, tail_jobs, tail_tasks = split_catalog(full_log, 12)
        with PerfXplainService(catalog, max_workers=2) as service:
            response = service.execute(
                AppendRequest(
                    log="grow", jobs=tuple(tail_jobs), tasks=tuple(tail_tasks)
                )
            )
            assert isinstance(response, AppendResponse)
            assert response.appended_jobs == len(tail_jobs)
            assert response.num_jobs == 16
            answer = service.execute(QueryRequest(log="grow", query=WHY_SLOWER_LOOSE))
            assert isinstance(answer, QueryResponse)

    def test_unknown_log_and_duplicate_map_to_error_codes(self, full_log):
        catalog, _, _ = split_catalog(full_log, 12)
        with PerfXplainService(catalog, max_workers=2) as service:
            missing = service.execute(AppendRequest(log="absent", jobs=(make_job(0),)))
            assert isinstance(missing, ErrorResponse)
            assert missing.code is ErrorCode.UNKNOWN_LOG
            duplicate = service.execute(
                AppendRequest(log="grow", jobs=(catalog.log("grow").jobs[0],))
            )
            assert isinstance(duplicate, ErrorResponse)
            assert duplicate.code is ErrorCode.DUPLICATE_RECORD


class TestHTTPAppend:
    @pytest.fixture()
    def grow_server(self, full_log):
        catalog, tail_jobs, tail_tasks = split_catalog(full_log, 12)
        with PerfXplainService(catalog, max_workers=4) as service:
            with PerfXplainHTTPServer(service, port=0) as server:
                yield server, catalog, tail_jobs, tail_tasks

    def test_append_endpoint(self, grow_server):
        server, catalog, tail_jobs, tail_tasks = grow_server
        client = ServiceClient(server.url)
        response = client.append("grow", jobs=tail_jobs, tasks=tail_tasks)
        assert isinstance(response, AppendResponse)
        assert response.num_jobs == 16
        assert catalog.log("grow").num_jobs == 16

    def test_duplicate_append_is_a_conflict(self, grow_server):
        server, catalog, _, _ = grow_server
        client = ServiceClient(server.url)
        response = client.append("grow", jobs=[catalog.log("grow").jobs[0]])
        assert isinstance(response, ErrorResponse)
        assert response.code == ErrorCode.DUPLICATE_RECORD

    def test_unknown_log_404(self, grow_server):
        server, _, _, _ = grow_server
        client = ServiceClient(server.url)
        response = client.append("absent", jobs=[make_job(0)])
        assert isinstance(response, ErrorResponse)
        assert response.code == ErrorCode.UNKNOWN_LOG

    def test_body_log_must_agree_with_path(self, grow_server):
        server, _, _, _ = grow_server
        request = AppendRequest(log="other", jobs=(make_job(0),))
        client = ServiceClient(server.url)
        response = client._post("/v1/logs/grow/append", request.to_json())
        assert isinstance(response, ErrorResponse)

    def test_append_survives_percent_encoded_names(self, full_log):
        catalog, _, _ = split_catalog(full_log, 12, name="prod 2024")
        with PerfXplainService(catalog, max_workers=2) as service:
            with PerfXplainHTTPServer(service, port=0) as server:
                client = ServiceClient(server.url)
                response = client.append("prod 2024", jobs=[make_job(0)])
                assert isinstance(response, AppendResponse)
                assert response.num_jobs == 13


class TestConcurrentAppendHammer:
    def test_racing_appends_and_queries_end_deterministic(self, full_log):
        catalog, tail_jobs, tail_tasks = split_catalog(full_log, 8)
        tasks_of = {}
        for task in tail_tasks:
            tasks_of.setdefault(task.job_id, []).append(task)
        batches = [
            (job, tasks_of.get(job.job_id, [])) for job in tail_jobs
        ]
        errors = []
        with PerfXplainService(catalog, max_workers=6) as service:

            def appender(batch):
                job, tasks = batch
                response = service.execute(
                    AppendRequest(log="grow", jobs=(job,), tasks=tuple(tasks))
                )
                if not isinstance(response, AppendResponse):
                    errors.append(response)

            def querier():
                for _ in range(4):
                    response = service.execute(
                        QueryRequest(log="grow", query=WHY_SLOWER_LOOSE)
                    )
                    if not isinstance(response, QueryResponse):
                        errors.append(response)

            threads = [
                threading.Thread(target=appender, args=(batch,)) for batch in batches
            ] + [threading.Thread(target=querier) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
            log = catalog.log("grow")
            assert log.num_jobs == 16
            assert log.num_tasks == len(full_log.tasks)
            final = service.execute(QueryRequest(log="grow", query=WHY_SLOWER_LOOSE))

        # Sequential oracle: a cold session over the final record lists
        # (same seed the catalog gives its sessions).
        oracle_log = ExecutionLog(jobs=list(log.jobs), tasks=list(log.tasks))
        oracle = PerfXplainSession(oracle_log, seed=0)
        resolved = oracle.resolve(WHY_SLOWER_LOOSE)
        assert isinstance(final, QueryResponse)
        assert (final.entry.first_id, final.entry.second_id) == (
            resolved.first_id,
            resolved.second_id,
        )
        assert final.entry.explanation.to_dict() == oracle.explain(
            WHY_SLOWER_LOOSE
        ).to_dict()
