"""Concurrent reads against one log: identity, overlap, linearisability.

The reader-writer redesign must deliver three things at once, and each
gets its own proof here:

* **Identity** — responses from a multi-threaded hammer against one log
  are bit-identical to a fresh-session sequential oracle.
* **Overlap** — two queries genuinely hold the read side together
  (a barrier inside two instrumented techniques passes only if both are
  in their critical sections simultaneously), and the ``serialize_reads``
  compatibility mode demonstrably prevents exactly that.
* **Linearisability under appends** — while a log grows, every racing
  read observes either the complete pre-append state or the complete
  post-append state, never a torn mixture, and reads issued after the
  append completes observe the post state.
"""

import random
import threading

import pytest

from repro.core.api import PerfXplainSession
from repro.core.explanation import Explanation
from repro.core.pxql.ast import Comparison, Operator, Predicate
from repro.core.registry import register_explainer, unregister_explainer
from repro.logs.store import ExecutionLog
from repro.service import (
    AppendRequest,
    AppendResponse,
    ErrorResponse,
    LogCatalog,
    PerfXplainService,
    QueryRequest,
    QueryResponse,
)
from repro.workloads.grid import build_experiment_log, tiny_grid

WHY_SLOWER = """
    FOR JOBS ?, ?
    DESPITE numinstances_isSame = T AND pig_script_isSame = T
    OBSERVED duration_compare = GT
    EXPECTED duration_compare = SIM
"""

WHY_SLOWER_LOOSE = """
    FOR JOBS ?, ?
    DESPITE pig_script_isSame = T
    OBSERVED duration_compare = GT
    EXPECTED duration_compare = SIM
"""

WHY_LAST_TASK_FASTER = """
    FOR TASKS ?, ?
    DESPITE job_id_isSame = T AND task_type_isSame = T
    OBSERVED duration_compare = GT
    EXPECTED duration_compare = SIM
"""


def _comparable(response):
    assert isinstance(response, QueryResponse), response
    entry = response.entry
    assert entry.explanation is not None
    return (
        response.log,
        entry.query,
        entry.first_id,
        entry.second_id,
        entry.technique,
        entry.width,
        entry.explanation.to_dict(),
    )


def _oracle_answer(log, request):
    """What a direct synchronous fresh-session call returns for a request."""
    session = PerfXplainSession(log, seed=0)
    resolved = session.resolve(request.query)
    explanation = session.explain(
        resolved, width=request.width, technique=request.technique,
        auto_despite=request.auto_despite,
    )
    return (
        request.log,
        str(resolved),
        resolved.first_id,
        resolved.second_id,
        explanation.technique,
        explanation.width,
        explanation.to_dict(),
    )


class TestReadIdentity:
    """Hammered concurrent reads are bit-identical to the oracle."""

    NUM_THREADS = 6
    REQUESTS_PER_THREAD = 10

    def _request_mix(self):
        mix = []
        for text in (WHY_SLOWER, WHY_SLOWER_LOOSE, WHY_LAST_TASK_FASTER):
            for width in (1, 2):
                mix.append(QueryRequest(log="tiny", query=text, width=width))
        for technique in ("ruleofthumb", "simbutdiff"):
            mix.append(
                QueryRequest(log="tiny", query=WHY_SLOWER, width=2,
                             technique=technique)
            )
        return mix

    def test_concurrent_reads_equal_sequential_oracle(self, tiny_log):
        mix = self._request_mix()
        oracle = {
            request.canonical_key(): _oracle_answer(tiny_log, request)
            for request in mix
        }
        catalog = LogCatalog()
        catalog.register("tiny", tiny_log)
        results: dict[int, list] = {}
        errors: list[BaseException] = []

        with PerfXplainService(catalog, max_workers=6) as service:
            start = threading.Barrier(self.NUM_THREADS, timeout=30.0)

            def hammer(thread_index: int) -> None:
                try:
                    rng = random.Random(1000 + thread_index)
                    picks = [
                        rng.choice(mix) for _ in range(self.REQUESTS_PER_THREAD)
                    ]
                    start.wait()  # maximise racing on cold caches
                    results[thread_index] = [
                        (request.canonical_key(), service.execute(request))
                        for request in picks
                    ]
                except BaseException as error:  # pragma: no cover - diagnostic
                    errors.append(error)

            threads = [
                threading.Thread(target=hammer, args=(index,))
                for index in range(self.NUM_THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert not errors
        answered = 0
        for responses in results.values():
            for key, response in responses:
                assert _comparable(response) == oracle[key]
                answered += 1
        assert answered == self.NUM_THREADS * self.REQUESTS_PER_THREAD
        # The cold burst raced on shared keys; compute-once must have
        # collapsed at least some of them into piggybacked waits.
        described = catalog.describe()["tiny"]
        assert described["concurrency"]["leads"] >= 1


class _BarrierExplainer:
    """Instrumented technique: blocks until its partner is also inside."""

    #: Shared across both registered techniques; re-armed per test.
    barrier: "threading.Barrier | None" = None
    name = "Barrier"

    def explain(self, log, query, schema=None, width=None):
        assert self.barrier is not None
        self.barrier.wait()  # raises BrokenBarrierError on timeout
        because = Predicate.of(Comparison("pig_script_isSame", Operator.EQ, "T"))
        return Explanation(because=because, technique=self.name)


class _BarrierExplainerTwin(_BarrierExplainer):
    name = "BarrierTwin"


@pytest.fixture()
def barrier_techniques():
    """Two distinct barrier techniques sharing one two-party barrier.

    Distinct names mean distinct per-technique locks, so only the
    per-log lock decides whether the two explains can be inside together.
    """
    register_explainer("barrier-a", _BarrierExplainer)
    register_explainer("barrier-b", _BarrierExplainerTwin)
    yield
    unregister_explainer("barrier-a")
    unregister_explainer("barrier-b")
    _BarrierExplainer.barrier = None


def _race_barrier_queries(service):
    requests = [
        QueryRequest(log="tiny", query=WHY_SLOWER_LOOSE, technique=name)
        for name in ("barrier-a", "barrier-b")
    ]
    futures = [service.submit(request) for request in requests]
    return [future.result() for future in futures]


class TestReadOverlap:
    def test_two_reads_hold_the_lock_together(self, catalog, barrier_techniques):
        # Passes only if both explains are inside the per-log critical
        # section at the same time — the barrier's second party never
        # arrives under mutual exclusion.
        _BarrierExplainer.barrier = threading.Barrier(2, timeout=20.0)
        with PerfXplainService(catalog, max_workers=4) as service:
            responses = _race_barrier_queries(service)
        for response in responses:
            assert isinstance(response, QueryResponse), response

    def test_serialize_reads_restores_mutual_exclusion(
        self, catalog, barrier_techniques
    ):
        # The compatibility flag reverts reads to the exclusive side: the
        # two explains can never be inside together, so the shared barrier
        # must time out — proof the baseline really serialises.
        _BarrierExplainer.barrier = threading.Barrier(2, timeout=1.0)
        with PerfXplainService(
            catalog, max_workers=4, serialize_reads=True
        ) as service:
            responses = _race_barrier_queries(service)
        assert any(isinstance(r, ErrorResponse) for r in responses)


class TestAppendLinearisability:
    HEAD_JOBS = 12
    NUM_READERS = 4

    @pytest.fixture(scope="class")
    def full_log(self):
        return build_experiment_log(tiny_grid(), seed=11)

    @staticmethod
    def _split(full, num_jobs):
        head_ids = {job.job_id for job in full.jobs[:num_jobs]}
        head = ExecutionLog(
            jobs=list(full.jobs[:num_jobs]),
            tasks=[task for task in full.tasks if task.job_id in head_ids],
        )
        tail_jobs = list(full.jobs[num_jobs:])
        tail_tasks = [task for task in full.tasks if task.job_id not in head_ids]
        return head, tail_jobs, tail_tasks

    def test_reads_racing_one_append_see_pre_or_post_state(self, full_log):
        served, tail_jobs, tail_tasks = self._split(full_log, self.HEAD_JOBS)
        pre_log, _, _ = self._split(full_log, self.HEAD_JOBS)
        post_log = ExecutionLog(
            jobs=list(full_log.jobs), tasks=list(full_log.tasks)
        )
        request = QueryRequest(log="grow", query=WHY_SLOWER_LOOSE, width=2)
        pre_oracle = _oracle_answer(pre_log, request)
        post_oracle = _oracle_answer(post_log, request)

        catalog = LogCatalog()
        catalog.register("grow", served)
        append_done = threading.Event()
        observed: list[tuple] = []
        observed_lock = threading.Lock()
        errors: list[BaseException] = []

        with PerfXplainService(catalog, max_workers=6) as service:
            # Warm the pre-state so readers race the append itself, not
            # the first-load path.
            assert _comparable(service.execute(request)) == pre_oracle

            def reader() -> None:
                try:
                    while True:
                        finished = append_done.is_set()
                        response = service.execute(request)
                        with observed_lock:
                            observed.append(_comparable(response))
                        if finished:
                            return
                except BaseException as error:  # pragma: no cover
                    errors.append(error)

            def writer() -> None:
                try:
                    response = service.execute(
                        AppendRequest(
                            log="grow",
                            jobs=tuple(tail_jobs),
                            tasks=tuple(tail_tasks),
                        )
                    )
                    assert isinstance(response, AppendResponse), response
                finally:
                    append_done.set()

            threads = [
                threading.Thread(target=reader)
                for _ in range(self.NUM_READERS)
            ]
            writer_thread = threading.Thread(target=writer)
            for thread in threads:
                thread.start()
            writer_thread.start()
            writer_thread.join(timeout=120.0)
            for thread in threads:
                thread.join(timeout=120.0)

            assert not errors
            assert observed
            # Every racing read saw exactly the pre or the post state —
            # never a torn mixture of old pair and new matrix (or vice
            # versa), which would match neither oracle.
            for answer in observed:
                assert answer in (pre_oracle, post_oracle)
            # With the race over (nothing in flight to piggyback on), the
            # service's answer is the post state, bit-identical to a cold
            # session over the fully-grown log.
            assert _comparable(service.execute(request)) == post_oracle
