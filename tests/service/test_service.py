"""Tests for the concurrent query service: determinism, dedup, errors."""

import random
import threading

import pytest

from repro.core.api import PerfXplainSession
from repro.service import (
    BatchRequest,
    BatchResponse,
    ErrorCode,
    ErrorResponse,
    EvaluateRequest,
    EvaluateResponse,
    LogCatalog,
    PerfXplainService,
    QueryRequest,
    QueryResponse,
)

WHY_SLOWER = """
    FOR JOBS ?, ?
    DESPITE numinstances_isSame = T AND pig_script_isSame = T
    OBSERVED duration_compare = GT
    EXPECTED duration_compare = SIM
"""

WHY_SLOWER_LOOSE = """
    FOR JOBS ?, ?
    DESPITE pig_script_isSame = T
    OBSERVED duration_compare = GT
    EXPECTED duration_compare = SIM
"""

WHY_LAST_TASK_FASTER = """
    FOR TASKS ?, ?
    DESPITE job_id_isSame = T AND task_type_isSame = T
    OBSERVED duration_compare = GT
    EXPECTED duration_compare = SIM
"""


def _comparable(response):
    """The deterministic part of a response (elapsed_ms necessarily varies)."""
    assert isinstance(response, QueryResponse), response
    entry = response.entry
    assert entry.explanation is not None
    return (
        response.log,
        entry.query,
        entry.first_id,
        entry.second_id,
        entry.technique,
        entry.width,
        entry.explanation.to_dict(),
    )


def _oracle_answer(log, request):
    """What a direct synchronous session call returns for a request."""
    session = PerfXplainSession(log, seed=0)
    resolved = session.resolve(request.query)
    explanation = session.explain(
        resolved, width=request.width, technique=request.technique,
        auto_despite=request.auto_despite,
    )
    return (
        request.log,
        str(resolved),
        resolved.first_id,
        resolved.second_id,
        explanation.technique,
        explanation.width,
        explanation.to_dict(),
    )


class TestSingleQuery:
    def test_response_bit_identical_to_direct_session_call(self, service, tiny_log):
        request = QueryRequest(log="tiny", query=WHY_SLOWER_LOOSE, width=2)
        response = service.execute(request)
        assert _comparable(response) == _oracle_answer(tiny_log, request)

    def test_elapsed_ms_recorded(self, service):
        response = service.execute(QueryRequest(log="tiny", query=WHY_SLOWER_LOOSE))
        assert response.entry.elapsed_ms is not None
        assert response.entry.elapsed_ms > 0.0

    def test_unknown_log(self, service):
        response = service.execute(QueryRequest(log="absent", query=WHY_SLOWER_LOOSE))
        assert isinstance(response, ErrorResponse)
        assert response.code == ErrorCode.UNKNOWN_LOG

    def test_bad_protocol_version(self, service):
        request = QueryRequest(
            log="tiny", query=WHY_SLOWER_LOOSE, protocol_version=99
        )
        response = service.execute(request)
        assert isinstance(response, ErrorResponse)
        assert response.code == ErrorCode.UNSUPPORTED_PROTOCOL

    def test_unparseable_query(self, service):
        response = service.execute(QueryRequest(log="tiny", query="NOT PXQL AT ALL"))
        assert isinstance(response, ErrorResponse)
        assert response.code == ErrorCode.INVALID_QUERY

    def test_unknown_technique(self, service):
        request = QueryRequest(
            log="tiny", query=WHY_SLOWER_LOOSE, technique="no-such-technique"
        )
        response = service.execute(request)
        assert isinstance(response, ErrorResponse)
        assert response.code == ErrorCode.UNKNOWN_TECHNIQUE

    def test_closed_service_refuses_work(self, catalog):
        service = PerfXplainService(catalog)
        service.close()
        response = service.execute(QueryRequest(log="tiny", query=WHY_SLOWER_LOOSE))
        assert isinstance(response, ErrorResponse)


class TestBatchExecution:
    def test_responses_in_request_order(self, service, tiny_log):
        requests = tuple(
            QueryRequest(log="tiny", query=text, width=width)
            for text in (WHY_SLOWER_LOOSE, WHY_SLOWER, WHY_LAST_TASK_FASTER)
            for width in (1, 2)
        )
        response = service.execute_batch(BatchRequest(requests=requests))
        assert isinstance(response, BatchResponse)
        assert len(response.responses) == len(requests)
        for request, item in zip(requests, response.responses):
            assert _comparable(item) == _oracle_answer(tiny_log, request)

    def test_failures_embedded_per_item(self, service):
        requests = (
            QueryRequest(log="tiny", query=WHY_SLOWER_LOOSE, width=2),
            QueryRequest(log="absent", query=WHY_SLOWER_LOOSE),
        )
        response = service.execute_batch(BatchRequest(requests=requests))
        assert isinstance(response.responses[0], QueryResponse)
        assert isinstance(response.responses[1], ErrorResponse)
        assert not response.ok
        assert len(response.failures) == 1

    def test_identical_inflight_queries_deduplicated(self, service):
        requests = tuple(
            QueryRequest(log="tiny", query=WHY_SLOWER_LOOSE, width=2)
            for _ in range(16)
        )
        response = service.execute_batch(BatchRequest(requests=requests))
        assert response.ok
        stats = service.stats()
        # All 16 are identical: at most a handful can slip past the dedup
        # window (one per pool slot), the rest must piggyback.
        assert stats["deduplicated"] >= 8
        assert stats["executed"] + stats["deduplicated"] == 16

    def test_stats_expose_per_log_cache_counters(self, service):
        service.execute(QueryRequest(log="tiny", query=WHY_SLOWER_LOOSE, width=2))
        stats = service.stats()
        assert stats["logs"]["tiny"]["loaded"] is True
        assert stats["logs"]["tiny"]["cache_stats"]["explanations"]["misses"] >= 1


class TestEvaluate:
    def test_evaluate_matches_direct_harness(self, service, tiny_log):
        request = EvaluateRequest(
            log="tiny", query=WHY_SLOWER, widths=(0, 2), repetitions=2, seed=0,
            techniques=("perfxplain",),
        )
        response = service.execute(request)
        assert isinstance(response, EvaluateResponse)
        assert response.first_id and response.second_id
        assert "PerfXplain" in response.results
        assert "precision_mean" in response.results["PerfXplain"]["2"]

    def test_evaluate_unknown_log(self, service):
        request = EvaluateRequest(log="absent", query=WHY_SLOWER)
        response = service.execute(request)
        assert isinstance(response, ErrorResponse)
        assert response.code == ErrorCode.UNKNOWN_LOG


class TestConcurrencyOracle:
    """Hammer one service from N threads; responses must equal the oracle."""

    NUM_THREADS = 8
    REQUESTS_PER_THREAD = 12

    def _request_mix(self):
        """A deterministic interleaved mix of repeated and novel queries."""
        mix = []
        for text in (WHY_SLOWER_LOOSE, WHY_SLOWER, WHY_LAST_TASK_FASTER):
            for width in (1, 2, 3):
                mix.append(QueryRequest(log="tiny", query=text, width=width))
        for technique in ("ruleofthumb", "simbutdiff"):
            mix.append(
                QueryRequest(log="tiny", query=WHY_SLOWER_LOOSE, width=2,
                             technique=technique)
            )
        return mix

    def test_hammered_service_equals_sequential_oracle(self, tiny_log):
        mix = self._request_mix()
        oracle = {
            request.canonical_key(): _oracle_answer(tiny_log, request)
            for request in mix
        }

        catalog = LogCatalog()
        catalog.register("tiny", tiny_log)
        results: dict[int, list] = {}
        errors: list[BaseException] = []

        with PerfXplainService(catalog, max_workers=6) as service:
            def hammer(thread_index: int) -> None:
                try:
                    rng = random.Random(thread_index)
                    picks = [
                        rng.choice(mix) for _ in range(self.REQUESTS_PER_THREAD)
                    ]
                    results[thread_index] = [
                        (request.canonical_key(), service.execute(request))
                        for request in picks
                    ]
                except BaseException as error:  # pragma: no cover - diagnostic
                    errors.append(error)

            threads = [
                threading.Thread(target=hammer, args=(index,))
                for index in range(self.NUM_THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert not errors
        answered = 0
        for thread_index in range(self.NUM_THREADS):
            for key, response in results[thread_index]:
                assert _comparable(response) == oracle[key]
                answered += 1
        assert answered == self.NUM_THREADS * self.REQUESTS_PER_THREAD

    def test_two_logs_never_share_session_state(self, tiny_log):
        """Two catalog entries over the *same* records stay independent."""
        catalog = LogCatalog()
        catalog.register("first", tiny_log)
        catalog.register("second", tiny_log)
        with PerfXplainService(catalog) as service:
            service.execute(QueryRequest(log="first", query=WHY_SLOWER_LOOSE, width=2))
            snapshot = service.stats()["logs"]
        assert snapshot["first"]["cache_stats"]["explanations"]["size"] == 1
        assert snapshot["second"]["cache_stats"] is None  # session never created


class TestLifecycle:
    def test_context_manager_closes(self, catalog):
        with PerfXplainService(catalog) as service:
            assert service.execute(
                QueryRequest(log="tiny", query=WHY_SLOWER_LOOSE)
            ).ok
        response = service.execute(QueryRequest(log="tiny", query=WHY_SLOWER_LOOSE))
        assert isinstance(response, ErrorResponse)

    def test_invalid_worker_count_rejected(self, catalog):
        with pytest.raises(ValueError):
            PerfXplainService(catalog, max_workers=0)
