"""Tests for the log catalog: registration, lazy loading, session reuse."""

import pytest

from repro.core.api import PerfXplainSession
from repro.exceptions import CatalogError
from repro.service import ErrorCode, LogCatalog

WHY_SLOWER_LOOSE = """
    FOR JOBS ?, ?
    DESPITE pig_script_isSame = T
    OBSERVED duration_compare = GT
    EXPECTED duration_compare = SIM
"""


class TestRegistration:
    def test_register_and_names(self, tiny_log):
        catalog = LogCatalog()
        catalog.register("b", tiny_log)
        catalog.register("a", tiny_log)
        assert catalog.names() == ("a", "b")
        assert "a" in catalog and len(catalog) == 2
        assert list(catalog) == ["a", "b"]

    def test_duplicate_name_rejected(self, tiny_log):
        catalog = LogCatalog()
        catalog.register("dup", tiny_log)
        with pytest.raises(CatalogError) as excinfo:
            catalog.register_path("dup", "anywhere.json")
        assert excinfo.value.code == ErrorCode.INVALID_REQUEST

    def test_empty_name_rejected(self, tiny_log):
        catalog = LogCatalog()
        with pytest.raises(CatalogError):
            catalog.register("   ", tiny_log)

    def test_unknown_log_lists_registered(self, tiny_log):
        catalog = LogCatalog()
        catalog.register("known", tiny_log)
        with pytest.raises(CatalogError, match="known") as excinfo:
            catalog.log("absent")
        assert excinfo.value.code == ErrorCode.UNKNOWN_LOG

    def test_unregister(self, tiny_log):
        catalog = LogCatalog()
        catalog.register("gone", tiny_log)
        catalog.unregister("gone")
        assert "gone" not in catalog
        with pytest.raises(CatalogError):
            catalog.unregister("gone")


class TestLazyLoading:
    @pytest.mark.parametrize("filename", ["log.json", "log.jsonl", "log.jsonl.gz"])
    def test_path_loaded_on_first_use(self, tiny_log, tmp_path, filename):
        path = tmp_path / filename
        tiny_log.save(path)
        catalog = LogCatalog()
        catalog.register_path("lazy", path)
        assert not catalog.is_loaded("lazy")
        assert catalog.log("lazy").num_jobs == tiny_log.num_jobs
        assert catalog.is_loaded("lazy")

    def test_registration_accepts_missing_file_until_first_use(self, tmp_path):
        catalog = LogCatalog()
        catalog.register_path("late", tmp_path / "not_yet.json")
        with pytest.raises(CatalogError) as excinfo:
            catalog.log("late")
        assert excinfo.value.code == ErrorCode.LOG_LOAD_FAILED

    def test_malformed_file_reports_load_failure(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        catalog = LogCatalog()
        catalog.register_path("broken", path)
        with pytest.raises(CatalogError) as excinfo:
            catalog.session("broken")
        assert excinfo.value.code == ErrorCode.LOG_LOAD_FAILED

    def test_describe_never_triggers_a_load(self, tiny_log, tmp_path):
        path = tmp_path / "log.json"
        tiny_log.save(path)
        catalog = LogCatalog()
        catalog.register_path("lazy", path)
        snapshot = catalog.describe()
        assert snapshot["lazy"]["loaded"] is False
        assert snapshot["lazy"]["num_jobs"] is None
        assert not catalog.is_loaded("lazy")


class TestSessionReuse:
    def test_one_session_per_log(self, tiny_log):
        catalog = LogCatalog()
        catalog.register("tiny", tiny_log)
        first = catalog.session("tiny")
        second = catalog.session("tiny")
        assert first is second
        assert isinstance(first, PerfXplainSession)

    def test_session_caches_shared_across_traffic(self, tiny_log):
        catalog = LogCatalog()
        catalog.register("tiny", tiny_log)
        catalog.session("tiny").explain(WHY_SLOWER_LOOSE, width=2)
        catalog.session("tiny").explain(WHY_SLOWER_LOOSE, width=2)
        stats = catalog.session("tiny").cache_stats()
        assert stats["explanations"].hits == 1

    def test_describe_exposes_cache_stats(self, tiny_log):
        catalog = LogCatalog()
        catalog.register("tiny", tiny_log)
        catalog.session("tiny").explain(WHY_SLOWER_LOOSE, width=2)
        snapshot = catalog.describe()
        assert snapshot["tiny"]["loaded"] is True
        assert snapshot["tiny"]["num_jobs"] == tiny_log.num_jobs
        stats = snapshot["tiny"]["cache_stats"]
        assert stats["explanations"]["misses"] == 1

    def test_cache_capacity_forwarded(self, tiny_log):
        catalog = LogCatalog(cache_capacity=7)
        catalog.register("tiny", tiny_log)
        stats = catalog.session("tiny").cache_stats()
        assert stats["explanations"].capacity == 7


class TestCatalogIsolation:
    """Regression: two catalogs must never share mutable session state."""

    def test_sessions_are_distinct_objects(self, tiny_log):
        first = LogCatalog()
        second = LogCatalog()
        first.register("shared", tiny_log)
        second.register("shared", tiny_log)
        assert first.session("shared") is not second.session("shared")

    def test_traffic_on_one_catalog_leaves_the_other_cold(self, tiny_log):
        hot = LogCatalog()
        cold = LogCatalog()
        hot.register("shared", tiny_log)
        cold.register("shared", tiny_log)
        hot.session("shared").explain(WHY_SLOWER_LOOSE, width=2)
        cold_stats = cold.session("shared").cache_stats()
        # ``record_blocks`` is the log's own cache — both catalogs register
        # the same log object, so sharing it is the design, not a leak.
        cold_stats.pop("record_blocks")
        assert all(s.size == 0 for s in cold_stats.values())
        assert all(s.lookups == 0 for s in cold_stats.values())

    def test_locks_are_per_catalog(self, tiny_log):
        first = LogCatalog()
        second = LogCatalog()
        first.register("shared", tiny_log)
        second.register("shared", tiny_log)
        assert first.lock("shared") is not second.lock("shared")
