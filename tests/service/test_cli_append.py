"""Tests for the ``append`` CLI subcommand: tailing a JSONL file into a
served log over HTTP."""

import json
import threading
import time

import pytest

from repro.cli import main
from repro.logs.records import JobRecord, record_to_dict
from repro.logs.store import ExecutionLog
from repro.service import LogCatalog, PerfXplainService
from repro.service.http import PerfXplainHTTPServer
from repro.workloads.grid import build_experiment_log, tiny_grid


@pytest.fixture(scope="module")
def full_log():
    return build_experiment_log(tiny_grid(), seed=11)


@pytest.fixture()
def served(full_log):
    """A server over the first 12 jobs; yields (url, log, tail records)."""
    head_ids = {job.job_id for job in full_log.jobs[:12]}
    log = ExecutionLog(
        jobs=full_log.jobs[:12],
        tasks=[task for task in full_log.tasks if task.job_id in head_ids],
    )
    catalog = LogCatalog()
    catalog.register("grow", log)
    tail = [job for job in full_log.jobs[12:]] + [
        task for task in full_log.tasks if task.job_id not in head_ids
    ]
    with PerfXplainService(catalog, max_workers=2) as service:
        with PerfXplainHTTPServer(service, port=0) as server:
            yield server.url, log, tail


def write_jsonl(path, records, meta=True):
    with open(path, "w", encoding="utf-8") as handle:
        if meta:
            handle.write('{"kind": "meta", "format": "perfxplain-log", "version": 1}\n')
        for record in records:
            handle.write(json.dumps(record_to_dict(record)) + "\n")


class TestAppendCommand:
    def test_appends_file_in_batches(self, served, tmp_path, capsys):
        url, log, tail = served
        path = tmp_path / "tail.jsonl"
        write_jsonl(path, tail)
        exit_code = main([
            "append", "--url", url, "--log", "grow",
            "--input", str(path), "--batch-size", "3",
        ])
        assert exit_code == 0
        assert log.num_jobs == 16
        err = capsys.readouterr().err
        assert "done: 4 job(s)" in err

    def test_final_line_without_newline_is_sent(self, served, tmp_path):
        url, log, tail = served
        initial_tasks = log.num_tasks
        path = tmp_path / "tail.jsonl"
        write_jsonl(path, tail, meta=False)
        # Strip the trailing newline: the last record must still land.
        text = path.read_text(encoding="utf-8").rstrip("\n")
        path.write_text(text, encoding="utf-8")
        exit_code = main([
            "append", "--url", url, "--log", "grow", "--input", str(path),
        ])
        assert exit_code == 0
        assert log.num_jobs == 16
        assert log.num_tasks == initial_tasks + len(tail) - 4

    def test_duplicate_record_fails_with_code(self, served, tmp_path, capsys):
        url, log, _ = served
        path = tmp_path / "dup.jsonl"
        write_jsonl(path, [log.jobs[0]], meta=False)
        exit_code = main([
            "append", "--url", url, "--log", "grow", "--input", str(path),
        ])
        assert exit_code == 1
        assert "duplicate_record" in capsys.readouterr().err

    def test_missing_input_fails_cleanly(self, served, capsys):
        url, _, _ = served
        exit_code = main([
            "append", "--url", url, "--log", "grow", "--input", "/no/such.jsonl",
        ])
        assert exit_code == 1
        assert "does not exist" in capsys.readouterr().err

    def test_follow_tails_a_growing_file(self, served, tmp_path):
        url, log, tail = served
        path = tmp_path / "live.jsonl"
        path.write_text("", encoding="utf-8")
        expected_tasks = log.num_tasks + sum(
            1 for record in tail if not isinstance(record, JobRecord)
        )

        def writer():
            # Append records one at a time, splitting one line across two
            # writes to prove the reader never parses a half-written line.
            with open(path, "a", encoding="utf-8") as handle:
                for record in tail:
                    line = json.dumps(record_to_dict(record)) + "\n"
                    handle.write(line[: len(line) // 2])
                    handle.flush()
                    time.sleep(0.01)
                    handle.write(line[len(line) // 2 :])
                    handle.flush()

        thread = threading.Thread(target=writer)
        thread.start()

        def tailer():
            main([
                "append", "--url", url, "--log", "grow", "--input", str(path),
                "--follow", "--poll", "0.02", "--batch-size", "2",
            ])

        # The tailer loops until interrupted; a daemon thread stands in for
        # the operator's Ctrl-C once the log has caught up.
        tail_thread = threading.Thread(target=tailer, daemon=True)
        tail_thread.start()
        thread.join()
        deadline = time.time() + 10
        while time.time() < deadline and (
            log.num_jobs < 16 or log.num_tasks < expected_tasks
        ):
            time.sleep(0.05)
        assert log.num_jobs == 16
        assert log.num_tasks == expected_tasks
