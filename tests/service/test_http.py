"""Tests for the HTTP endpoint and the ServiceClient."""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.api import PerfXplainSession
from repro.exceptions import ServiceError
from repro.service import (
    BatchResponse,
    ErrorCode,
    ErrorResponse,
    EvaluateResponse,
    PerfXplainHTTPServer,
    QueryRequest,
    QueryResponse,
    ServiceClient,
)

WHY_SLOWER = """
    FOR JOBS ?, ?
    DESPITE numinstances_isSame = T AND pig_script_isSame = T
    OBSERVED duration_compare = GT
    EXPECTED duration_compare = SIM
"""

WHY_SLOWER_LOOSE = """
    FOR JOBS ?, ?
    DESPITE pig_script_isSame = T
    OBSERVED duration_compare = GT
    EXPECTED duration_compare = SIM
"""


@pytest.fixture()
def server(service):
    """The service bound to an ephemeral localhost port."""
    with PerfXplainHTTPServer(service, port=0) as server:
        yield server


@pytest.fixture()
def client(server) -> ServiceClient:
    return ServiceClient(server.url)


def _post_raw(url: str, path: str, body: bytes, content_type="application/json"):
    """POST raw bytes; returns (status, parsed JSON body)."""
    request = urllib.request.Request(
        url + path, data=body, headers={"Content-Type": content_type}, method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as reply:
            return reply.status, json.loads(reply.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


class TestQueryEndpoint:
    def test_query_round_trips_through_the_protocol(self, client, tiny_log):
        response = client.query("tiny", WHY_SLOWER_LOOSE, width=2)
        assert isinstance(response, QueryResponse)
        oracle = PerfXplainSession(tiny_log, seed=0)
        resolved = oracle.resolve(WHY_SLOWER_LOOSE)
        expected = oracle.explain(resolved, width=2)
        assert response.entry.explanation.to_dict() == expected.to_dict()
        assert response.entry.first_id == resolved.first_id
        assert response.entry.second_id == resolved.second_id

    def test_explain_helper_returns_entry(self, client):
        entry = client.explain("tiny", WHY_SLOWER_LOOSE, width=2)
        assert entry.ok
        assert entry.technique == "PerfXplain"
        assert entry.elapsed_ms is not None

    def test_type_tag_optional_in_post_body(self, server, tiny_log):
        body = QueryRequest(log="tiny", query=WHY_SLOWER_LOOSE, width=1).to_dict()
        del body["type"]
        status, payload = _post_raw(
            server.url, "/v1/query", json.dumps(body).encode("utf-8")
        )
        assert status == 200
        assert payload["type"] == "query_result"

    def test_type_tag_mismatch_rejected(self, server):
        body = QueryRequest(log="tiny", query=WHY_SLOWER_LOOSE).to_dict()
        status, payload = _post_raw(
            server.url, "/v1/batch", json.dumps(body).encode("utf-8")
        )
        assert status == 400
        assert payload["code"] == ErrorCode.INVALID_REQUEST


class TestErrorStatuses:
    def test_unknown_log_is_404(self, server, client):
        response = client.query("absent", WHY_SLOWER_LOOSE)
        assert isinstance(response, ErrorResponse)
        assert response.code == ErrorCode.UNKNOWN_LOG
        body = QueryRequest(log="absent", query=WHY_SLOWER_LOOSE).to_json()
        status, _ = _post_raw(server.url, "/v1/query", body.encode("utf-8"))
        assert status == 404

    def test_bad_protocol_version_is_400(self, server):
        body = QueryRequest(log="tiny", query=WHY_SLOWER_LOOSE).to_dict()
        body["protocol_version"] = 99
        status, payload = _post_raw(
            server.url, "/v1/query", json.dumps(body).encode("utf-8")
        )
        assert status == 400
        assert payload["code"] == ErrorCode.UNSUPPORTED_PROTOCOL

    def test_invalid_json_body_is_400(self, server):
        status, payload = _post_raw(server.url, "/v1/query", b"{broken json")
        assert status == 400
        assert payload["code"] == ErrorCode.INVALID_REQUEST

    def test_unparseable_query_is_400(self, server):
        body = QueryRequest(log="tiny", query="NOT PXQL").to_json()
        status, payload = _post_raw(server.url, "/v1/query", body.encode("utf-8"))
        assert status == 400
        assert payload["code"] == ErrorCode.INVALID_QUERY

    def test_unknown_path_is_404(self, server):
        status, payload = _post_raw(server.url, "/v1/nope", b"{}")
        assert status == 404

    def test_explain_helper_raises_service_error(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.explain("absent", WHY_SLOWER_LOOSE)
        assert excinfo.value.code == ErrorCode.UNKNOWN_LOG


class TestBatchEndpoint:
    def test_batch_round_trip(self, client):
        requests = [
            QueryRequest(log="tiny", query=WHY_SLOWER_LOOSE, width=width)
            for width in (1, 2)
        ]
        response = client.batch(requests)
        assert isinstance(response, BatchResponse)
        assert response.ok
        assert len(response.responses) == 2

    def test_batch_with_embedded_failure_still_200(self, server, client):
        requests = [
            QueryRequest(log="tiny", query=WHY_SLOWER_LOOSE, width=1),
            QueryRequest(log="absent", query=WHY_SLOWER_LOOSE),
        ]
        response = client.batch(requests)
        assert isinstance(response, BatchResponse)
        assert not response.ok
        assert response.failures[0].code == ErrorCode.UNKNOWN_LOG


class TestEvaluateEndpoint:
    def test_evaluate_over_http(self, client):
        response = client.evaluate(
            "tiny", WHY_SLOWER, widths=(0, 2), repetitions=2,
            techniques=("perfxplain",),
        )
        assert isinstance(response, EvaluateResponse)
        assert "PerfXplain" in response.results


class TestIntrospectionEndpoints:
    def test_health(self, client):
        payload = client.health()
        assert payload["status"] == "ok"
        assert payload["protocol_version"] == 3

    def test_logs_exposes_catalog_and_cache_stats(self, client):
        client.explain("tiny", WHY_SLOWER_LOOSE, width=2)
        payload = client.logs()
        assert payload["executed"] >= 1
        assert payload["logs"]["tiny"]["loaded"] is True
        assert payload["logs"]["tiny"]["cache_stats"]["explanations"]["misses"] >= 1


class TestTransportFailures:
    def test_unreachable_server_raises_service_error(self):
        client = ServiceClient("http://127.0.0.1:1", timeout=0.5)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.query("tiny", WHY_SLOWER_LOOSE)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.health()


class TestServerLifecycle:
    def test_ephemeral_port_resolved(self, server):
        assert server.port > 0
        assert server.url.startswith("http://127.0.0.1:")

    def test_stop_is_idempotent(self, service):
        server = PerfXplainHTTPServer(service, port=0).start()
        server.stop()
        server.stop()

    def test_stop_without_serving_does_not_hang(self, service):
        server = PerfXplainHTTPServer(service, port=0)
        server.stop()  # never served: must not block on shutdown()
