"""Shared fixtures for the service-layer tests."""

from __future__ import annotations

import pytest

from repro.service import LogCatalog, PerfXplainService


@pytest.fixture()
def catalog(tiny_log) -> LogCatalog:
    """A fresh catalog holding the tiny log under the name ``tiny``."""
    catalog = LogCatalog()
    catalog.register("tiny", tiny_log)
    return catalog


@pytest.fixture()
def service(catalog):
    """A fresh service over the ``tiny`` catalog (closed after the test)."""
    with PerfXplainService(catalog, max_workers=4) as service:
        yield service
