"""The diff request through every layer: protocol, service, HTTP, CLI.

The acceptance bar is bit-identity: the same before/after pair must yield
byte-identical report JSON from a direct :class:`DiffEngine` call, from
``PerfXplainService.execute``, over the HTTP endpoint, and from the CLI.
"""

from __future__ import annotations

import json
import random
import threading
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.diff import DiffEngine, DiffReport
from repro.exceptions import ProtocolError
from repro.logs.records import JobRecord, TaskRecord
from repro.logs.store import ExecutionLog
from repro.service import (
    DiffRequest,
    DiffResponse,
    ErrorResponse,
    LogCatalog,
    PerfXplainService,
    ServiceClient,
)
from repro.service.http import PerfXplainHTTPServer
from repro.service.protocol import ErrorCode, parse_request, parse_response


def _make_run(scale: float, seed: int) -> ExecutionLog:
    """Small synthetic run (same shape as tests/diff/conftest.make_run)."""
    rng = random.Random(seed)
    jobs, tasks = [], []
    for index in range(6):
        jobs.append(
            JobRecord(
                job_id=f"j{index}",
                features={
                    "pig_script": "wf.pig",
                    "numinstances": 2,
                    "inputsize": 1e6 * scale * (1.0 + rng.random() * 0.05),
                },
                duration=10.0 * scale * (1.0 + rng.random() * 0.1),
            )
        )
        tasks.append(
            TaskRecord(
                task_id=f"t{index}",
                job_id=f"j{index}",
                features={"pig_script": "wf.pig", "operator": "MAP"},
                duration=3.0 * scale,
            )
        )
    return ExecutionLog(jobs=jobs, tasks=tasks)


@pytest.fixture(scope="module")
def run_pair():
    return _make_run(scale=1.0, seed=0), _make_run(scale=3.0, seed=1)


@pytest.fixture()
def diff_service(run_pair):
    before, after = run_pair
    catalog = LogCatalog()
    catalog.register("baseline", before)
    catalog.register("candidate", after)
    with PerfXplainService(catalog, max_workers=4) as service:
        yield service


class TestDiffProtocol:
    def test_request_round_trips(self):
        request = DiffRequest(before="a", after="b", width=3, technique="perfxplain")
        parsed = parse_request(json.loads(request.to_json()))
        assert parsed == request
        assert DiffRequest.from_json(request.to_json()) == request

    def test_old_protocol_versions_rejected(self):
        payload = DiffRequest(before="a", after="b").to_dict()
        for version in (1, 2):
            payload["protocol_version"] = version
            with pytest.raises(ProtocolError) as excinfo:
                DiffRequest.from_dict(payload)
            assert excinfo.value.code == ErrorCode.UNSUPPORTED_PROTOCOL

    def test_response_round_trips(self, diff_service):
        response = diff_service.diff("baseline", "candidate")
        assert isinstance(response, DiffResponse)
        parsed = parse_response(json.loads(response.to_json()))
        assert parsed == response
        assert parsed.report == response.report

    def test_response_requires_report_object(self):
        payload = {
            "type": "diff_result",
            "protocol_version": 3,
            "before": "a",
            "after": "b",
            "report": None,
        }
        with pytest.raises(ProtocolError):
            DiffResponse.from_dict(payload)


class TestDiffService:
    def test_diff_wrapper_returns_response(self, diff_service):
        response = diff_service.diff("baseline", "candidate")
        assert isinstance(response, DiffResponse)
        assert response.ok
        assert response.before == "baseline"
        assert response.after == "candidate"
        assert response.report.direction == "regression"

    def test_unknown_log_is_a_stable_error(self, diff_service):
        response = diff_service.diff("baseline", "nope")
        assert isinstance(response, ErrorResponse)
        assert response.code == "unknown_log"

    def test_self_diff_is_allowed(self, diff_service):
        response = diff_service.diff("baseline", "baseline")
        assert isinstance(response, DiffResponse)
        assert response.report.direction == "similar"

    def test_diff_latency_recorded(self, diff_service):
        diff_service.diff("baseline", "candidate")
        latency = diff_service.metrics()["latency_ms"]
        assert latency["diff"]["count"] >= 1
        assert latency["diff"]["p50_ms"] is not None

    def test_matches_direct_engine_output(self, diff_service, run_pair):
        before, after = run_pair
        direct = DiffEngine(
            before,
            after,
            config=diff_service.catalog.config,
            seed=diff_service.catalog.seed,
        ).report()
        served = diff_service.diff("baseline", "candidate")
        assert served.report.to_json() == direct.to_json()

    def test_concurrent_diffs_and_appends_do_not_deadlock(self, run_pair):
        before, after = run_pair
        catalog = LogCatalog()
        catalog.register("baseline", before)
        catalog.register(
            "candidate",
            ExecutionLog(jobs=list(after.jobs), tasks=list(after.tasks)),
        )
        errors = []
        with PerfXplainService(catalog, max_workers=4) as service:
            def do_diff():
                for _ in range(3):
                    result = service.diff("baseline", "candidate")
                    if isinstance(result, ErrorResponse):
                        errors.append(result.message)

            def do_append():
                from repro.service import AppendRequest

                for index in range(6):
                    record = JobRecord(
                        job_id=f"appended_{index}",
                        features={
                            "pig_script": "wf.pig",
                            "numinstances": 2,
                            "inputsize": 2e6,
                        },
                        duration=35.0,
                    )
                    request = AppendRequest(log="candidate", jobs=(record,))
                    result = service.execute(request)
                    if isinstance(result, ErrorResponse):
                        errors.append(result.message)

            threads = [threading.Thread(target=do_diff) for _ in range(3)]
            threads.append(threading.Thread(target=do_append))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
                assert not thread.is_alive(), "diff/append deadlocked"
        assert errors == []


class TestDiffOverHTTP:
    def test_client_diff_round_trip(self, diff_service, run_pair):
        before, after = run_pair
        with PerfXplainHTTPServer(diff_service, port=0) as server:
            client = ServiceClient(server.url)
            response = client.diff("baseline", "candidate")
            assert isinstance(response, DiffResponse)
            direct = DiffEngine(
                before,
                after,
                config=diff_service.catalog.config,
                seed=diff_service.catalog.seed,
            ).report()
            assert response.report.to_json() == direct.to_json()

    def test_unknown_log_is_404(self, diff_service):
        with PerfXplainHTTPServer(diff_service, port=0) as server:
            body = DiffRequest(before="baseline", after="nope").to_json()
            request = urllib.request.Request(
                server.url + "/v1/diff",
                data=body.encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=30)
            assert excinfo.value.code == 404

    def test_diff_failed_maps_to_422(self, run_pair):
        before, _ = run_pair
        catalog = LogCatalog()
        catalog.register("baseline", before)
        catalog.register("empty", ExecutionLog())
        with PerfXplainService(catalog, max_workers=2) as service:
            with PerfXplainHTTPServer(service, port=0) as server:
                body = DiffRequest(before="baseline", after="empty").to_json()
                request = urllib.request.Request(
                    server.url + "/v1/diff",
                    data=body.encode("utf-8"),
                    headers={"Content-Type": "application/json"},
                    method="POST",
                )
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(request, timeout=30)
                assert excinfo.value.code == 422
                payload = json.loads(excinfo.value.read().decode("utf-8"))
                assert payload["code"] == "diff_failed"


class TestDiffCLI:
    def test_cli_json_matches_direct_engine(self, run_pair, tmp_path, capsys):
        before, after = run_pair
        before_path = tmp_path / "before.jsonl"
        after_path = tmp_path / "after.jsonl"
        before.save(before_path)
        after.save(after_path)

        argv = ["diff", "--before", str(before_path), "--after", str(after_path)]
        exit_code = main(argv + ["--format", "json"])
        assert exit_code == 0
        out = capsys.readouterr().out

        expected = DiffEngine(before, after).report().to_json(indent=2)
        assert out == expected + "\n"
        # And it parses back to the same report.
        assert DiffReport.from_json(out).to_json(indent=2) == expected

    def test_cli_text_format(self, run_pair, tmp_path, capsys):
        before, after = run_pair
        before_path = tmp_path / "before.jsonl"
        after_path = tmp_path / "after.jsonl"
        before.save(before_path)
        after.save(after_path)

        argv = ["diff", "--before", str(before_path), "--after", str(after_path)]
        exit_code = main(argv)
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "cross-log diff: REGRESSION" in out
        assert "pair of interest: after::" in out

    def test_cli_url_mode_matches_local(
        self, diff_service, run_pair, tmp_path, capsys
    ):
        before, after = run_pair
        before_path = tmp_path / "before.jsonl"
        after_path = tmp_path / "after.jsonl"
        before.save(before_path)
        after.save(after_path)

        argv = ["diff", "--before", str(before_path), "--after", str(after_path)]
        exit_code = main(argv + ["--format", "json"])
        assert exit_code == 0
        local = capsys.readouterr().out

        with PerfXplainHTTPServer(diff_service, port=0) as server:
            argv = ["diff", "--before", "baseline", "--after", "candidate"]
            exit_code = main(argv + ["--url", server.url, "--format", "json"])
            assert exit_code == 0
            served = capsys.readouterr().out
        assert served == local
