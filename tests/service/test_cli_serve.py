"""Tests for the ``serve`` CLI subcommand wiring."""

import pytest

from repro.cli import _parse_log_specs, main
from repro.service import ServiceClient
from repro.service.http import PerfXplainHTTPServer

WHY_SLOWER_LOOSE = """
    FOR JOBS ?, ?
    DESPITE pig_script_isSame = T
    OBSERVED duration_compare = GT
    EXPECTED duration_compare = SIM
"""


@pytest.fixture(scope="module")
def log_path(tmp_path_factory, tiny_log):
    path = tmp_path_factory.mktemp("serve") / "tiny.jsonl.gz"
    tiny_log.save(path)
    return path


class TestLogSpecParsing:
    def test_name_equals_path(self):
        entries = _parse_log_specs(["prod=/data/prod.jsonl.gz"])
        assert entries == [("prod", entries[0][1])]
        assert str(entries[0][1]) == "/data/prod.jsonl.gz"

    def test_bare_path_uses_stem(self):
        entries = _parse_log_specs(["/data/prod.jsonl.gz", "x/staging.json"])
        assert [name for name, _ in entries] == ["prod", "staging"]

    @pytest.mark.parametrize("spec", ["=path.json", "name=", "  =x"])
    def test_malformed_specs_rejected(self, spec):
        from repro.exceptions import ReproError

        with pytest.raises(ReproError):
            _parse_log_specs([spec])


class TestServeCommand:
    def test_serve_answers_queries_over_http(self, log_path, monkeypatch, capsys):
        """End-to-end: `repro serve` wiring answers PXQL over HTTP."""
        probe: dict = {}

        def probing_serve_forever(self: PerfXplainHTTPServer) -> None:
            # Stand-in for the blocking loop: serve on a background thread,
            # issue real HTTP queries against it, then return (as if the
            # operator hit Ctrl-C).
            self.start()
            client = ServiceClient(self.url)
            probe["health"] = client.health()
            probe["entry"] = client.explain("tiny", WHY_SLOWER_LOOSE, width=2)
            probe["logs"] = client.logs()

        monkeypatch.setattr(
            PerfXplainHTTPServer, "serve_forever", probing_serve_forever
        )
        exit_code = main([
            "serve", "--log", f"tiny={log_path}", "--port", "0", "--workers", "2",
        ])
        assert exit_code == 0
        assert probe["health"]["status"] == "ok"
        assert probe["entry"].ok and probe["entry"].technique == "PerfXplain"
        assert probe["logs"]["logs"]["tiny"]["loaded"] is True
        banner = capsys.readouterr().err
        assert "Serving 1 log(s)" in banner
        assert "/v1/query" in banner

    def test_serve_duplicate_names_fail_cleanly(self, log_path, capsys):
        exit_code = main([
            "serve", "--log", f"a={log_path}", "--log", f"a={log_path}",
            "--port", "0",
        ])
        assert exit_code == 1
        assert "already registered" in capsys.readouterr().err

    def test_serve_help_documents_endpoints(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--help"])
        assert excinfo.value.code == 0
        help_text = capsys.readouterr().out
        assert "NAME=PATH" in help_text
        assert "/v1/query" in help_text
