"""Tests for latency recording and the service metrics surface."""

import pytest

from repro.service import (
    AppendRequest,
    BatchRequest,
    PerfXplainHTTPServer,
    QueryRequest,
    ServiceClient,
)
from repro.service.metrics import LatencyRecorder, nearest_rank

WHY_SLOWER_LOOSE = """
    FOR JOBS ?, ?
    DESPITE pig_script_isSame = T
    OBSERVED duration_compare = GT
    EXPECTED duration_compare = SIM
"""


class TestNearestRank:
    def test_known_percentiles(self):
        samples = [float(value) for value in range(1, 101)]  # 1..100
        assert nearest_rank(samples, 50) == 50.0
        assert nearest_rank(samples, 95) == 95.0
        assert nearest_rank(samples, 99) == 99.0

    def test_single_sample_is_every_percentile(self):
        assert nearest_rank([7.0], 50) == 7.0
        assert nearest_rank([7.0], 99) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            nearest_rank([], 50)


class TestLatencyRecorder:
    def test_snapshot_reports_percentiles_per_kind(self):
        recorder = LatencyRecorder()
        for value in range(1, 101):
            recorder.record("query", float(value))
        recorder.record("append", 3.0)
        snapshot = recorder.snapshot()
        assert set(snapshot) == {"append", "query"}
        query = snapshot["query"]
        assert query["count"] == 100
        assert query["window"] == 100
        assert query["p50_ms"] == 50.0
        assert query["p95_ms"] == 95.0
        assert query["p99_ms"] == 99.0
        assert query["max_ms"] == 100.0
        assert snapshot["append"]["p50_ms"] == 3.0

    def test_ring_keeps_only_the_window(self):
        recorder = LatencyRecorder(window=4)
        for value in (100.0, 1.0, 2.0, 3.0, 4.0):
            recorder.record("query", value)
        snapshot = recorder.snapshot()["query"]
        assert snapshot["count"] == 5  # all-time
        assert snapshot["window"] == 4  # the 100.0 fell off the ring
        assert snapshot["max_ms"] == 4.0

    def test_empty_recorder_snapshots_empty(self):
        assert LatencyRecorder().snapshot() == {}

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder(window=0)

    def test_preseeded_kinds_snapshot_with_null_percentiles(self):
        recorder = LatencyRecorder(kinds=("diff", "query"))
        snapshot = recorder.snapshot()
        assert set(snapshot) == {"diff", "query"}
        for entry in snapshot.values():
            assert entry["count"] == 0
            assert entry["window"] == 0
            assert entry["p50_ms"] is None
            assert entry["p95_ms"] is None
            assert entry["p99_ms"] is None
            assert entry["max_ms"] is None
        recorder.record("diff", 12.0)
        diff = recorder.snapshot()["diff"]
        assert diff["count"] == 1
        assert diff["p50_ms"] == 12.0

    def test_unknown_kind_recorded_without_raising(self):
        recorder = LatencyRecorder(kinds=("query",))
        recorder.record("totally-new-request-type", 5.0)
        snapshot = recorder.snapshot()
        assert snapshot["totally-new-request-type"]["count"] == 1
        assert snapshot["totally-new-request-type"]["p99_ms"] == 5.0


class TestServiceMetrics:
    def test_metrics_cover_every_counter_family(self, service):
        query = QueryRequest(log="tiny", query=WHY_SLOWER_LOOSE, width=2)
        service.execute(query)
        service.execute(BatchRequest(requests=(query,)))
        metrics = service.metrics()

        latency = metrics["latency_ms"]
        # Every request kind the service can execute is pre-listed, even
        # before its first sample (diff/evaluate/append here).
        assert set(latency) >= {"append", "batch", "diff", "evaluate", "query"}
        for entry in latency.values():
            if entry["window"] == 0:
                assert entry["count"] == 0
                assert entry["p50_ms"] is None
                continue
            assert entry["p50_ms"] <= entry["p95_ms"] <= entry["p99_ms"]
            assert entry["count"] >= 1
        assert latency["query"]["count"] >= 1

        assert metrics["executed"] >= 1
        assert metrics["deduplicated"] >= 0
        assert metrics["max_workers"] == service.max_workers
        assert metrics["serialize_reads"] is False

        pool = metrics["shard_pool"]
        assert {"forks", "reuses", "max_concurrent_generations"} <= set(pool)

        tiny = metrics["logs"]["tiny"]
        assert tiny["cache_stats"]["explanations"]["misses"] >= 1
        assert "invalidations" in tiny
        assert tiny["concurrency"]["leads"] >= 1
        assert tiny["concurrency"]["in_flight"] == 0

    def test_append_latency_recorded(self):
        from repro.logs.records import JobRecord
        from repro.logs.store import ExecutionLog
        from repro.service import LogCatalog, PerfXplainService

        log = ExecutionLog(
            jobs=[
                JobRecord(
                    job_id=f"seed_{index}",
                    features={"pig_script": "a.pig", "numinstances": 2},
                    duration=10.0 + index,
                )
                for index in range(3)
            ]
        )
        catalog = LogCatalog()
        catalog.register("grow", log)
        with PerfXplainService(catalog, max_workers=2) as service:
            service.execute(
                AppendRequest(
                    log="grow",
                    jobs=(
                        JobRecord(
                            job_id="metrics_appended_0",
                            features={"pig_script": "extra.pig", "numinstances": 2},
                            duration=12.5,
                        ),
                    ),
                )
            )
            assert "append" in service.metrics()["latency_ms"]


class TestMetricsOverHTTP:
    def test_get_v1_metrics_and_health_workers(self, service):
        with PerfXplainHTTPServer(service, port=0) as server:
            client = ServiceClient(server.url)
            client.explain("tiny", WHY_SLOWER_LOOSE, width=2)
            metrics = client.metrics()
            assert "latency_ms" in metrics
            assert "query" in metrics["latency_ms"]
            assert metrics["protocol_version"]
            health = client.health()
            assert health["status"] == "ok"
            assert health["workers"] == service.max_workers
