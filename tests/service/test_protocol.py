"""Tests for the versioned request/response wire protocol."""

import pytest

from repro.core.pxql.ast import Comparison, Operator, Predicate
from repro.core.explanation import Explanation
from repro.core.report import ReportEntry
from repro.exceptions import (
    EvaluationError,
    ExplanationError,
    LogFormatError,
    ProtocolError,
    PXQLSyntaxError,
    ReproError,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    BatchRequest,
    BatchResponse,
    ErrorCode,
    ErrorResponse,
    EvaluateRequest,
    EvaluateResponse,
    QueryRequest,
    QueryResponse,
    check_protocol_version,
    error_code_for,
    parse_request,
    parse_request_json,
    parse_response_json,
)

QUERY = "FOR JOBS ?, ?\nOBSERVED duration_compare = GT\nEXPECTED duration_compare = SIM"


def _entry():
    because = Predicate.of(Comparison("blocksize_compare", Operator.EQ, "GT"))
    explanation = Explanation(because=because, technique="PerfXplain")
    return ReportEntry(
        query=QUERY, first_id="a", second_id="b", explanation=explanation,
        technique="PerfXplain", width=1, elapsed_ms=3.25,
    )


class TestVersionValidation:
    def test_current_version_accepted(self):
        assert check_protocol_version(PROTOCOL_VERSION) == PROTOCOL_VERSION

    @pytest.mark.parametrize("bad", [0, 99, -1, "1", 1.0, True, None])
    def test_bad_versions_rejected(self, bad):
        with pytest.raises(ProtocolError) as excinfo:
            check_protocol_version(bad)
        assert excinfo.value.code == ErrorCode.UNSUPPORTED_PROTOCOL

    def test_missing_version_on_wire_rejected(self):
        with pytest.raises(ProtocolError) as excinfo:
            QueryRequest.from_dict({"type": "query", "log": "l", "query": QUERY})
        assert excinfo.value.code == ErrorCode.UNSUPPORTED_PROTOCOL

    def test_batch_subrequests_inherit_version(self):
        batch = BatchRequest.from_dict({
            "type": "batch",
            "protocol_version": PROTOCOL_VERSION,
            "requests": [{"type": "query", "log": "l", "query": QUERY}],
        })
        assert batch.requests[0].protocol_version == PROTOCOL_VERSION


class TestRequestRoundTrips:
    def test_query_request(self):
        request = QueryRequest(
            log="prod", query=QUERY, width=3, technique="simbutdiff",
            auto_despite=True,
        )
        assert QueryRequest.from_json(request.to_json()) == request
        assert parse_request(request.to_dict()) == request

    def test_batch_request(self):
        batch = BatchRequest(requests=(
            QueryRequest(log="a", query=QUERY),
            QueryRequest(log="b", query=QUERY, width=1),
        ))
        assert BatchRequest.from_json(batch.to_json()) == batch
        assert parse_request_json(batch.to_json()) == batch

    def test_evaluate_request(self):
        request = EvaluateRequest(
            log="prod", query=QUERY, widths=(0, 2), repetitions=5, seed=11,
            techniques=("perfxplain", "ruleofthumb"),
        )
        assert EvaluateRequest.from_json(request.to_json()) == request
        assert parse_request(request.to_dict()) == request

    @pytest.mark.parametrize("mutation, message", [
        ({"log": ""}, "log"),
        ({"log": None}, "log"),
        ({"query": "   "}, "query"),
        ({"width": "three"}, "width"),
        ({"width": True}, "width"),
        ({"technique": ""}, "technique"),
        ({"auto_despite": "yes"}, "auto_despite"),
    ])
    def test_malformed_query_fields_rejected(self, mutation, message):
        data = QueryRequest(log="l", query=QUERY).to_dict()
        data.update(mutation)
        with pytest.raises(ProtocolError, match=message):
            QueryRequest.from_dict(data)

    def test_type_tag_mismatch_rejected(self):
        data = QueryRequest(log="l", query=QUERY).to_dict()
        data["type"] = "batch"
        with pytest.raises(ProtocolError):
            QueryRequest.from_dict(data)

    def test_unknown_request_type_rejected(self):
        with pytest.raises(ProtocolError, match="unknown request type"):
            parse_request({"type": "mystery", "protocol_version": PROTOCOL_VERSION})

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request([1, 2, 3])
        with pytest.raises(ProtocolError):
            parse_request_json("not json at all {")


class TestResponseRoundTrips:
    def test_query_response(self):
        response = QueryResponse(log="prod", entry=_entry())
        rebuilt = parse_response_json(response.to_json())
        assert isinstance(rebuilt, QueryResponse)
        assert rebuilt.to_dict() == response.to_dict()
        assert rebuilt.ok

    def test_error_response(self):
        response = ErrorResponse(code=ErrorCode.UNKNOWN_LOG, message="no such log")
        rebuilt = parse_response_json(response.to_json())
        assert isinstance(rebuilt, ErrorResponse)
        assert rebuilt == response
        assert not rebuilt.ok

    def test_batch_response_mixes_results_and_errors(self):
        batch = BatchResponse(responses=(
            QueryResponse(log="prod", entry=_entry()),
            ErrorResponse(code=ErrorCode.INVALID_QUERY, message="parse error"),
        ))
        rebuilt = parse_response_json(batch.to_json())
        assert isinstance(rebuilt, BatchResponse)
        assert rebuilt.to_dict() == batch.to_dict()
        assert not rebuilt.ok
        assert len(rebuilt.failures) == 1

    def test_evaluate_response(self):
        response = EvaluateResponse(
            log="prod", query=QUERY, first_id="a", second_id="b",
            results={"PerfXplain": {"2": {"precision_mean": 0.9}}},
        )
        rebuilt = parse_response_json(response.to_json())
        assert isinstance(rebuilt, EvaluateResponse)
        assert rebuilt.to_dict() == response.to_dict()


class TestErrorCodes:
    def test_known_codes_are_stable_strings(self):
        assert ErrorCode.UNKNOWN_LOG == "unknown_log"
        assert ErrorCode.UNSUPPORTED_PROTOCOL == "unsupported_protocol"
        assert ErrorCode.KNOWN >= {
            "invalid_request", "invalid_query", "unknown_technique",
            "explanation_failed", "internal_error",
        }

    @pytest.mark.parametrize("error, code", [
        (PXQLSyntaxError("bad"), ErrorCode.INVALID_QUERY),
        (ExplanationError("no related pairs"), ErrorCode.EXPLANATION_FAILED),
        (ExplanationError("unknown technique 'x'"), ErrorCode.UNKNOWN_TECHNIQUE),
        (EvaluationError("bad widths"), ErrorCode.EVALUATION_FAILED),
        (LogFormatError("bad json"), ErrorCode.LOG_LOAD_FAILED),
        (ReproError("generic"), ErrorCode.INVALID_REQUEST),
        (RuntimeError("boom"), ErrorCode.INTERNAL_ERROR),
        (ProtocolError("v", code=ErrorCode.UNSUPPORTED_PROTOCOL),
         ErrorCode.UNSUPPORTED_PROTOCOL),
    ])
    def test_error_code_mapping(self, error, code):
        assert error_code_for(error) == code
        assert code in ErrorCode.KNOWN

    def test_for_error_builds_response(self):
        response = ErrorResponse.for_error(PXQLSyntaxError("expected EXPECTED"))
        assert response.code == ErrorCode.INVALID_QUERY
        assert "EXPECTED" in response.message


class TestDedupKey:
    def test_whitespace_and_case_insensitive(self):
        a = QueryRequest(log="l", query="FOR JOBS ?, ?\n  OBSERVED x = GT",
                         technique="PerfXplain")
        b = QueryRequest(log="l", query="FOR JOBS ?, ?   OBSERVED x = GT",
                         technique="perfxplain")
        assert a.canonical_key() == b.canonical_key()

    def test_width_and_log_distinguish(self):
        base = QueryRequest(log="l", query=QUERY)
        assert base.canonical_key() != QueryRequest(log="l", query=QUERY, width=2).canonical_key()
        assert base.canonical_key() != QueryRequest(log="m", query=QUERY).canonical_key()
