"""Unit tests for the rule-based detectors on hand-built logs."""

from pathlib import Path

import pytest

from repro.core.api import PerfXplain
from repro.core.registry import create_explainer, registered_explainers
from repro.detectors import DETECTOR_TECHNIQUES, merge_passes
from repro.exceptions import ExplanationError
from repro.ingest import ingest_path
from repro.logs.records import JobRecord
from repro.logs.store import ExecutionLog

JHIST_FIXTURE = (
    Path(__file__).resolve().parent.parent / "logs" / "fixtures"
    / "job_201207121733_0001.jhist"
)

TASK_QUERY = """
    FOR TASKS ?, ?
    DESPITE job_id_isSame = T AND task_type_isSame = T
    OBSERVED duration_compare = GT
    EXPECTED duration_compare = SIM
"""

JOB_QUERY = """
    FOR JOBS ?, ?
    DESPITE pig_script_isSame = T
    OBSERVED duration_compare = GT
    EXPECTED duration_compare = SIM
"""


def _job_log(features_by_job: dict[str, tuple[float, dict]]) -> ExecutionLog:
    log = ExecutionLog()
    log.extend(jobs=[
        JobRecord(job_id=job_id, duration=duration,
                  features={"pig_script": "grep.pig", **features})
        for job_id, (duration, features) in features_by_job.items()
    ])
    return log


@pytest.fixture(scope="module")
def real_log() -> ExecutionLog:
    return ingest_path(JHIST_FIXTURE).log


class TestRegistry:
    def test_all_detectors_are_registered_techniques(self):
        names = registered_explainers()
        for name in DETECTOR_TECHNIQUES:
            assert name in names

    def test_explanations_carry_the_detector_name(self, real_log):
        explanation = PerfXplain(real_log, seed=0).explain(
            TASK_QUERY, technique="detect-skew"
        )
        assert explanation.technique == "detect-skew"

    def test_unbound_query_without_pair_raises(self):
        detector = create_explainer("detect-skew")
        log = _job_log({"a": (10.0, {}), "b": (20.0, {})})
        from repro.core.pxql.parser import parse_query

        with pytest.raises(ExplanationError):
            detector.explain(log, parse_query(JOB_QUERY))


class TestDataSkewDetector:
    def test_fires_on_the_skewed_fixture(self, real_log):
        explanation = PerfXplain(real_log, seed=0).explain(
            TASK_QUERY, technique="detect-skew"
        )
        features = [atom.feature for atom in explanation.because.atoms]
        assert "input_records_compare" in features or \
            "inputsize_compare" in features
        evidence = dict(explanation.metrics.evidence)
        assert evidence["skew_threshold"] == 2.0
        assert evidence["skew_ratio"] >= 2.0

    def test_width_caps_the_because_clause(self, real_log):
        explanation = PerfXplain(real_log, seed=0).explain(
            TASK_QUERY, technique="detect-skew", width=1
        )
        assert len(explanation.because.atoms) == 1

    def test_job_entity_queries_do_not_fire(self, real_log):
        with pytest.raises(ExplanationError, match="no rule fired|satisfies"):
            PerfXplain(real_log, seed=0).explain(
                JOB_QUERY, technique="detect-skew"
            )


class TestStragglerDetector:
    def test_cites_placement_for_task_pairs(self, real_log):
        explanation = PerfXplain(real_log, seed=0).explain(
            TASK_QUERY, technique="detect-straggler"
        )
        features = {atom.feature for atom in explanation.because.atoms}
        assert "hostname_isSame" in features
        evidence = dict(explanation.metrics.evidence)
        assert evidence["straggler_threshold"] == 1.5
        assert evidence["pair_ratio"] >= 1.5 or evidence["median_ratio"] >= 1.5

    def test_gate_blocks_non_straggling_pairs(self):
        # 20% slower is a real difference but not a straggler.
        log = _job_log({
            "a": (12.0, {"avg_load_one": 9.0}),
            "b": (10.0, {"avg_load_one": 1.0}),
        })
        with pytest.raises(ExplanationError):
            PerfXplain(log, seed=0).explain(JOB_QUERY, technique="detect-straggler")

    def test_fires_on_contended_jobs(self):
        log = _job_log({
            "a": (30.0, {"avg_load_one": 9.0, "avg_cpu_idle": 5.0}),
            "b": (10.0, {"avg_load_one": 1.0, "avg_cpu_idle": 80.0}),
        })
        explanation = PerfXplain(log, seed=0).explain(
            JOB_QUERY, technique="detect-straggler"
        )
        features = {atom.feature for atom in explanation.because.atoms}
        assert "avg_load_one_compare" in features
        assert "avg_cpu_idle_compare" in features


class TestMisconfigurationDetector:
    def test_merge_passes_model(self):
        assert merge_passes(1, 10) == 0
        assert merge_passes(0, 10) == 0
        assert merge_passes(None, 10) is None
        assert merge_passes(500, None) is None
        assert merge_passes(500, 1) is None  # degenerate sort factor
        assert merge_passes(500, 10) == 3  # ceil(log10 500) = 3
        assert merge_passes(500, 100) == 2
        assert merge_passes(10, 100) == 1  # at least one pass

    def test_fires_on_a_small_sort_factor(self):
        log = _job_log({
            "a": (100.0, {"iosortfactor": 10, "iosortmb": 100,
                          "num_map_tasks": 500, "spilled_records": 9_000_000}),
            "b": (50.0, {"iosortfactor": 100, "iosortmb": 200,
                         "num_map_tasks": 500, "spilled_records": 1_000_000}),
        })
        explanation = PerfXplain(log, seed=0).explain(
            JOB_QUERY, technique="detect-misconfig"
        )
        features = {atom.feature for atom in explanation.because.atoms}
        assert "iosortfactor_compare" in features
        evidence = dict(explanation.metrics.evidence)
        assert evidence["merge_passes_slower"] == 3.0
        assert evidence["merge_passes_faster"] == 2.0

    def test_fires_on_reducer_starvation(self):
        log = _job_log({
            "a": (100.0, {"iosortfactor": 100, "num_map_tasks": 100,
                          "num_reduce_tasks": 4}),
            "b": (50.0, {"iosortfactor": 100, "num_map_tasks": 100,
                         "num_reduce_tasks": 64}),
        })
        explanation = PerfXplain(log, seed=0).explain(
            JOB_QUERY, technique="detect-misconfig"
        )
        features = {atom.feature for atom in explanation.because.atoms}
        assert "num_reduce_tasks_compare" in features
        evidence = dict(explanation.metrics.evidence)
        assert evidence["reduce_tasks_slower"] == 4
        assert evidence["reduce_tasks_faster"] == 64

    def test_aligned_configuration_does_not_fire(self):
        # The slower job has the BIGGER sort factor: not this detector's story.
        log = _job_log({
            "a": (100.0, {"iosortfactor": 100, "num_map_tasks": 500,
                          "num_reduce_tasks": 8}),
            "b": (50.0, {"iosortfactor": 10, "num_map_tasks": 500,
                         "num_reduce_tasks": 8}),
        })
        with pytest.raises(ExplanationError):
            PerfXplain(log, seed=0).explain(JOB_QUERY, technique="detect-misconfig")


class TestClusterUnderuseDetector:
    UNDERUSE_QUERY = """
        FOR JOBS ?, ?
        DESPITE pig_script_isSame = T AND inputsize_isSame = F
        OBSERVED duration_compare = SIM
        EXPECTED duration_compare = GT
    """

    def test_fires_when_both_inputs_fit_one_wave(self):
        log = _job_log({
            "a": (100.0, {"inputsize": 10 << 30, "map_waves": 1,
                          "num_map_tasks": 40, "blocksize": 256,
                          "cluster_map_slots": 100}),
            "b": (102.0, {"inputsize": 1 << 30, "map_waves": 1,
                          "num_map_tasks": 4, "blocksize": 256,
                          "cluster_map_slots": 100}),
        })
        explanation = PerfXplain(log, seed=0).explain(
            self.UNDERUSE_QUERY, technique="detect-underuse"
        )
        features = {atom.feature for atom in explanation.because.atoms}
        assert "map_waves_isSame" in features
        evidence = dict(explanation.metrics.evidence)
        assert evidence["map_waves"] == 1

    def test_fires_when_input_growth_adds_waves(self):
        log = _job_log({
            "a": (300.0, {"inputsize": 10 << 30, "map_waves": 4,
                          "num_map_tasks": 400}),
            "b": (100.0, {"inputsize": 1 << 30, "map_waves": 1,
                          "num_map_tasks": 40}),
        })
        explanation = PerfXplain(log, seed=0).explain(
            JOB_QUERY, technique="detect-underuse"
        )
        features = {atom.feature for atom in explanation.because.atoms}
        assert "inputsize_compare" in features or "map_waves_compare" in features

    def test_multi_wave_similar_jobs_do_not_fire(self):
        log = _job_log({
            "a": (100.0, {"inputsize": 10 << 30, "map_waves": 4,
                          "num_map_tasks": 400}),
            "b": (101.0, {"inputsize": 1 << 30, "map_waves": 4,
                          "num_map_tasks": 40}),
        })
        with pytest.raises(ExplanationError):
            PerfXplain(log, seed=0).explain(
                self.UNDERUSE_QUERY, technique="detect-underuse"
            )


class TestDeterminism:
    @pytest.mark.parametrize("technique", ["detect-skew", "detect-straggler"])
    def test_fresh_sessions_yield_bit_identical_output(self, real_log, technique):
        first = PerfXplain(real_log, seed=0).explain(TASK_QUERY, technique=technique)
        second = PerfXplain(real_log, seed=0).explain(TASK_QUERY, technique=technique)
        assert first.to_json() == second.to_json()

    def test_repeated_calls_on_one_session_are_identical(self, real_log):
        facade = PerfXplain(real_log, seed=0)
        resolved = facade.resolve(TASK_QUERY)
        first = facade.explain(resolved, technique="detect-skew")
        second = facade.explain(resolved, technique="detect-skew")
        assert first.to_json() == second.to_json()
