"""Detector/PerfXplain agreement across the scenario catalog.

Every catalog scenario with a matching detector must (a) make that
detector fire deterministically, (b) yield a detector explanation citing
the scenario's declared ground truth, and (c) produce an agreement report
against the learned explainer through :func:`score_agreement`.
"""

import json

import pytest

from repro.core.api import PerfXplain
from repro.detectors import SCENARIO_DETECTORS, cited_features, score_agreement
from repro.service import LogCatalog, PerfXplainService, QueryRequest, QueryResponse
from repro.workloads.scenarios import build_scenario_log, get_scenario

#: The seed the scenario end-to-end suite standardises on.
SEED = 5

PAIRS = sorted(
    (scenario, detector)
    for scenario, detectors in SCENARIO_DETECTORS.items()
    for detector in detectors
)


@pytest.fixture(scope="module")
def scenario_logs():
    """Each mapped scenario's log, built once for the module."""
    return {
        name: build_scenario_log(get_scenario(name), seed=SEED)
        for name in SCENARIO_DETECTORS
    }


class TestScenarioAgreement:
    @pytest.mark.parametrize("scenario_name, detector", PAIRS)
    def test_detector_cites_ground_truth(self, scenario_logs, scenario_name, detector):
        scenario = get_scenario(scenario_name)
        log = scenario_logs[scenario_name]
        facade = PerfXplain(log, seed=1)
        explanation = facade.explain(scenario.query(), technique=detector)
        assert scenario.is_consistent(explanation), (
            f"{detector} on {scenario_name} cited "
            f"{sorted(cited_features(explanation))}, ground truth is "
            f"{sorted(scenario.consistent_features)}"
        )

    @pytest.mark.parametrize("scenario_name, detector", PAIRS)
    def test_detector_output_is_bit_identical(self, scenario_logs, scenario_name,
                                              detector):
        scenario = get_scenario(scenario_name)
        log = scenario_logs[scenario_name]
        first = PerfXplain(log, seed=1).explain(scenario.query(), technique=detector)
        second = PerfXplain(log, seed=1).explain(scenario.query(), technique=detector)
        assert first.to_json() == second.to_json()

    @pytest.mark.parametrize("scenario_name, detector", PAIRS)
    def test_detector_attaches_threshold_evidence(self, scenario_logs,
                                                  scenario_name, detector):
        scenario = get_scenario(scenario_name)
        log = scenario_logs[scenario_name]
        explanation = PerfXplain(log, seed=1).explain(
            scenario.query(), technique=detector
        )
        assert explanation.metrics is not None
        assert explanation.metrics.evidence, "detectors must show their thresholds"

    @pytest.mark.parametrize("scenario_name, detector", PAIRS)
    def test_agreement_report(self, scenario_logs, scenario_name, detector):
        scenario = get_scenario(scenario_name)
        report = score_agreement(
            scenario_logs[scenario_name], scenario.query(), detector, seed=1
        )
        assert report.detector == detector
        assert report.learned == "perfxplain"
        assert report.detector_features
        assert 0.0 <= report.jaccard <= 1.0
        assert report.shared_features <= report.detector_features
        json.dumps(report.to_dict())  # wire-compatible
        # Both sides answered the SAME resolved pair.
        assert report.query == str(PerfXplain(
            scenario_logs[scenario_name], seed=1
        ).resolve(scenario.query()))


class TestServiceIntegration:
    def test_detectors_answer_valid_protocol_responses(self, scenario_logs):
        log = scenario_logs["data-skew"]
        catalog = LogCatalog(seed=1)
        catalog.register("skew", log)
        with PerfXplainService(catalog) as service:
            scenario = get_scenario("data-skew")
            response = service.execute(QueryRequest(
                log="skew", query=str(scenario.query()), technique="detect-skew",
            ))
        assert isinstance(response, QueryResponse)
        payload = json.loads(json.dumps(response.to_dict()))
        metrics = payload["entry"]["explanation"]["metrics"]
        assert metrics["evidence"]["skew_threshold"] == 2.0
        assert payload["entry"]["explanation"]["technique"] == "detect-skew"
