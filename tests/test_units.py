"""Tests for repro.units."""

import pytest
from hypothesis import given, strategies as st

from repro.units import GB, KB, MB, format_duration, format_size, parse_size


class TestParseSize:
    def test_plain_int(self):
        assert parse_size(1024) == 1024

    def test_plain_float(self):
        assert parse_size(1536.0) == 1536

    def test_digit_string(self):
        assert parse_size("2048") == 2048

    def test_megabytes(self):
        assert parse_size("64 MB") == 64 * MB

    def test_megabytes_no_space(self):
        assert parse_size("128MB") == 128 * MB

    def test_gigabytes_fractional(self):
        assert parse_size("1.3GB") == int(1.3 * GB)

    def test_kilobytes(self):
        assert parse_size("4KB") == 4 * KB

    def test_case_insensitive(self):
        assert parse_size("64 mb") == 64 * MB

    def test_bytes_suffix(self):
        assert parse_size("512B") == 512

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            parse_size("lots of data")


class TestFormatSize:
    def test_bytes(self):
        assert format_size(512) == "512.0 B"

    def test_megabytes(self):
        assert format_size(64 * MB) == "64.0 MB"

    def test_gigabytes(self):
        assert format_size(2 * GB) == "2.0 GB"

    @given(st.integers(min_value=1, max_value=10**15))
    def test_roundtrip_within_rounding(self, num_bytes):
        rendered = format_size(num_bytes)
        parsed = parse_size(rendered)
        # One decimal digit of the displayed unit is the max rounding error.
        assert abs(parsed - num_bytes) <= max(0.06 * num_bytes, 1)


class TestFormatDuration:
    def test_seconds(self):
        assert format_duration(12.34) == "12.3s"

    def test_minutes(self):
        assert format_duration(150) == "2m30s"

    def test_hours(self):
        assert format_duration(3723) == "1h02m03s"
