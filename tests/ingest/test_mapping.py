"""Unit tests for the declarative field-mapping layer."""

import pytest

from repro.ingest import (
    FieldMap,
    canonical_counter_name,
    lookup_path,
    millis_to_seconds,
)
from repro.ingest.mapping import (
    apply_field_maps,
    derive_throughput,
    to_float,
    to_int,
    to_str,
)


class TestLookupPath:
    def test_plain_key(self):
        assert lookup_path({"a": 1}, "a") == 1

    def test_nested_path(self):
        assert lookup_path({"Task Info": {"Host": "exec-a"}}, "Task Info.Host") == "exec-a"

    def test_literal_dotted_key_wins_over_traversal(self):
        # Spark property dictionaries are flat with dotted key names.
        payload = {"spark.executor.instances": "4", "spark": {"executor": {"instances": "9"}}}
        assert lookup_path(payload, "spark.executor.instances") == "4"

    def test_missing_hop_is_none(self):
        assert lookup_path({"a": {"b": 1}}, "a.c") is None
        assert lookup_path({"a": 1}, "a.b") is None
        assert lookup_path({}, "a") is None


class TestConverters:
    def test_millis_to_seconds(self):
        assert millis_to_seconds(1342000000000) == 1342000000.0
        assert millis_to_seconds(1500) == 1.5
        assert millis_to_seconds("1500") is None
        assert millis_to_seconds(True) is None

    def test_to_int_accepts_numeric_strings(self):
        assert to_int("4") == 4
        assert to_int(" 4 ") == 4
        assert to_int(4.9) == 4
        assert to_int("four") is None
        assert to_int(True) is None

    def test_to_float(self):
        assert to_float("1.5") == 1.5
        assert to_float(2) == 2.0
        assert to_float("x") is None
        assert to_float(False) is None

    def test_to_str_rejects_containers(self):
        assert to_str(12) == "12"
        assert to_str({"a": 1}) is None
        assert to_str([1]) is None
        assert to_str(None) is None


class TestFieldMap:
    def test_extract_applies_conversion(self):
        fm = FieldMap("submitTime", "submit_time", millis_to_seconds)
        assert fm.extract({"submitTime": 2000}) == 2.0

    def test_extract_missing_source_is_none(self):
        fm = FieldMap("submitTime", "submit_time", millis_to_seconds)
        assert fm.extract({}) is None

    def test_extract_without_conversion_drops_containers(self):
        fm = FieldMap("counters", "counters")
        assert fm.extract({"counters": {"a": 1}}) is None

    def test_apply_field_maps_never_clobbers_with_none(self):
        maps = (FieldMap("host", "hostname", to_str),)
        into = {"hostname": "host-01"}
        apply_field_maps({}, maps, into)
        assert into == {"hostname": "host-01"}
        apply_field_maps({"host": "host-02"}, maps, into)
        assert into == {"hostname": "host-02"}


class TestCounterNames:
    @pytest.mark.parametrize(
        "group, name, expected",
        [
            ("FileSystemCounter", "FILE_BYTES_READ", "file_bytes_read"),
            ("TaskCounter", "SPILLED_RECORDS", "spilled_records"),
            ("", "Memory Bytes Spilled", "memory_bytes_spilled"),
            ("", "Disk Bytes Spilled", "disk_bytes_spilled"),
            ("x", "a.b-c d", "a_b_c_d"),
        ],
    )
    def test_canonical_counter_name(self, group, name, expected):
        assert canonical_counter_name(group, name) == expected


class TestDerivedThroughput:
    def test_uses_inputsize(self):
        assert derive_throughput({"inputsize": 100}, 4.0) == 25.0

    def test_falls_back_to_hdfs_bytes_read(self):
        assert derive_throughput({"hdfs_bytes_read": 100}, 4.0) == 25.0

    def test_none_without_volume_or_duration(self):
        assert derive_throughput({}, 4.0) is None
        assert derive_throughput({"inputsize": 100}, 0.0) is None
