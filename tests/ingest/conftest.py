"""Shared paths for the ingestion tests."""

from __future__ import annotations

from pathlib import Path

import pytest

FIXTURES = Path(__file__).resolve().parent.parent / "logs" / "fixtures"

JHIST_FIXTURE = FIXTURES / "job_201207121733_0001.jhist"
SPARK_FIXTURE = FIXTURES / "app-20260807101530-0001.eventlog"


@pytest.fixture(scope="session")
def jhist_path() -> Path:
    return JHIST_FIXTURE


@pytest.fixture(scope="session")
def spark_path() -> Path:
    return SPARK_FIXTURE
