"""Golden round-trip and hardening tests for the Spark event-log adapter."""

import json

import pytest

from repro.exceptions import (
    PARSE_EMPTY_LOG,
    PARSE_MALFORMED_LINE,
    PARSE_MISSING_FIELD,
    PARSE_TRUNCATED_FILE,
    PARSE_UNKNOWN_EVENT,
    ParserError,
)
from pathlib import Path

from repro.ingest import parse_spark_eventlog

SPARK_FIXTURE = (
    Path(__file__).resolve().parent.parent / "logs" / "fixtures"
    / "app-20260807101530-0001.eventlog"
)

APP_ID = "app-20260807101530-0001"


def _fixture_lines():
    return SPARK_FIXTURE.read_text(encoding="utf-8").splitlines()


@pytest.fixture(scope="module")
def parsed():
    return parse_spark_eventlog(_fixture_lines())


class TestGoldenRoundTrip:
    def test_stats_are_clean(self, parsed):
        _, _, stats = parsed
        assert stats.clean
        assert stats.to_dict() == {
            "lines": 16, "events": 16, "skipped_lines": 0,
            "unknown_events": 0, "truncated_entities": 0,
            "missing_counters": 0, "jobs": 1, "tasks": 8,
        }

    def test_job_record_is_exactly_canonical(self, parsed):
        jobs, _, _ = parsed
        (job,) = jobs
        assert job.job_id == APP_ID
        assert job.duration == 60.0  # ApplicationStart -> ApplicationEnd
        assert job.features == {
            "pig_script": "wordcount",
            "user_name": "bob",
            "submit_time": 1754550000.0,
            # Spark properties, seen before ApplicationStart.
            "numinstances": 4,
            "executor_cores": 2,
            "num_reduce_tasks": 3,
            # Aggregated from the map-role tasks only.
            "inputsize": 4 * 67108864 + 268435456,
            "input_records": 4 * 600000 + 2400000,
            # Aggregated from every successful task.
            "shuffle_bytes": 2 * 67108864 + 234881024,
            "hdfs_bytes_written": 2 * 33554432 + 134217728,
            "memory_bytes_spilled": 268435456,
            "num_map_tasks": 8,
        }

    def test_map_task_record_is_exactly_canonical(self, parsed):
        _, tasks, _ = parsed
        task = next(t for t in tasks if t.task_id.endswith("000000"))
        assert task.job_id == APP_ID
        assert task.duration == 8.0
        assert task.features == {
            "job_id": APP_ID,
            "task_type": "MAP",  # ShuffleMapTask plays the map role
            "hostname": "exec-a",
            "attempts": 0,
            "start_time": 1754550005.0,
            "taskfinishtime": 1754550013.0,
            "wave": 0,  # Stage ID
            "inputsize": 67108864,
            "input_records": 600000,
            "shuffle_bytes_written": 33554432,
            "shuffle_records_written": 300000,
            "executor_run_time": 7.5,
            "executor_deserialize_time": 0.2,
            "jvm_gc_time": 0.2,
            "throughput": 67108864 / 8.0,
        }

    def test_reduce_task_record_is_exactly_canonical(self, parsed):
        _, tasks, _ = parsed
        task = next(t for t in tasks if t.task_id.endswith("000007"))
        assert task.duration == 22.0
        assert task.features == {
            "job_id": APP_ID,
            "task_type": "REDUCE",  # ResultTask plays the reduce role
            "hostname": "exec-d",
            "attempts": 0,
            "start_time": 1754550030.0,
            "taskfinishtime": 1754550052.0,
            "wave": 1,
            "shuffle_bytes": 201326592 + 33554432,  # remote + local read
            "inputsize": 201326592 + 33554432,  # reduce input = shuffle read
            "output_bytes": 134217728,
            "output_records": 1200000,
            "executor_run_time": 21.5,
            "jvm_gc_time": 3.2,
            "memory_bytes_spilled": 268435456,
            "disk_bytes_spilled": 134217728,
            "result_size": 4096,
            "throughput": (201326592 + 33554432) / 22.0,
        }

    def test_failed_and_killed_tasks_are_excluded(self):
        failed = json.dumps({
            "Event": "SparkListenerTaskEnd", "Stage ID": 0,
            "Task Type": "ShuffleMapTask",
            "Task Info": {"Task ID": 99, "Host": "exec-x", "Failed": True,
                          "Killed": False, "Launch Time": 1, "Finish Time": 2},
        })
        _, tasks, _ = parse_spark_eventlog(_fixture_lines() + [failed])
        assert len(tasks) == 8
        assert not any(t.task_id.endswith("000099") for t in tasks)


class TestMalformedInput:
    def test_bad_json_line_is_counted(self):
        _, _, stats = parse_spark_eventlog(_fixture_lines() + ["{oops"])
        assert stats.skipped_lines == 1
        assert not stats.clean

    def test_bad_json_line_raises_in_strict_mode(self):
        with pytest.raises(ParserError) as error:
            parse_spark_eventlog(_fixture_lines() + ["{oops"], strict=True)
        assert error.value.code == PARSE_MALFORMED_LINE

    def test_unknown_event_is_counted_and_strict_raises(self):
        extra = json.dumps({"Event": "SparkListenerWormhole"})
        _, _, stats = parse_spark_eventlog(_fixture_lines() + [extra])
        assert stats.unknown_events == 1
        with pytest.raises(ParserError) as error:
            parse_spark_eventlog(_fixture_lines() + [extra], strict=True)
        assert error.value.code == PARSE_UNKNOWN_EVENT

    def test_task_end_missing_timing_is_skipped_or_strict_error(self):
        broken = json.dumps({
            "Event": "SparkListenerTaskEnd", "Stage ID": 0,
            "Task Type": "ShuffleMapTask",
            "Task Info": {"Task ID": 50, "Host": "exec-x"},
        })
        _, tasks, stats = parse_spark_eventlog(_fixture_lines() + [broken])
        assert len(tasks) == 8
        assert stats.skipped_lines == 1
        with pytest.raises(ParserError) as error:
            parse_spark_eventlog(_fixture_lines() + [broken], strict=True)
        assert error.value.code == PARSE_MISSING_FIELD

    def test_truncated_log_keeps_tasks_but_drops_the_job(self):
        lines = [line for line in _fixture_lines()
                 if "SparkListenerApplicationEnd" not in line]
        jobs, tasks, stats = parse_spark_eventlog(lines)
        assert jobs == []  # its duration would be a lie
        assert len(tasks) == 8  # the finished tasks are still real
        assert stats.truncated_entities == 1

    def test_truncated_log_raises_in_strict_mode(self):
        lines = [line for line in _fixture_lines()
                 if "SparkListenerApplicationEnd" not in line]
        with pytest.raises(ParserError) as error:
            parse_spark_eventlog(lines, strict=True)
        assert error.value.code == PARSE_TRUNCATED_FILE

    def test_empty_input_is_an_error(self):
        with pytest.raises(ParserError) as error:
            parse_spark_eventlog([])
        assert error.value.code == PARSE_EMPTY_LOG

    def test_task_without_metrics_counts_missing_counters(self):
        lines = _fixture_lines() + [json.dumps({
            "Event": "SparkListenerTaskEnd", "Stage ID": 0,
            "Task Type": "ShuffleMapTask",
            "Task Info": {"Task ID": 60, "Host": "exec-x", "Launch Time": 1754550005000,
                          "Finish Time": 1754550006000},
        })]
        _, tasks, stats = parse_spark_eventlog(lines)
        assert len(tasks) == 9
        assert stats.missing_counters == 1
