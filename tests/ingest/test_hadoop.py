"""Golden round-trip and hardening tests for the Hadoop JobHistory adapter."""

import json

import pytest

from repro.exceptions import (
    PARSE_EMPTY_LOG,
    PARSE_MALFORMED_LINE,
    PARSE_TRUNCATED_FILE,
    PARSE_UNKNOWN_EVENT,
    ParserError,
)
from pathlib import Path

from repro.ingest import parse_hadoop_jhist

JHIST_FIXTURE = (
    Path(__file__).resolve().parent.parent / "logs" / "fixtures"
    / "job_201207121733_0001.jhist"
)

JOB_ID = "job_201207121733_0001"


def _fixture_lines():
    return JHIST_FIXTURE.read_text(encoding="utf-8").splitlines()


@pytest.fixture(scope="module")
def parsed():
    return parse_hadoop_jhist(_fixture_lines())


class TestGoldenRoundTrip:
    def test_stats_are_clean(self, parsed):
        _, _, stats = parsed
        assert stats.clean
        assert stats.to_dict() == {
            "lines": 23, "events": 21, "skipped_lines": 0,
            "unknown_events": 0, "truncated_entities": 0,
            "missing_counters": 0, "jobs": 1, "tasks": 6,
        }

    def test_job_record_is_exactly_canonical(self, parsed):
        jobs, _, _ = parsed
        (job,) = jobs
        assert job.job_id == JOB_ID
        assert job.duration == 50.0  # finishTime - submitTime, ms -> s
        assert job.features == {
            "pig_script": "grep.pig",
            "user_name": "alice",
            "submit_time": 1342000000.0,
            "start_time": 1342000002.0,
            "num_map_tasks": 4,
            "num_reduce_tasks": 2,
            "hdfs_bytes_read": 939524096,
            "hdfs_bytes_written": 167772160,
            "map_input_records": 7000000,
            "shuffle_bytes": 377487360,  # REDUCE_SHUFFLE_BYTES alias
            "spilled_records": 5750000,
            "inputsize": 939524096,  # derived from hdfs_bytes_read
            "input_records": 7000000,  # derived from map_input_records
        }

    def test_every_task_has_id_duration_and_job_link(self, parsed):
        _, tasks, _ = parsed
        by_id = {task.task_id: task for task in tasks}
        assert sorted(by_id) == [
            f"task_201207121733_0001_m_{i:06d}" for i in range(4)
        ] + [f"task_201207121733_0001_r_{i:06d}" for i in range(2)]
        durations = {t.task_id.rsplit("_", 2)[-2:][0] + t.task_id[-1]: t.duration
                     for t in tasks}
        assert durations == {"m0": 10.0, "m1": 11.0, "m2": 12.0, "m3": 30.0,
                             "r0": 12.0, "r1": 30.0}
        assert all(task.job_id == JOB_ID for task in tasks)

    def test_map_task_record_is_exactly_canonical(self, parsed):
        _, tasks, _ = parsed
        task = next(t for t in tasks if t.task_id.endswith("m_000000"))
        assert task.duration == 10.0
        assert task.features == {
            "job_id": JOB_ID,
            "task_type": "MAP",
            "start_time": 1342000003.0,
            "taskfinishtime": 1342000013.0,
            "hostname": "host-01",
            "rack_name": "/rack-1",
            "hdfs_bytes_read": 134217728,
            "map_input_records": 1000000,
            "map_output_bytes": 52428800,
            "map_output_records": 500000,
            "spilled_records": 500000,
            "inputsize": 134217728,
            "input_records": 1000000,
            "output_bytes": 52428800,
            "output_records": 500000,
            "throughput": 134217728 / 10.0,
        }

    def test_reduce_task_uses_shuffle_alias(self, parsed):
        _, tasks, _ = parsed
        task = next(t for t in tasks if t.task_id.endswith("r_000001"))
        assert task.duration == 30.0
        assert task.features == {
            "job_id": JOB_ID,
            "task_type": "REDUCE",
            "start_time": 1342000015.0,
            "taskfinishtime": 1342000045.0,
            "hostname": "host-02",
            "rack_name": "/rack-1",
            "shuffle_bytes": 283115520,  # REDUCE_SHUFFLE_BYTES alias
            "reduce_input_records": 2250000,
            "reduce_output_records": 1200000,
            "hdfs_bytes_written": 125829120,
            "spilled_records": 2250000,
            "inputsize": 283115520,  # reduce input = shuffled bytes
            "input_records": 2250000,
            "output_bytes": 125829120,
            "output_records": 1200000,
            "throughput": 283115520 / 30.0,
        }


class TestMalformedInput:
    def test_bad_json_line_is_counted_not_silently_dropped(self):
        lines = _fixture_lines() + ["{not json"]
        _, _, stats = parse_hadoop_jhist(lines)
        assert stats.skipped_lines == 1
        assert not stats.clean

    def test_bad_json_line_raises_in_strict_mode(self):
        lines = _fixture_lines() + ["{not json"]
        with pytest.raises(ParserError) as error:
            parse_hadoop_jhist(lines, strict=True)
        assert error.value.code == PARSE_MALFORMED_LINE

    def test_non_event_object_is_malformed(self):
        lines = _fixture_lines() + [json.dumps({"no_type": 1})]
        _, _, stats = parse_hadoop_jhist(lines)
        assert stats.skipped_lines == 1
        with pytest.raises(ParserError) as error:
            parse_hadoop_jhist(lines, strict=True)
        assert error.value.code == PARSE_MALFORMED_LINE

    def test_unknown_event_type_is_counted(self):
        lines = _fixture_lines() + [
            json.dumps({"type": "JOB_TELEPORTED", "event": {"x": {"jobid": JOB_ID}}})
        ]
        jobs, tasks, stats = parse_hadoop_jhist(lines)
        assert stats.unknown_events == 1
        assert len(jobs) == 1 and len(tasks) == 6  # parsing continued

    def test_unknown_event_type_raises_in_strict_mode(self):
        lines = _fixture_lines() + [
            json.dumps({"type": "JOB_TELEPORTED", "event": {"x": {"jobid": JOB_ID}}})
        ]
        with pytest.raises(ParserError) as error:
            parse_hadoop_jhist(lines, strict=True)
        assert error.value.code == PARSE_UNKNOWN_EVENT

    def test_truncated_file_drops_job_and_its_tasks(self):
        lines = [line for line in _fixture_lines()
                 if '"type":"JOB_FINISHED"' not in line]
        with pytest.raises(ParserError) as error:
            # Without a finished job, the orphaned tasks are dropped too and
            # nothing survives: that is an empty log, never a silent success.
            parse_hadoop_jhist(lines)
        assert error.value.code == PARSE_EMPTY_LOG

    def test_truncated_file_raises_in_strict_mode(self):
        lines = [line for line in _fixture_lines()
                 if '"type":"JOB_FINISHED"' not in line]
        with pytest.raises(ParserError) as error:
            parse_hadoop_jhist(lines, strict=True)
        assert error.value.code == PARSE_TRUNCATED_FILE

    def test_truncated_task_is_dropped_with_count(self):
        lines = _fixture_lines() + [json.dumps({
            "type": "TASK_STARTED",
            "event": {"w": {"taskid": "task_201207121733_0001_m_000009",
                            "taskType": "MAP", "startTime": 1342000003000}},
        })]
        jobs, tasks, stats = parse_hadoop_jhist(lines)
        assert len(jobs) == 1 and len(tasks) == 6
        assert stats.truncated_entities == 1

    def test_empty_input_is_an_error_not_an_empty_log(self):
        with pytest.raises(ParserError) as error:
            parse_hadoop_jhist(["Avro-Json", ""])
        assert error.value.code == PARSE_EMPTY_LOG

    def test_missing_counters_are_counted(self):
        lines = [
            json.dumps({"type": "JOB_SUBMITTED", "event": {"w": {
                "jobid": JOB_ID, "jobName": "x", "submitTime": 1000}}}),
            json.dumps({"type": "JOB_FINISHED", "event": {"w": {
                "jobid": JOB_ID, "finishTime": 2000}}}),
        ]
        jobs, _, stats = parse_hadoop_jhist(lines)
        assert len(jobs) == 1
        assert stats.missing_counters == 1
        assert "_no_counters" not in jobs[0].features
