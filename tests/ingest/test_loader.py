"""Format sniffing, ingest_path provenance, and end-to-end ingestion tests."""

import json
import urllib.request

import pytest

from repro.cli import main
from repro.core.api import PerfXplain
from repro.exceptions import PARSE_UNKNOWN_FORMAT, ParserError
from repro.ingest import (
    HADOOP_JHIST,
    SPARK_EVENTLOG,
    ingest_path,
    load_execution_log,
    sniff_format,
)
from repro.ingest.loader import NATIVE_JSON, NATIVE_JSONL
from repro.logs.store import ExecutionLog
from repro.service import LogCatalog, PerfXplainHTTPServer, PerfXplainService

TASK_QUERY = """
    FOR TASKS ?, ?
    DESPITE job_id_isSame = T AND task_type_isSame = T
    OBSERVED duration_compare = GT
    EXPECTED duration_compare = SIM
"""


class TestSniffing:
    def test_sniffs_hadoop_jhist(self, jhist_path):
        assert sniff_format(jhist_path) == HADOOP_JHIST

    def test_sniffs_spark_eventlog(self, spark_path):
        assert sniff_format(spark_path) == SPARK_EVENTLOG

    def test_sniffs_native_formats(self, tmp_path, tiny_log):
        jsonl = tmp_path / "log.jsonl"
        tiny_log.save(jsonl)
        assert sniff_format(jsonl) == NATIVE_JSONL
        document = tmp_path / "log.json"
        tiny_log.save(document)
        assert sniff_format(document) == NATIVE_JSON

    def test_sniffs_through_gzip(self, tmp_path, jhist_path):
        import gzip

        packed = tmp_path / "job.jhist.gz"
        packed.write_bytes(gzip.compress(jhist_path.read_bytes()))
        assert sniff_format(packed) == HADOOP_JHIST

    def test_unknown_format_is_a_parser_error(self, tmp_path):
        mystery = tmp_path / "mystery.log"
        mystery.write_text("once upon a time\n", encoding="utf-8")
        with pytest.raises(ParserError) as error:
            sniff_format(mystery)
        assert error.value.code == PARSE_UNKNOWN_FORMAT


class TestIngestPath:
    def test_stamps_provenance_on_every_record(self, jhist_path):
        result = ingest_path(jhist_path)
        assert result.source_format == HADOOP_JHIST
        for record in list(result.log.jobs) + list(result.log.tasks):
            assert record.features["source_format"] == HADOOP_JHIST
            assert record.features["source_path"] == str(jhist_path)

    def test_result_serializes(self, spark_path):
        result = ingest_path(spark_path)
        data = json.loads(json.dumps(result.to_dict()))
        assert data["source_format"] == SPARK_EVENTLOG
        assert data["stats"]["tasks"] == 8

    def test_explicit_format_overrides_sniffing(self, spark_path):
        result = ingest_path(spark_path, format=SPARK_EVENTLOG)
        assert result.stats.jobs == 1

    def test_load_execution_log_keeps_native_logs_unstamped(self, tmp_path, tiny_log):
        path = tmp_path / "log.jsonl"
        tiny_log.save(path)
        log, source_format = load_execution_log(path)
        assert source_format == NATIVE_JSONL
        assert log.num_jobs == tiny_log.num_jobs
        assert "source_format" not in log.jobs[0].features


class TestEndToEndQueries:
    def test_both_fixtures_answer_a_task_query(self, jhist_path, spark_path):
        for path in (jhist_path, spark_path):
            log = ingest_path(path).log
            facade = PerfXplain(log, seed=0)
            explanation = facade.explain(TASK_QUERY)
            assert explanation.because.atoms  # a real, non-empty explanation

    def test_cli_ingest_then_explain(self, tmp_path, jhist_path, capsys):
        native = tmp_path / "ingested.jsonl"
        assert main(["ingest", "--input", str(jhist_path),
                     "--output", str(native)]) == 0
        assert ExecutionLog.load(native).num_tasks == 6
        query = tmp_path / "query.pxql"
        query.write_text(TASK_QUERY, encoding="utf-8")
        assert main(["explain", "--log", str(native),
                     "--query", str(query)]) == 0
        assert "BECAUSE" in capsys.readouterr().out

    def test_cli_explain_reads_real_logs_directly(self, spark_path, tmp_path, capsys):
        query = tmp_path / "query.pxql"
        query.write_text(TASK_QUERY, encoding="utf-8")
        assert main(["explain", "--log", str(spark_path),
                     "--query", str(query)]) == 0
        assert "BECAUSE" in capsys.readouterr().out

    def test_cli_ingest_strict_flag_fails_on_dirty_input(self, tmp_path, jhist_path):
        dirty = tmp_path / "dirty.jhist"
        dirty.write_text(jhist_path.read_text(encoding="utf-8") + "{oops\n",
                         encoding="utf-8")
        assert main(["ingest", "--input", str(dirty),
                     "--output", str(tmp_path / "out.jsonl")]) == 0
        assert main(["ingest", "--input", str(dirty), "--strict",
                     "--output", str(tmp_path / "out2.jsonl")]) == 1


class TestCatalogIntegration:
    def test_register_path_sniffs_and_reports_source_format(self, jhist_path):
        catalog = LogCatalog()
        catalog.register_path("prod", jhist_path)
        assert catalog.describe()["prod"]["source_format"] is None  # not loaded yet
        assert catalog.log("prod").num_tasks == 6
        described = catalog.describe()["prod"]
        assert described["loaded"] is True
        assert described["source_format"] == HADOOP_JHIST

    def test_service_logs_endpoint_reports_source_format(self, spark_path):
        catalog = LogCatalog()
        catalog.register_path("spark", spark_path)
        with PerfXplainService(catalog) as service:
            catalog.log("spark")
            with PerfXplainHTTPServer(service, port=0) as server:
                with urllib.request.urlopen(server.url + "/v1/logs",
                                            timeout=30) as reply:
                    payload = json.loads(reply.read().decode("utf-8"))
        assert payload["logs"]["spark"]["source_format"] == SPARK_EVENTLOG

    def test_detector_technique_through_the_service(self, jhist_path):
        from repro.service import QueryRequest, QueryResponse

        catalog = LogCatalog()
        catalog.register_path("real", jhist_path)
        with PerfXplainService(catalog) as service:
            response = service.execute(QueryRequest(
                log="real", query=TASK_QUERY, technique="detect-skew",
            ))
        assert isinstance(response, QueryResponse)
        explanation = response.entry.explanation
        assert explanation.technique == "detect-skew"
        evidence = dict(explanation.metrics.evidence)
        assert evidence["skew_threshold"] == 2.0
        assert evidence["skew_ratio"] >= 2.0
