"""Provenance stamps must never leak into schemas or explanations.

Ingested records carry ``source_format`` and ``source_path`` so operators
can trace every record to its file — but an explanation citing
``source_format_isSame = F`` would be useless.  These tests build a log
where the provenance stamp correlates *perfectly* with the duration
difference and prove the explainer still cannot cite it.
"""

import random

from repro.core.api import PerfXplain
from repro.core.features import DEFAULT_EXCLUDED_FEATURES, infer_schema
from repro.core.pairs import raw_feature_of
from repro.logs.records import JobRecord
from repro.logs.store import ExecutionLog

PROVENANCE = ("source_format", "source_path")

QUERY = """
    FOR JOBS ?, ?
    DESPITE pig_script_isSame = T
    OBSERVED duration_compare = GT
    EXPECTED duration_compare = SIM
"""


def _adversarial_log() -> ExecutionLog:
    """Slow jobs are all 'hadoop-jhist', fast jobs all 'spark-eventlog'.

    The stamp is a perfect predictor of slowness; only the exclusion
    mechanism keeps it out of the explanation.
    """
    rng = random.Random(3)
    jobs = []
    for index in range(24):
        slow = index % 2 == 0
        jobs.append(JobRecord(
            job_id=f"job_{index:04d}",
            duration=(100.0 if slow else 10.0) + rng.uniform(0.0, 2.0),
            features={
                "pig_script": "grep.pig",
                "numinstances": 10 if slow else 50,
                "inputsize": 1 << 30,
                "source_format": "hadoop-jhist" if slow else "spark-eventlog",
                "source_path": f"/logs/{'slow' if slow else 'fast'}/{index}.log",
            },
        ))
    log = ExecutionLog()
    log.extend(jobs=jobs)
    return log


class TestProvenanceExclusion:
    def test_default_excluded_features_cover_provenance(self):
        assert set(PROVENANCE) <= set(DEFAULT_EXCLUDED_FEATURES)

    def test_inferred_schema_never_contains_provenance(self):
        schema = infer_schema(_adversarial_log().jobs)
        for name in PROVENANCE:
            assert name not in schema

    def test_explanations_can_never_cite_provenance(self):
        facade = PerfXplain(_adversarial_log(), seed=0)
        for technique in ("perfxplain", "ruleofthumb", "simbutdiff"):
            explanation = facade.explain(QUERY, technique=technique)
            cited = {raw_feature_of(atom.feature)
                     for atom in explanation.because.atoms}
            cited |= {raw_feature_of(atom.feature)
                      for atom in explanation.despite.atoms}
            assert not cited & set(PROVENANCE), (
                f"{technique} cited a provenance stamp: {cited}"
            )

    def test_ingested_fixture_explanations_never_cite_provenance(self, jhist_path):
        from repro.ingest import ingest_path

        facade = PerfXplain(ingest_path(jhist_path).log, seed=0)
        explanation = facade.explain(
            "FOR TASKS ?, ?\n"
            "DESPITE job_id_isSame = T\n"
            "OBSERVED duration_compare = GT\n"
            "EXPECTED duration_compare = SIM"
        )
        cited = {raw_feature_of(atom.feature)
                 for atom in explanation.because.atoms}
        assert not cited & set(PROVENANCE)
