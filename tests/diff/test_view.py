"""CrossLogView: namespacing, the colliding-id regression, and provenance."""

from __future__ import annotations

import pytest

from repro.core.features import DEFAULT_EXCLUDED_FEATURES, infer_schema
from repro.diff import (
    AFTER_RUN,
    BEFORE_RUN,
    RUN_FEATURE,
    CrossLogView,
    namespace_id,
    split_id,
)
from repro.logs.records import JobRecord
from repro.logs.store import ExecutionLog


class TestIdNamespacing:
    def test_round_trip(self):
        assert split_id(namespace_id(BEFORE_RUN, "job_7")) == (BEFORE_RUN, "job_7")
        assert split_id("after::t3") == (AFTER_RUN, "t3")

    def test_original_id_containing_separator_round_trips(self):
        namespaced = namespace_id(AFTER_RUN, "weird::id")
        assert split_id(namespaced) == (AFTER_RUN, "weird::id")

    def test_non_namespaced_ids_rejected(self):
        with pytest.raises(ValueError):
            split_id("job_7")
        with pytest.raises(ValueError):
            split_id("production::job_7")  # not a known run label


class TestCollidingIds:
    """The satellite bugfix: identical id sets on both sides must merge
    cleanly — no silent drop (``ExecutionLog.merge`` semantics), no
    spurious DuplicateRecordError, no mispairing."""

    def test_identical_id_sets_merge_without_loss(self, run_factory):
        before = run_factory(scale=1.0, seed=0)
        after = run_factory(scale=3.0, seed=1)
        assert [j.job_id for j in before.jobs] == [j.job_id for j in after.jobs]
        assert [t.task_id for t in before.tasks] == [t.task_id for t in after.tasks]

        view = CrossLogView(before, after)
        assert view.merged.num_jobs == before.num_jobs + after.num_jobs
        assert view.merged.num_tasks == before.num_tasks + after.num_tasks

    def test_colliding_records_never_alias(self, run_factory):
        before = run_factory(scale=1.0, seed=0)
        after = run_factory(scale=3.0, seed=1)
        view = CrossLogView(before, after)
        # The two j0's are distinct records with their own durations.
        b = view.merged.find_job("before::j0")
        a = view.merged.find_job("after::j0")
        assert b is not None and a is not None
        assert b.duration == before.jobs[0].duration
        assert a.duration == after.jobs[0].duration
        assert b.duration != a.duration

    def test_merge_is_deterministic(self, run_factory):
        before = run_factory(scale=1.0, seed=0)
        after = run_factory(scale=3.0, seed=1)
        ids_one = [j.job_id for j in CrossLogView(before, after).merged.jobs]
        ids_two = [j.job_id for j in CrossLogView(before, after).merged.jobs]
        assert ids_one == ids_two
        assert ids_one[: before.num_jobs] == [
            namespace_id(BEFORE_RUN, j.job_id) for j in before.jobs
        ]

    def test_inputs_not_mutated(self, run_factory):
        before = run_factory(scale=1.0, seed=0)
        after = run_factory(scale=3.0, seed=1)
        CrossLogView(before, after)
        assert before.jobs[0].job_id == "j0"
        assert RUN_FEATURE not in before.jobs[0].features
        assert after.tasks[0].task_id == "t0_0"
        assert RUN_FEATURE not in after.tasks[0].features


class TestMergedStructure:
    def test_task_job_edges_rewritten_consistently(self, before_log, after_log):
        view = CrossLogView(before_log, after_log)
        for run, source in ((BEFORE_RUN, before_log), (AFTER_RUN, after_log)):
            tasks = view.merged.tasks_of_job(namespace_id(run, "j0"))
            assert len(tasks) == len(source.tasks_of_job("j0"))
            assert all(t.job_id == namespace_id(run, "j0") for t in tasks)

    def test_boundaries_and_run_of_index(self, before_log, after_log):
        view = CrossLogView(before_log, after_log)
        assert view.boundary("job") == before_log.num_jobs
        assert view.boundary("task") == before_log.num_tasks
        assert view.run_of_index("job", 0) == BEFORE_RUN
        assert view.run_of_index("job", before_log.num_jobs) == AFTER_RUN
        with pytest.raises(ValueError):
            view.boundary("stage")

    def test_original_record_resolves_both_kinds(self, before_log, after_log):
        view = CrossLogView(before_log, after_log)
        job = view.original_record("before::j1")
        assert job is before_log.jobs[1]
        task = view.original_record("after::t0_0")
        assert task is after_log.tasks[0]
        with pytest.raises(KeyError):
            view.original_record("after::nope")


class TestRunProvenance:
    def test_every_merged_record_is_stamped(self, before_log, after_log):
        view = CrossLogView(before_log, after_log)
        for index, job in enumerate(view.merged.jobs):
            assert job.features[RUN_FEATURE] == view.run_of_index("job", index)
        for index, task in enumerate(view.merged.tasks):
            assert task.features[RUN_FEATURE] == view.run_of_index("task", index)

    def test_run_is_excluded_from_schema_inference(self, before_log, after_log):
        assert RUN_FEATURE in DEFAULT_EXCLUDED_FEATURES
        view = CrossLogView(before_log, after_log)
        schema = infer_schema(view.merged.jobs)
        assert RUN_FEATURE not in schema.names()
        schema = infer_schema(view.merged.tasks)
        assert RUN_FEATURE not in schema.names()


class TestEmptySides:
    def test_empty_logs_merge_to_empty(self):
        view = CrossLogView(ExecutionLog(), ExecutionLog())
        assert view.merged.num_jobs == 0
        assert view.merged.num_tasks == 0

    def test_one_sided_merge(self):
        before = ExecutionLog(
            jobs=[
                JobRecord(job_id="j0", features={"pig_script": "a.pig"}, duration=5.0)
            ]
        )
        view = CrossLogView(before, ExecutionLog())
        assert [j.job_id for j in view.merged.jobs] == ["before::j0"]
        assert view.job_boundary == 1
