"""Golden before/after fixtures: the committed report is byte-stable.

``golden_before.jsonl``/``golden_after.jsonl`` are a simulated regression
pair (the ``make_run`` generator at scales 1.0 and 3.0); the committed
``golden_report.json`` is the exact ``to_json(indent=2)`` of the diff
between them.  Any change to the engine's output — ordering, formatting,
a new field — shows up as a diff against the golden file, which is the
point: regenerate it deliberately, never accidentally.

The Spark event-log fixture from the ingestion PR rides along as an
integration regression: the same file on both sides is the harshest
colliding-id input (every id identical), and must diff as ``similar``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.diff import DiffEngine, DiffReport
from repro.ingest import load_execution_log

FIXTURES = Path(__file__).parent / "fixtures"
SPARK_FIXTURE = (
    Path(__file__).parent.parent
    / "logs"
    / "fixtures"
    / "app-20260807101530-0001.eventlog"
)


@pytest.fixture(scope="module")
def golden_pair():
    before, before_format = load_execution_log(FIXTURES / "golden_before.jsonl")
    after, after_format = load_execution_log(FIXTURES / "golden_after.jsonl")
    assert before_format == after_format == "native-jsonl"
    return before, after


class TestGoldenReport:
    def test_report_matches_the_committed_golden_byte_for_byte(self, golden_pair):
        before, after = golden_pair
        report = DiffEngine(before, after).report()
        expected = (FIXTURES / "golden_report.json").read_text()
        assert report.to_json(indent=2) + "\n" == expected

    def test_golden_report_round_trips_exactly(self):
        text = (FIXTURES / "golden_report.json").read_text().rstrip("\n")
        report = DiffReport.from_json(text)
        assert report.to_json(indent=2) == text
        assert report.direction == "regression"
        assert "inputsize" in report.cited_features()

    def test_golden_is_valid_sorted_json(self):
        payload = json.loads((FIXTURES / "golden_report.json").read_text())
        assert payload["type"] == "diff_report"
        assert list(payload) == sorted(payload)


class TestSparkFixtureDiff:
    def test_same_eventlog_on_both_sides_is_similar(self):
        before, _ = load_execution_log(SPARK_FIXTURE, format="spark-eventlog")
        after, _ = load_execution_log(SPARK_FIXTURE, format="spark-eventlog")
        # Every id collides — the namespacing bugfix is what makes this run.
        assert {j.job_id for j in before.jobs} == {j.job_id for j in after.jobs}
        report = DiffEngine(before, after).report()
        assert report.direction == "similar"
        assert report.duration_ratio == pytest.approx(1.0)
        text = report.to_json()
        assert DiffReport.from_json(text).to_json() == text

    def test_ingested_diff_is_deterministic(self):
        log, _ = load_execution_log(SPARK_FIXTURE, format="spark-eventlog")
        one = DiffEngine(log, log).report().to_json()
        two = DiffEngine(log, log).report().to_json()
        assert one == two
