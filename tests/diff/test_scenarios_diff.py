"""Scenario-catalog coverage: the diff blames each pathology's ground truth.

For every job-entity scenario with a baseline variant, a "before" log is
built from the baseline alone and an "after" log from the pathological
variants (same seed) — the cleanest possible regression pair the catalog
can produce.  The DiffReport must classify the direction correctly and
cite at least one of the scenario's ground-truth ``consistent_features``.

Task-entity scenarios (straggler-node, data-skew, last-task-faster) ship
only ``affected`` variants — there is no baseline side to diff against —
so they are excluded by the same predicate the parametrization uses.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.diff import DiffEngine, DiffReport
from repro.workloads.scenarios import (
    Scenario,
    build_scenario_log,
    get_scenario,
    scenario_catalog,
)

SEED = 5


def _applicable(scenario: Scenario) -> bool:
    labels = {variant.label for variant in scenario.variants}
    return scenario.entity == "job" and "baseline" in labels and labels != {"baseline"}


APPLICABLE = [name for name in scenario_catalog() if _applicable(get_scenario(name))]


def _diff_report(name: str) -> tuple[Scenario, DiffReport]:
    scenario = get_scenario(name)
    baseline = tuple(v for v in scenario.variants if v.label == "baseline")
    pathological = tuple(v for v in scenario.variants if v.label != "baseline")
    before = build_scenario_log(
        dataclasses.replace(scenario, variants=baseline), seed=SEED
    )
    after = build_scenario_log(
        dataclasses.replace(scenario, variants=pathological), seed=SEED
    )
    return scenario, DiffEngine(before, after).report()


class TestScenarioCoverage:
    def test_catalog_has_applicable_scenarios(self):
        # The catalog ships 8 diffable job scenarios today; a shrinking set
        # would silently gut this module's coverage.
        assert len(APPLICABLE) >= 8

    @pytest.mark.parametrize("name", APPLICABLE)
    def test_diff_cites_ground_truth_features(self, name):
        scenario, report = _diff_report(name)
        cited = report.cited_features()
        assert cited & scenario.consistent_features, (
            f"{name}: report cites {sorted(cited)} but none of the "
            f"ground-truth features {sorted(scenario.consistent_features)}"
        )

    @pytest.mark.parametrize("name", APPLICABLE)
    def test_direction_matches_the_pathology(self, name):
        scenario, report = _diff_report(name)
        if scenario.observed == "GT":
            # Why-slower scenarios: the pathological side must regress.
            assert report.direction == "regression"
            assert report.duration_ratio > 1.0
        else:
            # cluster-underuse observes SIM — the pathology wastes capacity
            # without slowing jobs, so no regression should be reported.
            assert report.direction != "regression"

    @pytest.mark.parametrize("name", APPLICABLE)
    def test_learned_explanation_exists(self, name):
        _, report = _diff_report(name)
        assert report.explanation is not None
        assert report.explanation_error is None
        assert report.first_id is not None and report.second_id is not None

    @pytest.mark.parametrize("name", APPLICABLE)
    def test_report_round_trips_exactly(self, name):
        _, report = _diff_report(name)
        text = report.to_json()
        assert DiffReport.from_json(text).to_json() == text

    def test_task_only_scenarios_are_excluded_for_missing_baselines(self):
        excluded = set(scenario_catalog()) - set(APPLICABLE)
        for name in excluded:
            scenario = get_scenario(name)
            labels = {variant.label for variant in scenario.variants}
            assert scenario.entity != "job" or "baseline" not in labels or labels == {
                "baseline"
            }
