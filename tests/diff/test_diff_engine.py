"""DiffEngine: direction, cross-run pairing, deltas, and determinism."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.explainer import PerfXplainConfig
from repro.core.pairshard import _fork_context
from repro.detectors import DETECTOR_TECHNIQUES
from repro.diff import AFTER_RUN, BEFORE_RUN, DiffEngine, DiffReport, split_id
from repro.exceptions import DiffError
from repro.logs.store import ExecutionLog


@pytest.fixture(scope="module")
def regression_report(before_log, after_log) -> DiffReport:
    return DiffEngine(before_log, after_log).report()


class TestDirection:
    def test_regression(self, regression_report):
        assert regression_report.direction == "regression"
        assert regression_report.duration_ratio == pytest.approx(3.0, rel=0.15)

    def test_improvement_is_the_mirror(self, before_log, after_log):
        report = DiffEngine(after_log, before_log).report()
        assert report.direction == "improvement"
        assert report.duration_ratio < 1.0

    def test_self_diff_is_similar(self, before_log):
        report = DiffEngine(before_log, before_log).report()
        assert report.direction == "similar"
        assert report.duration_ratio == pytest.approx(1.0)

    def test_summaries_count_each_side(self, regression_report, before_log, after_log):
        assert regression_report.before.run == BEFORE_RUN
        assert regression_report.before.num_jobs == before_log.num_jobs
        assert regression_report.before.num_tasks == before_log.num_tasks
        assert regression_report.after.run == AFTER_RUN
        assert regression_report.after.num_jobs == after_log.num_jobs


class TestCrossPair:
    def test_pair_straddles_the_boundary_slower_side_first(self, regression_report):
        first_run, _ = split_id(regression_report.first_id)
        second_run, _ = split_id(regression_report.second_id)
        assert first_run != second_run
        # The after run regressed, so the slower (first) member is from it.
        assert first_run == AFTER_RUN

    def test_improvement_flips_the_regressed_run(self, before_log, after_log):
        report = DiffEngine(after_log, before_log).report()
        first_run, _ = split_id(report.first_id)
        # Swapped inputs: "before" (the old after_log) is now the slow side.
        assert first_run == BEFORE_RUN

    def test_learned_explanation_cites_the_scaled_feature(self, regression_report):
        assert regression_report.explanation is not None
        assert regression_report.explanation_error is None
        assert "inputsize" in regression_report.cited_features()

    def test_run_feature_is_never_cited(self, regression_report):
        assert "run" not in regression_report.cited_features()
        assert "run_isSame" not in regression_report.query
        assert "run" not in {delta.feature for delta in regression_report.deltas}


class TestQueryGeneration:
    def test_pins_shared_workload_identity(self, before_log, after_log):
        query = DiffEngine(before_log, after_log).comparison_query()
        text = str(query)
        assert "pig_script_isSame = T" in text
        assert "duration_compare = GT" in text
        assert query.name == "CrossLogDiff"

    def test_divergent_nominal_features_are_not_pinned(self, run_factory):
        before = run_factory(scale=1.0, seed=0, pig_script="a.pig")
        after = run_factory(scale=3.0, seed=1, pig_script="b.pig")
        query = DiffEngine(before, after).comparison_query()
        assert "pig_script_isSame" not in str(query)


class TestDeltas:
    def test_scaled_numeric_feature_surfaces(self, regression_report):
        by_name = {delta.feature: delta for delta in regression_report.deltas}
        assert "inputsize" in by_name
        delta = by_name["inputsize"]
        assert delta.kind == "numeric"
        assert delta.relative_change > 0.5  # 1e6 -> 3e6 is a ~+67% move
        assert delta.before < delta.after

    def test_constant_features_do_not_surface(self, regression_report):
        names = {delta.feature: None for delta in regression_report.deltas}
        assert "blocksize" not in names
        assert "numinstances" not in names

    def test_nominal_value_set_change_surfaces(self, run_factory):
        before = run_factory(scale=1.0, seed=0, pig_script="a.pig")
        after = run_factory(scale=1.0, seed=0, pig_script="b.pig")
        report = DiffEngine(before, after).report()
        by_name = {delta.feature: delta for delta in report.deltas}
        assert by_name["pig_script"].kind == "nominal"
        assert by_name["pig_script"].before == ["a.pig"]
        assert by_name["pig_script"].after == ["b.pig"]

    def test_deltas_sorted_by_magnitude(self, regression_report):
        changes = [abs(delta.relative_change) for delta in regression_report.deltas]
        assert changes == sorted(changes, reverse=True)


class TestDetectors:
    def test_every_detector_runs_on_each_side_in_order(self, regression_report):
        seen = [
            (outcome.run, outcome.technique) for outcome in regression_report.detectors
        ]
        expected = [
            (run, name)
            for run in (BEFORE_RUN, AFTER_RUN)
            for name in DETECTOR_TECHNIQUES
        ]
        assert seen == expected

    def test_non_firing_outcomes_carry_reason_and_code(self, regression_report):
        for outcome in regression_report.detectors:
            if outcome.fired:
                assert outcome.explanation is not None
                assert outcome.reason is None
            else:
                assert outcome.explanation is None
                assert outcome.reason
                assert outcome.code


class TestEmptySides:
    def test_empty_before_rejected(self, after_log):
        with pytest.raises(DiffError, match="before log has none"):
            DiffEngine(ExecutionLog(), after_log).report()

    def test_empty_after_rejected(self, before_log):
        with pytest.raises(DiffError, match="after log has none"):
            DiffEngine(before_log, ExecutionLog()).report()


class TestDeterminism:
    def test_repeated_runs_are_bit_identical(self, before_log, after_log):
        one = DiffEngine(before_log, after_log).report().to_json()
        two = DiffEngine(before_log, after_log).report().to_json()
        assert one == two

    @pytest.mark.skipif(_fork_context() is None, reason="fork start method unavailable")
    def test_worker_count_does_not_change_the_report(self, before_log, after_log):
        serial = DiffEngine(
            before_log, after_log, config=PerfXplainConfig(pair_workers=1)
        ).report()
        sharded = DiffEngine(
            before_log, after_log, config=PerfXplainConfig(pair_workers=2)
        ).report()
        assert serial.to_json() == sharded.to_json()

    def test_exact_json_round_trip(self, regression_report):
        text = regression_report.to_json()
        restored = DiffReport.from_json(text)
        assert restored == regression_report
        assert restored.to_json() == text

    def test_report_equality_is_structural(self, regression_report):
        clone = dataclasses.replace(regression_report)
        assert clone == regression_report
