"""Shared fixtures for the cross-log diff tests: small synthetic run pairs."""

from __future__ import annotations

import random

import pytest

from repro.logs.records import JobRecord, TaskRecord
from repro.logs.store import ExecutionLog


def make_run(
    scale: float,
    seed: int,
    num_jobs: int = 8,
    tasks_per_job: int = 3,
    pig_script: str = "wf.pig",
) -> ExecutionLog:
    """One synthetic run: ``num_jobs`` jobs whose duration and input size
    scale with ``scale`` — two runs with different scales form a clean
    regression pair.  Record ids are ``j0..`` / ``t0..`` on EVERY run, so
    any before/after pair built here collides id-for-id by construction.
    """
    rng = random.Random(seed)
    jobs = []
    tasks = []
    for index in range(num_jobs):
        jobs.append(
            JobRecord(
                job_id=f"j{index}",
                features={
                    "pig_script": pig_script,
                    "numinstances": 2,
                    "blocksize": 64.0,
                    "inputsize": 1e6 * scale * (1.0 + rng.random() * 0.05),
                },
                duration=10.0 * scale * (1.0 + rng.random() * 0.1),
            )
        )
        for slot in range(tasks_per_job):
            tasks.append(
                TaskRecord(
                    task_id=f"t{index}_{slot}",
                    job_id=f"j{index}",
                    features={
                        "pig_script": pig_script,
                        "operator": "MAP",
                        "hostname": f"host-{slot}",
                        "inputsize": 3e5 * scale,
                    },
                    duration=3.0 * scale * (1.0 + rng.random() * 0.1),
                )
            )
    return ExecutionLog(jobs=jobs, tasks=tasks)


@pytest.fixture(scope="session")
def run_factory():
    """The :func:`make_run` generator, as a fixture (tests/ is not a
    package, so test modules cannot import from this conftest directly)."""
    return make_run


@pytest.fixture(scope="module")
def before_log() -> ExecutionLog:
    return make_run(scale=1.0, seed=0)


@pytest.fixture(scope="module")
def after_log() -> ExecutionLog:
    return make_run(scale=3.0, seed=1)
