"""Tests for the Ganglia-like monitoring substrate."""

import random

import pytest

from repro.cluster.cluster import ClusterSpec
from repro.cluster.trace import UtilizationInterval, UtilizationTrace
from repro.exceptions import ConfigurationError, SimulationError
from repro.monitoring.aggregate import (
    average_metrics_over_window,
    job_metric_averages,
    task_metric_averages,
)
from repro.monitoring.metrics import GANGLIA_METRICS, METRIC_NAMES
from repro.monitoring.sampler import GangliaSampler
from repro.monitoring.timeseries import TimeSeries


def make_interval(start, end, maps=1, reduces=0, cpu=1.5, background=0.25):
    return UtilizationInterval(
        start=start, end=end, running_maps=maps, running_reduces=reduces,
        cpu_demand=cpu, cpu_utilization=min(1.0, cpu / 2), disk_read_mbps=10.0,
        disk_write_mbps=5.0, net_in_mbps=0.0, net_out_mbps=0.0,
        memory_used_mb=1000.0, background_load=background, background_extra_procs=0,
    )


class TestMetricCatalogue:
    def test_paper_metrics_present(self):
        # The explanations in the paper mention these Ganglia metrics.
        for name in ("cpu_user", "load_one", "load_five", "proc_total",
                     "bytes_in", "pkts_in", "boottime"):
            assert name in GANGLIA_METRICS

    def test_names_match_specs(self):
        assert all(GANGLIA_METRICS[name].name == name for name in METRIC_NAMES)


class TestTimeSeries:
    def test_append_and_len(self):
        series = TimeSeries()
        series.append(0.0, 1.0)
        series.append(5.0, 2.0)
        assert len(series) == 2

    def test_out_of_order_append_rejected(self):
        series = TimeSeries()
        series.append(5.0, 1.0)
        with pytest.raises(SimulationError):
            series.append(1.0, 2.0)

    def test_window(self):
        series = TimeSeries()
        for t in range(5):
            series.append(float(t), float(t * 10))
        assert series.window(1.0, 3.0) == [10.0, 20.0, 30.0]

    def test_mean_over_window(self):
        series = TimeSeries()
        for t in range(4):
            series.append(float(t), float(t))
        assert series.mean(1.0, 2.0) == pytest.approx(1.5)

    def test_mean_empty_window_is_none(self):
        series = TimeSeries()
        series.append(0.0, 1.0)
        assert series.mean(5.0, 6.0) is None

    def test_latest_at(self):
        series = TimeSeries()
        series.append(0.0, 1.0)
        series.append(10.0, 2.0)
        assert series.latest_at(5.0) == 1.0
        assert series.latest_at(-1.0) is None


class TestUtilizationTrace:
    def test_lookup_inside_interval(self):
        trace = UtilizationTrace()
        trace.add(0, make_interval(0.0, 10.0))
        trace.add(0, make_interval(10.0, 20.0, maps=2))
        assert trace.at(0, 5.0).running_maps == 1
        assert trace.at(0, 15.0).running_maps == 2

    def test_lookup_outside_returns_none(self):
        trace = UtilizationTrace()
        trace.add(0, make_interval(0.0, 10.0))
        assert trace.at(0, 25.0) is None
        assert trace.at(1, 5.0) is None

    def test_end_time(self):
        trace = UtilizationTrace()
        trace.add(0, make_interval(0.0, 10.0))
        trace.add(1, make_interval(0.0, 17.0))
        assert trace.end_time() == 17.0


class TestGangliaSampler:
    def _cluster(self, n=1):
        return ClusterSpec(num_instances=n, background_model=None).provision(random.Random(0))

    def _trace(self):
        trace = UtilizationTrace()
        trace.add(0, make_interval(0.0, 30.0, maps=2, cpu=2.25))
        trace.add(0, make_interval(30.0, 60.0, maps=1, cpu=1.25))
        return trace

    def test_invalid_period_rejected(self):
        with pytest.raises(ConfigurationError):
            GangliaSampler(period=0.0)

    def test_sampling_produces_all_metrics(self):
        samples = GangliaSampler(noise=0.0).sample(self._trace(), self._cluster(), 0.0, 60.0)
        for name in METRIC_NAMES:
            assert len(samples[0].metric(name)) > 0

    def test_sample_count_matches_period(self):
        samples = GangliaSampler(period=5.0, noise=0.0).sample(
            self._trace(), self._cluster(), 0.0, 60.0
        )
        assert len(samples[0].metric("cpu_user")) == 13  # 0, 5, ..., 60

    def test_cpu_user_tracks_utilization(self):
        samples = GangliaSampler(noise=0.0).sample(self._trace(), self._cluster(), 0.0, 60.0)
        cpu = samples[0].metric("cpu_user")
        busy = cpu.mean(0.0, 25.0)
        quiet = cpu.mean(35.0, 55.0)
        assert busy > quiet

    def test_cpu_percentages_bounded(self):
        samples = GangliaSampler(noise=0.0).sample(self._trace(), self._cluster(), 0.0, 60.0)
        for name in ("cpu_user", "cpu_system", "cpu_idle", "cpu_wio"):
            values = samples[0].metric(name).values
            assert all(0.0 <= value <= 100.0 for value in values)

    def test_proc_total_includes_running_tasks(self):
        samples = GangliaSampler(noise=0.0).sample(self._trace(), self._cluster(), 0.0, 60.0)
        proc = samples[0].metric("proc_total")
        assert proc.mean(0.0, 25.0) > proc.mean(35.0, 55.0)

    def test_short_job_still_sampled(self):
        trace = UtilizationTrace()
        trace.add(0, make_interval(0.0, 2.0))
        samples = GangliaSampler(period=5.0, noise=0.0).sample(trace, self._cluster(), 0.0, 2.0)
        assert len(samples[0].metric("cpu_user")) >= 2


class TestAggregation:
    def _samples(self):
        cluster = ClusterSpec(num_instances=1, background_model=None).provision(random.Random(0))
        trace = UtilizationTrace()
        trace.add(0, make_interval(0.0, 50.0, maps=2, cpu=2.25))
        trace.add(0, make_interval(50.0, 100.0, maps=1, cpu=1.25))
        return GangliaSampler(noise=0.0).sample(trace, cluster, 0.0, 100.0)

    def test_window_average_has_avg_prefix_free_names(self):
        averages = average_metrics_over_window(self._samples()[0], 0.0, 50.0)
        assert set(averages) == set(METRIC_NAMES)

    def test_task_averages_prefixed(self):
        from repro.cluster.engine import TaskExecution
        from repro.cluster.tasks import TaskType

        task = TaskExecution(
            task_id="t", job_id="j", task_type=TaskType.MAP, instance_index=0,
            hostname="h", tracker_name="tr", start_time=0.0, finish_time=40.0,
            wave=0, slot_order=0, phase_wall_seconds={}, counters={},
        )
        averages = task_metric_averages(task, self._samples())
        assert all(name.startswith("avg_") for name in averages)
        assert averages["avg_cpu_user"] > 0

    def test_job_average_is_mean_of_tasks(self):
        from repro.cluster.engine import TaskExecution
        from repro.cluster.tasks import TaskType

        samples = self._samples()
        early = TaskExecution(
            task_id="a", job_id="j", task_type=TaskType.MAP, instance_index=0,
            hostname="h", tracker_name="tr", start_time=0.0, finish_time=45.0,
            wave=0, slot_order=0, phase_wall_seconds={}, counters={},
        )
        late = TaskExecution(
            task_id="b", job_id="j", task_type=TaskType.MAP, instance_index=0,
            hostname="h", tracker_name="tr", start_time=55.0, finish_time=95.0,
            wave=1, slot_order=1, phase_wall_seconds={}, counters={},
        )
        early_avg = task_metric_averages(early, samples)["avg_cpu_user"]
        late_avg = task_metric_averages(late, samples)["avg_cpu_user"]
        job_avg = job_metric_averages([early, late], samples)["avg_cpu_user"]
        assert job_avg == pytest.approx((early_avg + late_avg) / 2)
        # The task that ran alongside another saw more CPU usage.
        assert early_avg > late_avg

    def test_missing_instance_gives_zero_metrics(self):
        from repro.cluster.engine import TaskExecution
        from repro.cluster.tasks import TaskType

        task = TaskExecution(
            task_id="t", job_id="j", task_type=TaskType.MAP, instance_index=99,
            hostname="h", tracker_name="tr", start_time=0.0, finish_time=10.0,
            wave=0, slot_order=0, phase_wall_seconds={}, counters={},
        )
        averages = task_metric_averages(task, self._samples())
        assert set(averages) == {f"avg_{name}" for name in METRIC_NAMES}
        assert averages["avg_cpu_user"] == 0.0

    def test_empty_job_average(self):
        averages = job_metric_averages([], self._samples())
        assert all(value == 0.0 for value in averages.values())
