"""Tests for the Hadoop-style job-history writer and parser."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import LogFormatError
from repro.logs.parser import parse_job_history, parse_job_history_text
from repro.logs.records import JobRecord, TaskRecord
from repro.logs.writer import job_history_text, write_job_history


def sample_job():
    return JobRecord(
        job_id="job_202606140001_0042",
        features={
            "pig_script": "simple-groupby.pig",
            "numinstances": 8,
            "inputsize": 1395864371,
            "reduce_tasks_factor": 1.5,
            "speculative": False,
            "dataset_name": 'excite "special" \n log',
            "missing_metric": None,
        },
        duration=412.75,
    )


def sample_tasks():
    return [
        TaskRecord(
            task_id="task_202606140001_0042_m_000001",
            job_id="job_202606140001_0042",
            features={"task_type": "MAP", "inputsize": 67108864, "avg_cpu_user": 81.25},
            duration=35.5,
        ),
        TaskRecord(
            task_id="task_202606140001_0042_r_000000",
            job_id="job_202606140001_0042",
            features={"task_type": "REDUCE", "shuffletime": 12.0, "sorttime": None},
            duration=60.0,
        ),
    ]


class TestRoundTrip:
    def test_job_roundtrip(self):
        job, tasks = parse_job_history_text(job_history_text(sample_job(), sample_tasks()))
        assert job == sample_job()
        assert tasks == sample_tasks()

    def test_roundtrip_preserves_types(self):
        job, _ = parse_job_history_text(job_history_text(sample_job()))
        assert isinstance(job.features["numinstances"], int)
        assert isinstance(job.features["reduce_tasks_factor"], float)
        assert isinstance(job.features["pig_script"], str)
        assert job.features["speculative"] is False
        assert job.features["missing_metric"] is None

    def test_roundtrip_with_config_properties(self):
        text = job_history_text(sample_job(), config_properties={"dfs.block.size": "67108864"})
        job, _ = parse_job_history_text(text)
        assert job.job_id == "job_202606140001_0042"

    def test_file_roundtrip(self, tmp_path):
        path = write_job_history(tmp_path / "history" / "job_0042.log",
                                 sample_job(), sample_tasks())
        job, tasks = parse_job_history(path)
        assert job == sample_job()
        assert len(tasks) == 2

    @settings(max_examples=50, deadline=None)
    @given(
        st.dictionaries(
            keys=st.text(alphabet="abcdefgh_", min_size=1, max_size=8),
            values=st.one_of(
                st.integers(min_value=-10**12, max_value=10**12),
                st.floats(allow_nan=False, allow_infinity=False, width=32),
                st.text(alphabet='abc "\\\n\t-', max_size=12),
                st.booleans(),
                st.none(),
            ),
            max_size=6,
        )
    )
    def test_arbitrary_features_roundtrip(self, features):
        job = JobRecord(job_id="job_x", features=features, duration=1.0)
        parsed, _ = parse_job_history_text(job_history_text(job))
        assert parsed.features == features


class TestFormat:
    def test_lines_end_with_dot(self):
        text = job_history_text(sample_job())
        assert all(line.endswith(" .") for line in text.strip().splitlines())

    def test_contains_job_and_feature_lines(self):
        text = job_history_text(sample_job(), sample_tasks())
        assert any(line.startswith("Job ") for line in text.splitlines())
        assert any(line.startswith("Task ") for line in text.splitlines())
        assert any(line.startswith("Feature ") for line in text.splitlines())


class TestParserErrors:
    def test_missing_job_line(self):
        with pytest.raises(LogFormatError):
            parse_job_history_text('Meta VERSION="1" .\n')

    def test_duplicate_job_line(self):
        text = 'Job JOBID="a" DURATION="1.0" .\nJob JOBID="b" DURATION="2.0" .\n'
        with pytest.raises(LogFormatError):
            parse_job_history_text(text)

    def test_job_without_duration(self):
        with pytest.raises(LogFormatError):
            parse_job_history_text('Job JOBID="a" .\n')

    def test_feature_for_unknown_task(self):
        text = (
            'Job JOBID="a" DURATION="1.0" .\n'
            'Feature SCOPE="task" OWNER="task_zzz" NAME="x" TYPE="int" VALUE="1" .\n'
        )
        with pytest.raises(LogFormatError):
            parse_job_history_text(text)

    def test_unknown_record_types_ignored(self):
        text = (
            'Meta VERSION="1" .\n'
            'Job JOBID="a" DURATION="1.0" .\n'
            'MapAttempt TASKID="t" START_TIME="0" .\n'
        )
        job, tasks = parse_job_history_text(text)
        assert job.job_id == "a"
        assert tasks == []

    def test_comments_and_blank_lines_ignored(self):
        text = '# comment\n\nJob JOBID="a" DURATION="3.5" .\n'
        job, _ = parse_job_history_text(text)
        assert job.duration == 3.5

    def test_malformed_line_raises(self):
        with pytest.raises(LogFormatError):
            parse_job_history_text('Job JOBID="a" DURATION="1.0" .\n???!!!\n')
