"""Differential suite for the O(delta) append pipeline.

Every test grows a log incrementally — through the block-level
``extend_from`` path that :meth:`ExecutionLog.record_block` drives — and
pins the incrementally-maintained structures against a fresh build over
the same final record list.  Code *numbering* is the one thing allowed to
differ (kernels only compare codes for equality), so code arrays are
compared after first-occurrence renumbering; everything else — raw
values, masks, float images, blocking groups, ids — must match exactly.
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.features import infer_schema
from repro.core.pairkernel import blocking_group_indices
from repro.logs.records import JobRecord, TaskRecord
from repro.logs.store import BlockColumn, ExecutionLog, RecordBlock
from repro.logs.chunkstore import ChunkedRecordBlock

FEATURES = ("pig_script", "numinstances", "ratio", "flag", "mixed")
BLOCKING = ("pig_script", "numinstances")


def make_job(rng, index):
    """One randomized job over a fixed feature pool.

    Kinds are stable (every feature sees its full value range from any
    reasonably-sized sample) so schemas inferred before and after appends
    agree; values cover missing, NaN, bools and mixed types.
    """
    features = {
        "pig_script": rng.choice(["a.pig", "b.pig", "c.pig", None]),
        "numinstances": rng.choice([1, 2, 4, 8]),
        "ratio": rng.choice([0.25, 0.5, float("nan"), None, 1.0]),
        "flag": rng.choice([True, False, None]),
        "mixed": rng.choice([1, "one", 2.0, None]),
    }
    return JobRecord(
        job_id=f"job_{index}", features=features, duration=float(rng.randint(1, 50))
    )


def normalized(codes):
    """Codes renumbered by first occurrence (the observable content)."""
    mapping = {}
    return [
        -1 if code < 0 else mapping.setdefault(code, len(mapping)) for code in codes
    ]


def column_state(block, name):
    """Every kernel-observable array of one column, via the gather path."""
    rows = range(len(block))
    column = block.column(name)
    state = {
        "raw": column.gather("raw", rows),
        "codes": normalized(column.gather("codes", rows)),
        "selfeq": list(column.gather("selfeq", rows)),
        "all_numeric": column.all_numeric,
    }
    if column.numeric:
        state["floats"] = column.gather("floats", rows)
        state["num_ok"] = list(column.gather("num_ok", rows))
    return state


def assert_blocks_equivalent(grown, fresh):
    assert len(grown) == len(fresh)
    assert grown.ids == fresh.ids
    assert grown.id_bytes == fresh.id_bytes
    for name in FEATURES + ("duration",):
        left = column_state(grown, name)
        right = column_state(fresh, name)
        # NaN != NaN breaks plain equality on raw/floats: compare elementwise.
        for key in left:
            if key in ("raw", "floats"):
                assert len(left[key]) == len(right[key]), name
                for a, b in zip(left[key], right[key]):
                    assert a == b or (
                        isinstance(a, float) and isinstance(b, float)
                        and math.isnan(a) and math.isnan(b)
                    ), name
            else:
                assert left[key] == right[key], (name, key)
    assert blocking_group_indices(grown, BLOCKING) == blocking_group_indices(
        fresh, BLOCKING
    )
    assert blocking_group_indices(grown, ("ratio",)) == blocking_group_indices(
        fresh, ("ratio",)
    )


def build_block(records, schema, chunk_rows):
    if chunk_rows is None:
        return RecordBlock(records, schema)
    return ChunkedRecordBlock(records, schema, chunk_rows=chunk_rows)


class TestDifferentialAppend:
    """Randomized logs x chunk sizes x append batch sizes."""

    @pytest.mark.parametrize("chunk_rows", [None, 4, 7, 16])
    @pytest.mark.parametrize("batch_size", [1, 3, 10])
    def test_extend_matches_fresh_build_at_every_boundary(
        self, chunk_rows, batch_size
    ):
        rng = random.Random(hash((chunk_rows, batch_size)) & 0xFFFF)
        records = [make_job(rng, index) for index in range(60)]
        schema = infer_schema(records)
        grown = build_block(records[:12], schema, chunk_rows)
        # Touch every column and the group caches so appends must
        # maintain them rather than build lazily from scratch.
        for name in FEATURES + ("duration",):
            grown.column(name)
        grown.blocking_groups(BLOCKING)
        grown.blocking_groups(("ratio",))
        position = 12
        while position < len(records):
            batch = records[position : position + batch_size]
            position += len(batch)
            grown.extend_from(batch)
            fresh = build_block(records[:position], schema, chunk_rows)
            assert_blocks_equivalent(grown, fresh)

    def test_chunk_boundary_appends(self):
        """Appends that exactly fill, straddle and open chunks."""
        rng = random.Random(7)
        records = [make_job(rng, index) for index in range(40)]
        schema = infer_schema(records)
        grown = ChunkedRecordBlock(records[:6], schema, chunk_rows=4)
        for name in FEATURES:
            grown.column(name)
        grown.blocking_groups(BLOCKING)
        # 6 rows in 4-row chunks: tail holds 2.  Fill it exactly (+2),
        # then straddle a boundary (+5), then append whole chunks (+8).
        for count in (2, 5, 8, 19):
            start = len(grown)
            grown.extend_from(records[start : start + count])
            fresh = ChunkedRecordBlock(records[: len(grown)], schema, chunk_rows=4)
            assert_blocks_equivalent(grown, fresh)
        assert len(grown) == 40
        assert grown.num_chunks == 10

    def test_nan_code_appends(self):
        """NaN first appears in an append; more NaN follows; None mixes in."""
        values = [1.0, 2.0, None, 2.0]
        batches = [[float("nan")], [3.0, float("nan"), None], [float("nan")]]
        grown = BlockColumn.from_values("ratio", values, numeric=True)
        total = list(values)
        for batch in batches:
            grown.extend_values(batch)
            total.extend(batch)
            fresh = BlockColumn.from_values("ratio", total, numeric=True)
            assert normalized(grown.codes) == normalized(fresh.codes)
            assert grown.selfeq == fresh.selfeq
            assert grown.num_ok == fresh.num_ok
            assert grown.all_numeric == fresh.all_numeric
            # All NaN rows share one canonical code.
            nan_codes = {
                code
                for code, value in zip(grown.codes, grown.raw)
                if isinstance(value, float) and math.isnan(value)
            }
            assert len(nan_codes) == 1

    def test_new_distinct_value_appends(self):
        """Unseen values get fresh codes without renumbering history."""
        grown = BlockColumn.from_values("pig_script", ["a", "b", "a"], numeric=False)
        before = list(grown.codes)
        grown.extend_values(["c", "a", "d", "c"])
        # History is untouched: the first three codes did not move.
        assert grown.codes[:3] == before
        fresh = BlockColumn.from_values(
            "pig_script", ["a", "b", "a", "c", "a", "d", "c"], numeric=False
        )
        assert normalized(grown.codes) == normalized(fresh.codes)
        assert grown.code_of["c"] != grown.code_of["d"]

    @settings(max_examples=60, deadline=None)
    @given(
        initial=st.lists(
            st.one_of(
                st.none(),
                st.integers(min_value=-3, max_value=3),
                st.booleans(),
                st.sampled_from(["x", "y"]),
                st.just(float("nan")),
                st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
            ),
            max_size=12,
        ),
        appended=st.lists(
            st.one_of(
                st.none(),
                st.integers(min_value=-3, max_value=3),
                st.booleans(),
                st.sampled_from(["x", "y"]),
                st.just(float("nan")),
                st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
            ),
            max_size=12,
        ),
        numeric=st.booleans(),
    )
    def test_column_extension_matches_fresh_build(self, initial, appended, numeric):
        grown = BlockColumn.from_values("f", initial, numeric)
        grown.extend_values(appended)
        fresh = BlockColumn.from_values("f", initial + appended, numeric)
        assert normalized(grown.codes) == normalized(fresh.codes)
        assert grown.selfeq == fresh.selfeq
        assert grown.floats == fresh.floats
        assert grown.num_ok == fresh.num_ok
        assert grown.all_numeric == fresh.all_numeric
        assert len(grown.raw) == len(fresh.raw)


class TestLogAppendPath:
    """The ExecutionLog cache machinery driving block extension."""

    def _log(self, count=20, seed=3):
        rng = random.Random(seed)
        log = ExecutionLog()
        for index in range(count):
            log.add_job(make_job(rng, index))
        return log

    def test_record_block_extends_in_place_and_counts(self):
        log = self._log()
        schema = infer_schema(log.jobs)
        block = log.record_block(schema, kind="job")
        block.column("numinstances")
        block.blocking_groups(BLOCKING)
        rng = random.Random(99)
        log.extend(jobs=[make_job(rng, 100 + index) for index in range(5)])
        extended = log.record_block(schema, kind="job")
        assert extended is block
        assert len(extended) == 25
        assert log.append_stats()["block_extends"] == 1
        fresh = RecordBlock(log.jobs, schema)
        assert_blocks_equivalent(extended, fresh)

    def test_replace_forces_rebuild(self):
        log = self._log()
        schema = infer_schema(log.jobs)
        block = log.record_block(schema, kind="job")
        replacement = JobRecord(
            job_id="job_0", features=dict(log.jobs[0].features), duration=999.0
        )
        log.replace_job(replacement)
        rebuilt = log.record_block(schema, kind="job")
        assert rebuilt is not block
        assert rebuilt.column("duration").raw[0] == 999.0
        assert log.append_stats()["block_extends"] == 0

    def test_configure_blocks_flushes_pending_appends(self):
        """Regression: extend-then-configure must not keep a stale tail."""
        log = self._log(count=10)
        log.configure_blocks(chunk_rows=4)
        schema = infer_schema(log.jobs)
        block = log.record_block(schema, kind="job")
        block.column("numinstances")
        assert len(block) == 10
        rng = random.Random(5)
        log.extend(jobs=[make_job(rng, 200 + index) for index in range(7)])
        # Re-applying the same policy keeps the cached block but folds the
        # pending appends in first — the kept block never serves 10 rows.
        log.configure_blocks(chunk_rows=4)
        assert len(block) == 17
        assert log.append_stats()["block_extends"] == 1
        served = log.record_block(schema, kind="job")
        assert served is block
        assert_blocks_equivalent(served, ChunkedRecordBlock(log.jobs, schema, 4))

    def test_configure_blocks_layout_change_drops_blocks(self):
        log = self._log(count=10)
        log.configure_blocks(chunk_rows=4)
        schema = infer_schema(log.jobs)
        block = log.record_block(schema, kind="job")
        log.configure_blocks(chunk_rows=5)
        rebuilt = log.record_block(schema, kind="job")
        assert rebuilt is not block
        assert rebuilt.chunk_rows == 5

    def test_flush_appends_returns_refreshed_count(self):
        log = self._log(count=8)
        schema = infer_schema(log.jobs)
        log.record_block(schema, kind="job")
        assert log.flush_appends() == 0  # nothing pending
        rng = random.Random(11)
        log.extend(jobs=[make_job(rng, 300)])
        assert log.flush_appends() == 1
        assert len(log.record_block(schema, kind="job")) == 9

    def test_crossing_auto_chunk_threshold_rebuilds(self):
        """An append that crosses the chunking threshold changes layout."""
        log = self._log(count=6)
        log.configure_blocks(auto_chunk_threshold=10)
        schema = infer_schema(log.jobs)
        block = log.record_block(schema, kind="job")
        assert isinstance(block, RecordBlock)
        rng = random.Random(13)
        log.extend(jobs=[make_job(rng, 400 + index) for index in range(6)])
        rebuilt = log.record_block(schema, kind="job")
        assert rebuilt is not block
        assert isinstance(rebuilt, ChunkedRecordBlock)
        assert_blocks_equivalent(
            rebuilt, RecordBlock(log.jobs, schema)
        )

    def test_task_append_does_not_touch_job_block(self):
        log = self._log(count=6)
        for index in range(4):
            log.add_task(
                TaskRecord(
                    task_id=f"task_{index}",
                    job_id="job_0",
                    features={"task_type": "MAP"},
                    duration=1.0,
                )
            )
        job_schema = infer_schema(log.jobs)
        task_schema = infer_schema(log.tasks)
        job_block = log.record_block(job_schema, kind="job")
        task_block = log.record_block(task_schema, kind="task")
        log.add_task(
            TaskRecord(
                task_id="task_late",
                job_id="job_1",
                features={"task_type": "REDUCE"},
                duration=2.0,
            )
        )
        assert log.record_block(job_schema, kind="job") is job_block
        assert len(job_block) == 6
        grown_tasks = log.record_block(task_schema, kind="task")
        assert grown_tasks is task_block
        assert len(grown_tasks) == 5

    def test_tasks_of_job_folds_appends_in_place(self):
        log = self._log(count=3)
        for index in range(6):
            log.add_task(
                TaskRecord(
                    task_id=f"task_{index}",
                    job_id=f"job_{index % 3}",
                    features={},
                    duration=1.0,
                )
            )
        assert len(log.tasks_of_job("job_0")) == 2  # builds the index
        log.extend(
            tasks=[
                TaskRecord(task_id="task_x", job_id="job_0", features={}, duration=2.0),
                TaskRecord(task_id="task_y", job_id="job_9", features={}, duration=2.0),
            ]
        )
        assert [task.task_id for task in log.tasks_of_job("job_0")] == [
            "task_0",
            "task_3",
            "task_x",
        ]
        assert [task.task_id for task in log.tasks_of_job("job_9")] == ["task_y"]
        # Epoch-moving mutation rebuilds rather than folds.
        log.replace_task(
            TaskRecord(task_id="task_x", job_id="job_0", features={}, duration=9.0)
        )
        assert log.tasks_of_job("job_0")[-1].duration == 9.0
