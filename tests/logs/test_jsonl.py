"""Round-trip tests for the JSONL (+ gzip) execution-log format."""

import gzip
import json

import pytest

from repro.exceptions import LogFormatError
from repro.logs.parser import read_records_jsonl
from repro.logs.records import JobRecord, TaskRecord
from repro.logs.store import ExecutionLog
from repro.logs.writer import (
    JSONL_FORMAT,
    iter_jsonl_lines,
    open_log_text,
    write_records_jsonl,
)


def sample_records():
    jobs = [
        JobRecord(
            job_id="job_1",
            features={
                "pig_script": "simple-filter.pig",
                "numinstances": 8,
                "reduce_tasks_factor": 1.5,
                "speculative": False,
                "dataset_name": 'excite "quoted" \n name',
                "missing_metric": None,
            },
            duration=412.75,
        ),
        JobRecord(job_id="job_2", features={"numinstances": 2}, duration=7.0),
    ]
    tasks = [
        TaskRecord(
            task_id="task_1_m_0",
            job_id="job_1",
            features={"task_type": "MAP", "avg_cpu_user": 81.25, "sorttime": None},
            duration=35.5,
        ),
    ]
    return jobs, tasks


@pytest.mark.parametrize("suffix", [".jsonl", ".jsonl.gz"])
class TestRecordRoundTrip:
    def test_records_survive_unchanged(self, tmp_path, suffix):
        jobs, tasks = sample_records()
        path = write_records_jsonl(tmp_path / f"log{suffix}", jobs, tasks)
        jobs_back, tasks_back = read_records_jsonl(path)
        assert jobs_back == jobs
        assert tasks_back == tasks

    def test_execution_log_save_load(self, tmp_path, suffix):
        jobs, tasks = sample_records()
        log = ExecutionLog()
        log.extend(jobs=jobs, tasks=tasks)
        path = tmp_path / f"log{suffix}"
        log.save(path)
        back = ExecutionLog.load(path)
        assert back.to_json() == log.to_json()

    def test_header_line_present(self, tmp_path, suffix):
        jobs, tasks = sample_records()
        path = write_records_jsonl(tmp_path / f"log{suffix}", jobs, tasks)
        with open_log_text(path, "r") as handle:
            header = json.loads(handle.readline())
        assert header["kind"] == "meta"
        assert header["format"] == JSONL_FORMAT


class TestGzipTransparency:
    def test_gz_output_is_actually_gzipped(self, tmp_path):
        jobs, tasks = sample_records()
        path = write_records_jsonl(tmp_path / "log.jsonl.gz", jobs, tasks)
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            assert json.loads(handle.readline())["kind"] == "meta"

    def test_gzipped_json_document_round_trips(self, tmp_path):
        jobs, tasks = sample_records()
        log = ExecutionLog()
        log.extend(jobs=jobs, tasks=tasks)
        path = tmp_path / "log.json.gz"
        log.save(path)
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert len(payload["jobs"]) == 2
        assert ExecutionLog.load(path).to_json() == log.to_json()

    def test_gz_is_smaller_than_plain(self, tmp_path):
        log = ExecutionLog()
        jobs, tasks = sample_records()
        log.extend(jobs=jobs * 1, tasks=tasks)
        plain = tmp_path / "log.jsonl"
        packed = tmp_path / "log.jsonl.gz"
        # Repeat the features to give gzip something to chew on.
        big = ExecutionLog()
        big.extend(
            jobs=[
                JobRecord(job_id=f"job_{i}", features={"pig_script": "x.pig" * 10},
                          duration=1.0)
                for i in range(200)
            ]
        )
        big.save(plain)
        big.save(packed)
        assert packed.stat().st_size < plain.stat().st_size

    def test_truncated_gz_reports_format_error(self, tmp_path):
        jobs, tasks = sample_records()
        path = write_records_jsonl(tmp_path / "log.jsonl.gz", jobs, tasks)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(LogFormatError):
            read_records_jsonl(path)

    def test_not_actually_gzip_reports_format_error(self, tmp_path):
        path = tmp_path / "log.jsonl.gz"
        path.write_text("this is not gzip data", encoding="utf-8")
        with pytest.raises(LogFormatError):
            read_records_jsonl(path)


class TestMalformedJsonl:
    def test_invalid_json_line_reports_line_number(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"kind": "meta"}\nnot json\n', encoding="utf-8")
        with pytest.raises(LogFormatError, match="line 2"):
            read_records_jsonl(path)

    def test_unknown_record_kind_rejected(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"kind": "mystery"}\n', encoding="utf-8")
        with pytest.raises(LogFormatError, match="line 1"):
            read_records_jsonl(path)

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text("[1, 2, 3]\n", encoding="utf-8")
        with pytest.raises(LogFormatError, match="JSON object"):
            read_records_jsonl(path)

    def test_unknown_format_tag_rejected(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"kind": "meta", "format": "other-tool"}\n', encoding="utf-8")
        with pytest.raises(LogFormatError, match="other-tool"):
            read_records_jsonl(path)

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"kind": "meta", "version": 99}\n', encoding="utf-8")
        with pytest.raises(LogFormatError, match="99"):
            read_records_jsonl(path)

    def test_missing_header_is_fine(self, tmp_path):
        jobs, tasks = sample_records()
        path = tmp_path / "log.jsonl"
        lines = list(iter_jsonl_lines(jobs, tasks))[1:]  # drop the header
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        jobs_back, tasks_back = read_records_jsonl(path)
        assert jobs_back == jobs and tasks_back == tasks

    def test_blank_lines_skipped(self, tmp_path):
        jobs, tasks = sample_records()
        path = tmp_path / "log.jsonl"
        lines = list(iter_jsonl_lines(jobs, tasks))
        path.write_text("\n\n".join(lines) + "\n", encoding="utf-8")
        jobs_back, _tasks_back = read_records_jsonl(path)
        assert jobs_back == jobs

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_records_jsonl(tmp_path / "absent.jsonl")
        with pytest.raises(FileNotFoundError):
            ExecutionLog.load(tmp_path / "absent.jsonl.gz")
