"""Tests for chunked record blocks and the spill-to-disk chunk store."""

import os

import pytest

from repro.core.features import FeatureKind, FeatureSchema
from repro.logs.chunkstore import ChunkedRecordBlock, ChunkStore
from repro.logs.records import JobRecord
from repro.logs.store import BlockColumn, ExecutionLog, RecordBlock


def make_jobs(values, feature="tag", duration=1.0):
    return [
        JobRecord(
            job_id=f"job_{index}",
            features={feature: value},
            duration=duration + index,
        )
        for index, value in enumerate(values)
    ]


def schema_of(name, kind):
    schema = FeatureSchema()
    schema.add(name, kind)
    return schema


class TestChunkStore:
    def test_unbounded_store_never_touches_disk(self):
        store = ChunkStore(max_resident=None)
        for index in range(10):
            store.put(("c", index), BlockColumn.from_values("c", [index], False))
        assert len(store) == 10
        assert store.stats()["spills"] == 0
        assert store.stats()["evictions"] == 0

    def test_eviction_spills_and_reload_restores(self, tmp_path):
        store = ChunkStore(max_resident=2, directory=tmp_path)
        chunks = {
            index: BlockColumn.from_values("c", [f"v{index}", None], False)
            for index in range(5)
        }
        for index, chunk in chunks.items():
            store.put(("c", index), chunk)
        stats = store.stats()
        assert stats["resident"] == 2
        assert stats["evictions"] == 3
        assert stats["spills"] == 3
        # Reloaded chunks carry the full encoding.
        reloaded = store.get(("c", 0))
        assert reloaded.raw == ["v0", None]
        assert reloaded.codes == chunks[0].codes
        assert bytes(reloaded.selfeq) == bytes(chunks[0].selfeq)
        assert store.stats()["loads"] == 1

    def test_spill_files_live_under_the_given_directory(self, tmp_path):
        store = ChunkStore(max_resident=1, directory=tmp_path)
        store.put(("c", 0), BlockColumn.from_values("c", ["a"], False))
        store.put(("c", 1), BlockColumn.from_values("c", ["b"], False))
        spill_dirs = list(tmp_path.glob("repro-chunks-*"))
        assert len(spill_dirs) == 1
        assert any(spill_dirs[0].iterdir())

    def test_spill_directory_removed_when_store_dropped(self, tmp_path):
        store = ChunkStore(max_resident=1, directory=tmp_path)
        store.put(("c", 0), BlockColumn.from_values("c", ["a"], False))
        store.put(("c", 1), BlockColumn.from_values("c", ["b"], False))
        spill_dir = next(tmp_path.glob("repro-chunks-*"))
        del store
        assert not spill_dir.exists()

    def test_get_unknown_chunk_raises(self):
        with pytest.raises(KeyError):
            ChunkStore().get(("ghost", 0))

    def test_lru_order_keeps_recently_used_chunks(self, tmp_path):
        store = ChunkStore(max_resident=2, directory=tmp_path)
        store.put(("c", 0), BlockColumn.from_values("c", ["a"], False))
        store.put(("c", 1), BlockColumn.from_values("c", ["b"], False))
        store.get(("c", 0))  # refresh: 1 is now the LRU entry
        store.put(("c", 2), BlockColumn.from_values("c", ["c"], False))
        assert store.stats()["evictions"] == 1
        # Chunk 0 is still resident (no disk load needed).
        loads_before = store.stats()["loads"]
        store.get(("c", 0))
        assert store.stats()["loads"] == loads_before


class TestChunkedColumn:
    def _columns(self, values, kind=FeatureKind.NOMINAL, chunk_rows=3,
                 max_resident=None):
        name = "tag"
        records = make_jobs(values, feature=name)
        schema = schema_of(name, kind)
        monolithic = RecordBlock(records, schema).column(name)
        chunked_block = ChunkedRecordBlock(
            records, schema, chunk_rows=chunk_rows,
            max_resident_chunks=max_resident,
        )
        return monolithic, chunked_block.column(name)

    def test_gather_matches_monolithic_for_every_source(self):
        values = ["a", "b", None, "a", "c", "b", None, "a"]
        monolithic, chunked = self._columns(values)
        indices = [7, 0, 3, 3, 5, 1, 6, 2, 4]
        for source in ("raw", "selfeq"):
            assert chunked.gather(source, indices) == monolithic.gather(
                source, indices
            )

    def test_codes_are_globally_consistent_across_chunks(self):
        values = ["a", "b", "c", "a", "c", "b", "a"]  # chunks of 3 split "a"
        monolithic, chunked = self._columns(values, chunk_rows=3)
        mono_codes = monolithic.gather("codes", range(len(values)))
        chunk_codes = chunked.gather("codes", range(len(values)))
        # Numbering is arbitrary; the induced equality partition is not.
        assert [
            [left == right for right in mono_codes] for left in mono_codes
        ] == [[left == right for right in chunk_codes] for left in chunk_codes]
        assert chunked.code_of["a"] == chunk_codes[0] == chunk_codes[3]

    def test_nan_shares_one_canonical_code_across_chunks(self):
        values = [float("nan"), "x", float("nan"), "x", float("nan")]
        _, chunked = self._columns(values, chunk_rows=2)
        codes = chunked.gather("codes", range(len(values)))
        assert codes[0] == codes[2] == codes[4]
        assert codes[0] != codes[1]
        # ... and selfeq still masks NaN rows out of kernel equalities.
        assert chunked.gather("selfeq", range(len(values))) == [0, 1, 0, 1, 0]

    def test_numeric_floats_and_all_numeric_match(self):
        values = [1, 2.5, None, 4, 17.5, -3.0, 0.0]
        monolithic, chunked = self._columns(
            values, kind=FeatureKind.NUMERIC, chunk_rows=2
        )
        indices = list(range(len(values)))
        assert chunked.gather("floats", indices) == monolithic.gather(
            "floats", indices
        )
        assert chunked.gather("num_ok", indices) == monolithic.gather(
            "num_ok", indices
        )
        assert chunked.all_numeric == monolithic.all_numeric is True

    def test_mixed_column_all_numeric_false_like_monolithic(self):
        values = [1, "high", 2.0, True]
        monolithic, chunked = self._columns(
            values, kind=FeatureKind.NUMERIC, chunk_rows=2
        )
        assert chunked.all_numeric == monolithic.all_numeric is False

    def test_spilled_chunks_round_trip_global_codes(self, tmp_path):
        name = "tag"
        values = ["a", "b", "a", "c", "b", "a", "d", "a"]
        records = make_jobs(values, feature=name)
        block = ChunkedRecordBlock(
            records, schema_of(name, FeatureKind.NOMINAL),
            chunk_rows=2, max_resident_chunks=1, spill_directory=tmp_path,
        )
        column = block.column(name)
        assert block.store.stats()["spills"] > 0
        codes = column.gather("codes", range(len(values)))
        for index, value in enumerate(values):
            assert codes[index] == column.code_of[value]


class TestChunkedRecordBlock:
    def test_block_surface_matches_record_block(self):
        records = make_jobs(["a", "b", "c", "a"])
        schema = schema_of("tag", FeatureKind.NOMINAL)
        monolithic = RecordBlock(records, schema)
        chunked = ChunkedRecordBlock(records, schema, chunk_rows=3)
        assert len(chunked) == len(monolithic)
        assert chunked.ids == monolithic.ids
        assert chunked.id_bytes == monolithic.id_bytes
        assert chunked.records == monolithic.records
        assert chunked.num_chunks == 2

    def test_duration_pseudo_feature_reads_the_metric(self):
        records = make_jobs(["a", "b", "c"])
        schema = FeatureSchema()
        schema.add("tag", FeatureKind.NOMINAL)
        schema.add("duration", FeatureKind.NUMERIC)
        chunked = ChunkedRecordBlock(records, schema, chunk_rows=2)
        assert chunked.column("duration").gather("floats", [0, 1, 2]) == [
            record.duration for record in records
        ]

    def test_columns_are_cached(self):
        chunked = ChunkedRecordBlock(
            make_jobs(["a", "b"]), schema_of("tag", FeatureKind.NOMINAL),
            chunk_rows=1,
        )
        assert chunked.column("tag") is chunked.column("tag")

    def test_key_chunks_cover_all_rows_in_order(self):
        records = make_jobs(["a", "b", None, "a", "c"])
        schema = schema_of("tag", FeatureKind.NOMINAL)
        chunked = ChunkedRecordBlock(records, schema, chunk_rows=2)
        starts, total = [], 0
        for start, code_slices, selfeq_slices in chunked.key_chunks(["tag"]):
            starts.append(start)
            assert len(code_slices[0]) == len(selfeq_slices[0])
            total += len(code_slices[0])
        assert starts == [0, 2, 4]
        assert total == len(records)

    def test_rejects_nonpositive_chunk_rows(self):
        with pytest.raises(ValueError):
            ChunkedRecordBlock(
                [], schema_of("tag", FeatureKind.NOMINAL), chunk_rows=0
            )


class TestRecordBlockDispatch:
    """``ExecutionLog.record_block`` picks the layout transparently."""

    def test_small_logs_stay_monolithic_by_default(self):
        log = ExecutionLog(jobs=make_jobs(["a", "b"]))
        block = log.record_block(schema_of("tag", FeatureKind.NOMINAL))
        assert isinstance(block, RecordBlock)

    def test_configured_log_builds_chunked_blocks(self):
        log = ExecutionLog(jobs=make_jobs(["a", "b", "c"]))
        log.configure_blocks(chunk_rows=2, max_resident_chunks=4)
        block = log.record_block(schema_of("tag", FeatureKind.NOMINAL))
        assert isinstance(block, ChunkedRecordBlock)
        assert block.chunk_rows == 2

    def test_auto_chunk_threshold_triggers_chunking(self):
        log = ExecutionLog(jobs=make_jobs(["a"] * 12))
        log.configure_blocks(auto_chunk_threshold=10)
        block = log.record_block(schema_of("tag", FeatureKind.NOMINAL))
        assert isinstance(block, ChunkedRecordBlock)

    def test_reconfiguring_drops_cached_blocks(self):
        log = ExecutionLog(jobs=make_jobs(["a", "b"]))
        schema = schema_of("tag", FeatureKind.NOMINAL)
        first = log.record_block(schema)
        log.configure_blocks(chunk_rows=1)
        second = log.record_block(schema)
        assert second is not first
        assert isinstance(second, ChunkedRecordBlock)

    def test_configure_blocks_validates_arguments(self):
        log = ExecutionLog()
        with pytest.raises(ValueError):
            log.configure_blocks(chunk_rows=0)
        with pytest.raises(ValueError):
            log.configure_blocks(max_resident_chunks=0)

    def test_worker_pid_tags_keep_spill_names_distinct(self, tmp_path):
        store = ChunkStore(max_resident=1, directory=tmp_path)
        store.put(("c", 0), BlockColumn.from_values("c", ["a"], False))
        store.put(("c", 1), BlockColumn.from_values("c", ["b"], False))
        spill_dir = next(tmp_path.glob("repro-chunks-*"))
        names = [path.name for path in spill_dir.iterdir()]
        assert all(f"-{os.getpid()}-" in name for name in names)
