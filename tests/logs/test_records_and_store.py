"""Tests for execution records and the ExecutionLog store."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import DuplicateRecordError, LogFormatError, UnknownFeatureError
from repro.logs.records import JobRecord, TaskRecord, record_from_dict, record_to_dict
from repro.logs.store import ExecutionLog


def make_job(job_id="job_1", duration=100.0, **features):
    defaults = {"pig_script": "simple-filter.pig", "numinstances": 4, "inputsize": 1000}
    defaults.update(features)
    return JobRecord(job_id=job_id, features=defaults, duration=duration)


def make_task(task_id="task_1", job_id="job_1", duration=10.0, **features):
    defaults = {"task_type": "MAP", "hostname": "host-0"}
    defaults.update(features)
    return TaskRecord(task_id=task_id, job_id=job_id, features=defaults, duration=duration)


class TestRecords:
    def test_get_known_feature(self):
        assert make_job().get("numinstances") == 4

    def test_get_unknown_feature_raises(self):
        with pytest.raises(UnknownFeatureError):
            make_job().get("no_such_feature")

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            make_job(duration=-1.0)

    def test_empty_job_id_rejected(self):
        with pytest.raises(ValueError):
            JobRecord(job_id="", features={}, duration=1.0)

    def test_invalid_feature_value_rejected(self):
        with pytest.raises(ValueError):
            JobRecord(job_id="j", features={"x": object()}, duration=1.0)

    def test_feature_names_sorted(self):
        job = make_job(zeta=1, alpha=2)
        names = job.feature_names()
        assert names == sorted(names)

    def test_roundtrip_dict(self):
        job = make_job()
        assert record_from_dict(record_to_dict(job)) == job
        task = make_task()
        assert record_from_dict(record_to_dict(task)) == task

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            record_from_dict({"kind": "mystery"})

    def test_entity_ids(self):
        assert make_job().entity_id == "job_1"
        assert make_task().entity_id == "task_1"


class TestExecutionLog:
    def _log(self, num_jobs=6, tasks_per_job=2):
        log = ExecutionLog()
        for j in range(num_jobs):
            script = "simple-filter.pig" if j % 2 == 0 else "simple-groupby.pig"
            job = make_job(f"job_{j}", duration=50.0 + j, pig_script=script)
            tasks = [
                make_task(f"task_{j}_{t}", f"job_{j}") for t in range(tasks_per_job)
            ]
            log.add_job(job, tasks)
        return log

    def test_counts(self):
        log = self._log()
        assert log.num_jobs == 6
        assert log.num_tasks == 12

    def test_duplicate_job_rejected(self):
        log = self._log()
        with pytest.raises(DuplicateRecordError) as excinfo:
            log.add_job(make_job("job_0"))
        assert excinfo.value.kind == "job"
        assert excinfo.value.record_id == "job_0"

    def test_duplicate_task_rejected(self):
        log = self._log()
        with pytest.raises(DuplicateRecordError) as excinfo:
            log.add_task(make_task("task_0_0", "job_0"))
        assert excinfo.value.kind == "task"
        assert excinfo.value.record_id == "task_0_0"

    def test_find_job_and_task(self):
        log = self._log()
        assert log.find_job("job_3").job_id == "job_3"
        assert log.find_job("nope") is None
        assert log.find_task("task_2_1").task_id == "task_2_1"
        assert log.find_task("nope") is None

    def test_tasks_of_job(self):
        log = self._log()
        assert {t.task_id for t in log.tasks_of_job("job_1")} == {"task_1_0", "task_1_1"}

    def test_filter_by_feature_keeps_tasks(self):
        log = self._log()
        filtered = log.filter_by_feature("pig_script", "simple-filter.pig")
        assert filtered.num_jobs == 3
        assert filtered.num_tasks == 6

    def test_filter_jobs_without_tasks(self):
        log = self._log()
        filtered = log.filter_jobs(lambda job: True, keep_tasks=False)
        assert filtered.num_jobs == 6
        assert filtered.num_tasks == 0

    def test_merge_deduplicates(self):
        log = self._log()
        merged = log.merge(self._log())
        assert merged.num_jobs == log.num_jobs
        assert merged.num_tasks == log.num_tasks

    def test_split_partitions_jobs(self):
        log = self._log(num_jobs=30)
        train, test = log.split_train_test(0.5, rng=random.Random(0))
        assert train.num_jobs + test.num_jobs == 30
        assert train.num_jobs > 0 and test.num_jobs > 0
        train_ids = {job.job_id for job in train.jobs}
        test_ids = {job.job_id for job in test.jobs}
        assert not train_ids & test_ids

    def test_split_forced_jobs_on_both_sides(self):
        log = self._log(num_jobs=10)
        train, test = log.split_train_test(0.5, rng=random.Random(1),
                                           always_include_job_ids=["job_0"])
        assert train.find_job("job_0") is not None
        assert test.find_job("job_0") is not None

    def test_split_carries_tasks_with_jobs(self):
        log = self._log(num_jobs=10)
        train, test = log.split_train_test(0.5, rng=random.Random(2))
        for part in (train, test):
            for job in part.jobs:
                assert len(part.tasks_of_job(job.job_id)) == 2

    def test_split_invalid_fraction(self):
        with pytest.raises(ValueError):
            self._log().split_train_test(1.5)

    def test_sample_jobs_fraction(self):
        log = self._log(num_jobs=40)
        sampled = log.sample_jobs(0.25, rng=random.Random(3))
        assert 0 < sampled.num_jobs < 40

    def test_sample_jobs_forced_included(self):
        log = self._log(num_jobs=40)
        sampled = log.sample_jobs(0.01, rng=random.Random(3),
                                  always_include_job_ids=["job_39"])
        assert sampled.find_job("job_39") is not None

    def test_json_roundtrip(self, tmp_path):
        log = self._log()
        path = tmp_path / "log.json"
        log.save(path)
        loaded = ExecutionLog.load(path)
        assert loaded.num_jobs == log.num_jobs
        assert loaded.num_tasks == log.num_tasks
        assert loaded.find_job("job_0") == log.find_job("job_0")

    def test_invalid_json_raises(self):
        with pytest.raises(LogFormatError):
            ExecutionLog.from_json("{not json")

    def test_job_feature_values(self):
        log = self._log()
        values = log.job_feature_values("pig_script")
        assert len(values) == 6
        assert set(values) == {"simple-filter.pig", "simple-groupby.pig"}

    @given(fraction=st.floats(min_value=0.05, max_value=0.95), seed=st.integers(0, 100))
    def test_split_never_loses_or_duplicates_jobs(self, fraction, seed):
        log = self._log(num_jobs=20)
        train, test = log.split_train_test(fraction, rng=random.Random(seed))
        train_ids = {job.job_id for job in train.jobs}
        test_ids = {job.job_id for job in test.jobs}
        assert train_ids | test_ids == {f"job_{i}" for i in range(20)}
        assert not train_ids & test_ids


class TestIdIndexes:
    """The lazy id indexes behind find_job/find_task/tasks_of_job."""

    def _log(self, n_jobs=20, tasks_per_job=3):
        log = ExecutionLog()
        for j in range(n_jobs):
            job = make_job(job_id=f"job_{j}")
            tasks = [
                make_task(task_id=f"task_{j}_{t}", job_id=f"job_{j}")
                for t in range(tasks_per_job)
            ]
            log.add_job(job, tasks)
        return log

    def test_find_after_direct_list_append(self):
        """Direct list mutation (from_json style) is picked up lazily."""
        log = self._log()
        log.jobs.append(make_job(job_id="job_direct"))
        log.tasks.append(make_task(task_id="task_direct", job_id="job_direct"))
        assert log.find_job("job_direct") is not None
        assert log.find_task("task_direct") is not None
        assert log.find_job("job_0") is not None

    def test_add_after_find_keeps_index_fresh(self):
        log = self._log()
        assert log.find_job("job_5") is not None  # builds the index
        log.add_job(make_job(job_id="job_new"))
        assert log.find_job("job_new") is not None
        with pytest.raises(DuplicateRecordError):
            log.add_job(make_job(job_id="job_new"))

    def test_tasks_of_job_grouping_matches_linear_scan(self):
        log = self._log()
        for job in log.jobs:
            expected = [task for task in log.tasks if task.job_id == job.job_id]
            assert log.tasks_of_job(job.job_id) == expected
        assert log.tasks_of_job("missing") == []

    def test_tasks_of_job_sees_new_tasks(self):
        log = self._log()
        before = log.tasks_of_job("job_0")
        log.add_task(make_task(task_id="task_late", job_id="job_0"))
        assert len(log.tasks_of_job("job_0")) == len(before) + 1

    def test_returned_task_list_is_a_copy(self):
        log = self._log()
        log.tasks_of_job("job_0").append("garbage")
        assert all(isinstance(t, TaskRecord) for t in log.tasks_of_job("job_0"))


class TestRecordBlock:
    def test_block_is_cached_per_schema_and_count(self):
        from repro.core.features import infer_schema

        log = ExecutionLog()
        for j in range(5):
            log.add_job(make_job(job_id=f"job_{j}", inputsize=100 * j))
        schema = infer_schema(log.jobs)
        block = log.record_block(schema, kind="job")
        assert log.record_block(schema, kind="job") is block
        # Same contents, different schema object: still one build.
        assert log.record_block(infer_schema(log.jobs), kind="job") is block
        # Appending a record extends the cached block in place: same
        # object, grown to cover the new row.
        log.add_job(make_job(job_id="job_extra", inputsize=999))
        extended = log.record_block(schema, kind="job")
        assert extended is block
        assert len(extended) == 6
        assert extended.ids[-1] == "job_extra"
        assert extended.column("inputsize").raw[-1] == 999

    def test_block_rejects_unknown_kind(self):
        from repro.core.features import infer_schema

        log = ExecutionLog(jobs=[make_job()])
        with pytest.raises(ValueError):
            log.record_block(infer_schema(log.jobs), kind="stage")

    def test_column_encoding_roundtrip(self):
        from repro.core.features import FeatureKind, FeatureSchema

        log = ExecutionLog()
        values = [3.5, None, 3.5, 0.0, True, "x"]
        for index, value in enumerate(values):
            log.add_job(
                JobRecord(job_id=f"job_{index}", features={"f": value},
                          duration=float(index))
            )
        schema = FeatureSchema()
        schema.add("f", FeatureKind.NUMERIC)
        schema.add("duration", FeatureKind.NUMERIC)
        block = log.record_block(schema, kind="job")
        column = block.column("f")
        assert column.raw == values
        # Missing -> code -1; equal values share a code.
        assert column.codes[0] == column.codes[2]
        assert column.codes[1] == -1
        assert bytes(column.selfeq) == bytes([1, 0, 1, 1, 1, 1])
        # Only genuinely numeric values are float-eligible (bool is not).
        assert bytes(column.num_ok) == bytes([1, 0, 1, 1, 0, 0])
        assert not column.all_numeric
        assert column.floats[0] == 3.5
        # duration reads the performance metric off the record.
        duration = block.column("duration")
        assert duration.raw == [float(i) for i in range(6)]
        assert duration.all_numeric

    def test_ids_align_with_records(self):
        from repro.core.features import infer_schema

        log = ExecutionLog()
        for j in range(4):
            log.add_job(make_job(job_id=f"job_{j}"), [
                make_task(task_id=f"task_{j}", job_id=f"job_{j}")
            ])
        block = log.record_block(infer_schema(log.tasks), kind="task")
        assert block.ids == [task.task_id for task in log.tasks]
        assert block.id_bytes == [task.task_id.encode() for task in log.tasks]
        assert len(block) == len(log.tasks)


class TestMutationVersioning:
    """The mutation version counter behind every cached view (PR 4)."""

    def _schema(self, log):
        from repro.core.features import infer_schema

        return infer_schema(log.jobs)

    def test_replace_job_updates_find_job(self):
        log = ExecutionLog()
        log.add_job(make_job("job_1", numinstances=4))
        log.replace_job(make_job("job_1", numinstances=16))
        assert log.find_job("job_1").features["numinstances"] == 16

    def test_replace_job_invalidates_record_block(self):
        # Regression: same-length in-place replacement used to keep serving
        # the stale block because the cache was keyed on record count only.
        log = ExecutionLog()
        log.add_job(make_job("job_1", numinstances=4))
        log.add_job(make_job("job_2", numinstances=8))
        schema = self._schema(log)
        before = log.record_block(schema, kind="job")
        assert before.column("numinstances").raw == [4, 8]
        log.replace_job(make_job("job_2", numinstances=2))
        after = log.record_block(schema, kind="job")
        assert after is not before
        assert after.column("numinstances").raw == [4, 2]

    def test_replace_task_invalidates_block_and_groups(self):
        from repro.core.features import infer_schema

        log = ExecutionLog()
        log.add_job(make_job("job_1"), [make_task("task_1", hostname="host-0")])
        schema = infer_schema(log.tasks)
        before = log.record_block(schema, kind="task")
        log.replace_task(make_task("task_1", hostname="host-9"))
        after = log.record_block(schema, kind="task")
        assert after is not before
        assert after.column("hostname").raw == ["host-9"]
        assert log.find_task("task_1").features["hostname"] == "host-9"
        assert log.tasks_of_job("job_1")[0].features["hostname"] == "host-9"

    def test_replace_missing_record_raises(self):
        log = ExecutionLog()
        log.add_job(make_job("job_1"))
        with pytest.raises(ValueError):
            log.replace_job(make_job("job_x"))
        with pytest.raises(ValueError):
            log.replace_task(make_task("task_x"))

    def test_extend_bulk_appends_and_checks_duplicates(self):
        log = ExecutionLog()
        log.extend(jobs=[make_job("job_1"), make_job("job_2")],
                   tasks=[make_task("task_1")])
        assert log.num_jobs == 2 and log.num_tasks == 1
        assert log.find_job("job_2") is log.jobs[1]
        with pytest.raises(DuplicateRecordError):
            log.extend(jobs=[make_job("job_1")])
        with pytest.raises(DuplicateRecordError):
            log.extend(tasks=[make_task("task_1")])
        with pytest.raises(DuplicateRecordError):
            log.extend(jobs=[make_job("job_3"), make_job("job_3")])

    def test_extend_is_atomic_on_duplicates(self):
        log = ExecutionLog()
        log.add_job(make_job("job_1"))
        log.add_task(make_task("task_1"))
        with pytest.raises(DuplicateRecordError):
            log.extend(jobs=[make_job("job_2")], tasks=[make_task("task_1")])
        # The failing batch left no partial state behind...
        assert log.num_jobs == 1 and log.num_tasks == 1
        assert log.find_job("job_2") is None
        # ...so a corrected retry goes through cleanly.
        log.extend(jobs=[make_job("job_2")], tasks=[make_task("task_2")])
        assert log.num_jobs == 2 and log.num_tasks == 2

    def test_merge_result_serves_fresh_blocks(self):
        first = ExecutionLog()
        first.add_job(make_job("job_1", numinstances=1))
        schema = self._schema(first)
        stale = first.record_block(schema, kind="job")
        second = ExecutionLog()
        second.add_job(make_job("job_2", numinstances=2))
        merged = first.merge(second)
        block = merged.record_block(schema, kind="job")
        assert block is not stale
        assert block.column("numinstances").raw == [1, 2]
        # The source log's cache is untouched and still valid.
        assert first.record_block(schema, kind="job") is stale

    def test_invalidate_caches_after_direct_mutation(self):
        log = ExecutionLog()
        log.add_job(make_job("job_1", numinstances=4))
        schema = self._schema(log)
        log.record_block(schema, kind="job")
        log.jobs[0] = make_job("job_1", numinstances=32)  # out-of-band
        log.invalidate_caches()
        assert log.record_block(schema, kind="job").column("numinstances").raw == [32]
        assert log.find_job("job_1").features["numinstances"] == 32

    def test_direct_appends_still_invalidate_by_length(self):
        log = ExecutionLog()
        log.add_job(make_job("job_1"))
        schema = self._schema(log)
        log.record_block(schema, kind="job")
        log.jobs.append(make_job("job_2"))  # legacy direct append
        assert len(log.record_block(schema, kind="job")) == 2
        assert log.find_job("job_2") is log.jobs[1]


class TestLoadDuplicateIds:
    """Regression: duplicate record ids in a ``.jsonl(.gz)`` file must
    surface as a :class:`LogFormatError` naming the path and the id, not
    leak the bare ``ValueError`` from :meth:`ExecutionLog.extend`."""

    def _write_duplicate_tasks(self, path):
        from repro.logs.writer import write_records_jsonl

        task = make_task(task_id="task_dup")
        clone = make_task(task_id="task_dup", duration=99.0)
        write_records_jsonl(path, [make_job()], [task, clone])

    def test_duplicate_task_id_raises_log_format_error(self, tmp_path):
        target = tmp_path / "dupes.jsonl"
        self._write_duplicate_tasks(target)
        with pytest.raises(LogFormatError) as excinfo:
            ExecutionLog.load(target)
        message = str(excinfo.value)
        assert str(target) in message
        assert "task_dup" in message

    def test_duplicate_task_id_raises_for_gzip(self, tmp_path):
        target = tmp_path / "dupes.jsonl.gz"
        self._write_duplicate_tasks(target)
        with pytest.raises(LogFormatError) as excinfo:
            ExecutionLog.load(target)
        assert "task_dup" in str(excinfo.value)

    def test_duplicate_job_id_raises_log_format_error(self, tmp_path):
        from repro.logs.writer import write_records_jsonl

        target = tmp_path / "dupes.jsonl"
        write_records_jsonl(
            target, [make_job("job_dup"), make_job("job_dup", duration=2.0)], []
        )
        with pytest.raises(LogFormatError) as excinfo:
            ExecutionLog.load(target)
        message = str(excinfo.value)
        assert str(target) in message and "job_dup" in message

    def test_clean_jsonl_still_loads(self, tmp_path):
        from repro.logs.writer import write_records_jsonl

        target = tmp_path / "clean.jsonl"
        write_records_jsonl(target, [make_job()], [make_task()])
        log = ExecutionLog.load(target)
        assert log.num_jobs == 1 and log.num_tasks == 1


class TestBlockCacheBounds:
    """Regression: the per-``(kind, schema)`` block cache must not grow
    without bound under evolving schemas, and must report its counters."""

    @staticmethod
    def _schema_with_extras(log, count):
        from repro.core.features import FeatureKind, infer_schema

        schema = infer_schema(log.jobs)
        for index in range(count):
            schema.add(f"synthetic_{index}", FeatureKind.NOMINAL)
        return schema

    def test_stale_schema_entries_are_evicted(self):
        from repro.logs.store import MAX_BLOCKS_PER_KIND

        log = ExecutionLog(jobs=[make_job()])
        for count in range(3 * MAX_BLOCKS_PER_KIND):
            log.record_block(self._schema_with_extras(log, count), kind="job")
        stats = log.block_cache_stats()
        assert stats["size"] <= MAX_BLOCKS_PER_KIND
        assert stats["evictions"] >= 2 * MAX_BLOCKS_PER_KIND
        assert stats["misses"] == 3 * MAX_BLOCKS_PER_KIND

    def test_newest_schemas_survive_eviction(self):
        from repro.logs.store import MAX_BLOCKS_PER_KIND

        log = ExecutionLog(jobs=[make_job()])
        schemas = [
            self._schema_with_extras(log, count)
            for count in range(MAX_BLOCKS_PER_KIND + 2)
        ]
        blocks = [log.record_block(schema, kind="job") for schema in schemas]
        # The most recent MAX_BLOCKS_PER_KIND schemas are still cache hits.
        hits_before = log.block_cache_stats()["hits"]
        for schema, block in zip(schemas[2:], blocks[2:]):
            assert log.record_block(schema, kind="job") is block
        assert log.block_cache_stats()["hits"] == hits_before + MAX_BLOCKS_PER_KIND

    def test_mutation_drops_stale_blocks_of_kind(self):
        from repro.core.features import infer_schema

        log = ExecutionLog(jobs=[make_job("job_1")])
        schema = infer_schema(log.jobs)
        log.record_block(schema, kind="job")
        log.add_job(make_job("job_2"))
        block = log.record_block(schema, kind="job")
        # The pre-mutation snapshot was replaced in place, not stranded.
        assert log.block_cache_stats()["size"] == 1
        assert log.record_block(schema, kind="job") is block

    def test_kinds_are_bounded_independently(self):
        from repro.logs.store import MAX_BLOCKS_PER_KIND

        log = ExecutionLog(jobs=[make_job()], tasks=[make_task()])
        for count in range(MAX_BLOCKS_PER_KIND + 3):
            schema = self._schema_with_extras(log, count)
            log.record_block(schema, kind="job")
            log.record_block(schema, kind="task")
        stats = log.block_cache_stats()
        assert stats["size"] <= 2 * MAX_BLOCKS_PER_KIND
        assert stats["capacity"] == 2 * MAX_BLOCKS_PER_KIND

    def test_session_cache_stats_reports_record_blocks(self):
        from repro.core.api import PerfXplainSession

        log = ExecutionLog(jobs=[make_job()])
        session = PerfXplainSession(log)
        stats = session.cache_stats()
        assert "record_blocks" in stats
        assert stats["record_blocks"].size == 0
        assert stats["record_blocks"].to_dict()["capacity"] == 8


class TestCanonicalNanCode:
    """Regression: ``BlockColumn.from_values`` must give every NaN object
    one canonical code — ``set`` dedups NaN by identity, so distinct NaN
    objects used to get distinct codes."""

    def test_distinct_nan_objects_share_one_code(self):
        from repro.logs.store import BlockColumn

        column = BlockColumn.from_values(
            "mem", [float("nan"), 1.0, float("nan"), None], numeric=True
        )
        assert column.codes[0] == column.codes[2]
        assert column.codes[0] not in (-1, column.codes[1])
        assert column.codes[3] == -1
        # selfeq still masks NaN out of every kernel equality.
        assert list(column.selfeq) == [0, 1, 0, 0]

    def test_nan_code_is_canonical_in_nominal_columns_too(self):
        from repro.logs.store import BlockColumn

        nan = float("nan")
        column = BlockColumn.from_values(
            "tag", ["a", nan, float("nan"), "a"], numeric=False
        )
        assert column.codes[1] == column.codes[2]
        assert column.codes[0] == column.codes[3] != column.codes[1]

    def test_non_nan_codes_still_follow_dict_equality(self):
        from repro.logs.store import BlockColumn

        column = BlockColumn.from_values("size", [1, 1.0, True, 2], numeric=True)
        # 1 == 1.0 under dict equality; True == 1 as well.
        assert column.codes[0] == column.codes[1] == column.codes[2]
        assert column.codes[3] != column.codes[0]
