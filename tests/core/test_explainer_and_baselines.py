"""Tests for Algorithm 1 (PerfXplainExplainer) and the two baselines."""

import random

import pytest

from repro.core.baselines import RuleOfThumbExplainer, SimButDiffExplainer
from repro.core.examples import construct_training_examples
from repro.core.explainer import PerfXplainConfig, PerfXplainExplainer
from repro.core.explanation import evaluate_explanation
from repro.core.features import PERFORMANCE_METRIC, FeatureLevel
from repro.core.pairs import IS_SAME_SUFFIX, compute_pair_features, raw_feature_of
from repro.core.pxql.parser import parse_predicate
from repro.core.queries import why_slower_despite_same_num_instances
from repro.exceptions import ConfigurationError, ExplanationError


class TestPerfXplainConfig:
    def test_defaults_match_paper(self):
        config = PerfXplainConfig()
        assert config.width == 3
        assert config.score_weight == pytest.approx(0.8)
        assert config.sample_size == 2000

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PerfXplainConfig(width=-1)
        with pytest.raises(ConfigurationError):
            PerfXplainConfig(score_weight=1.5)
        with pytest.raises(ConfigurationError):
            PerfXplainConfig(sample_size=0)


class TestPerfXplainExplainer:
    def test_requires_bound_pair(self, small_log):
        explainer = PerfXplainExplainer()
        with pytest.raises(ExplanationError):
            explainer.explain(small_log, why_slower_despite_same_num_instances())

    def test_explanation_has_requested_width(self, small_log, job_schema, job_query):
        explainer = PerfXplainExplainer()
        explanation = explainer.explain(small_log, job_query, schema=job_schema, width=2)
        assert 1 <= explanation.width <= 2

    def test_width_zero_gives_empty_because(self, small_log, job_schema, job_query):
        explanation = PerfXplainExplainer().explain(
            small_log, job_query, schema=job_schema, width=0
        )
        assert explanation.because.is_true

    def test_explanation_applicable_to_pair_of_interest(self, small_log, job_schema, job_query):
        explainer = PerfXplainExplainer()
        explanation = explainer.explain(small_log, job_query, schema=job_schema, width=3)
        first = small_log.find_job(job_query.first_id)
        second = small_log.find_job(job_query.second_id)
        pair_values = compute_pair_features(first, second, job_schema)
        assert explanation.is_applicable(pair_values)

    def test_explanation_never_mentions_duration(self, small_log, job_schema, job_query):
        explanation = PerfXplainExplainer().explain(
            small_log, job_query, schema=job_schema, width=4
        )
        for feature in explanation.because.features():
            assert raw_feature_of(feature) != PERFORMANCE_METRIC

    def test_explanation_improves_precision_over_empty(self, small_log, job_schema, job_query):
        explainer = PerfXplainExplainer()
        explanation = explainer.explain(small_log, job_query, schema=job_schema, width=3)
        examples = construct_training_examples(
            small_log, job_query, job_schema, rng=random.Random(5)
        )
        base_rate = sum(1 for ex in examples if ex.is_observed) / len(examples)
        metrics = evaluate_explanation(explanation, examples)
        assert metrics.precision > base_rate

    def test_task_level_explanation(self, small_log, task_schema, task_query):
        explanation = PerfXplainExplainer().explain(
            small_log, task_query, schema=task_schema, width=3
        )
        assert explanation.width >= 1
        assert explanation.metrics is not None

    def test_level1_restricts_features_to_is_same(self, small_log, job_schema, job_query):
        config = PerfXplainConfig(feature_level=FeatureLevel.IS_SAME_ONLY)
        explanation = PerfXplainExplainer(config).explain(
            small_log, job_query, schema=job_schema, width=3
        )
        assert all(name.endswith(IS_SAME_SUFFIX) for name in explanation.because.features())

    def test_generate_despite_improves_relevance(self, small_log, job_schema, job_query):
        explainer = PerfXplainExplainer()
        stripped = job_query.without_despite()
        despite = explainer.generate_despite(small_log, stripped, schema=job_schema, width=3)
        assert 1 <= despite.width <= 3
        examples = construct_training_examples(
            small_log, stripped, job_schema, rng=random.Random(6)
        )
        from repro.core.explanation import relevance_of
        from repro.core.pxql.ast import TRUE_PREDICATE

        assert relevance_of(despite, examples) > relevance_of(TRUE_PREDICATE, examples)

    def test_auto_despite_produces_combined_explanation(self, small_log, job_schema, job_query):
        explainer = PerfXplainExplainer()
        explanation = explainer.explain(
            small_log, job_query.without_despite(), schema=job_schema, width=2,
            auto_despite=True, despite_width=2,
        )
        assert not explanation.despite.is_true

    def test_wrong_pair_rejected(self, small_log, job_schema):
        # A pair that does not satisfy the observed clause must be refused.
        jobs = sorted(small_log.jobs, key=lambda job: job.duration)
        fast, slow = jobs[0], jobs[-1]
        query = why_slower_despite_same_num_instances(fast.job_id, slow.job_id)
        query = query.without_despite()
        with pytest.raises(Exception):
            PerfXplainExplainer().explain(small_log, query, schema=job_schema)

    def test_deterministic_with_same_seed(self, small_log, job_schema, job_query):
        first = PerfXplainExplainer(rng=random.Random(3)).explain(
            small_log, job_query, schema=job_schema, width=3
        )
        second = PerfXplainExplainer(rng=random.Random(3)).explain(
            small_log, job_query, schema=job_schema, width=3
        )
        assert str(first.because) == str(second.because)


class TestRuleOfThumb:
    def test_explanation_uses_is_same_false_atoms(self, small_log, job_schema, job_query):
        explanation = RuleOfThumbExplainer().explain(
            small_log, job_query, schema=job_schema, width=3
        )
        assert explanation.technique == "RuleOfThumb"
        assert 1 <= explanation.width <= 3
        for atom in explanation.because.atoms:
            assert atom.feature.endswith(IS_SAME_SUFFIX)
            assert atom.value == "F"

    def test_ranking_is_cached_per_log(self, small_log, job_schema, job_query):
        explainer = RuleOfThumbExplainer()
        first = explainer.rank_features(small_log, job_query, job_schema)
        second = explainer.rank_features(small_log, job_query, job_schema)
        assert first == second

    def test_ranking_excludes_duration(self, small_log, job_schema, job_query):
        ranked = RuleOfThumbExplainer().rank_features(small_log, job_query, job_schema)
        assert all(name != PERFORMANCE_METRIC for name, _ in ranked)

    def test_requires_bound_pair(self, small_log):
        with pytest.raises(ExplanationError):
            RuleOfThumbExplainer().explain(small_log, why_slower_despite_same_num_instances())


class TestSimButDiff:
    def test_explanation_uses_only_is_same_features(self, small_log, job_schema, job_query):
        explanation = SimButDiffExplainer().explain(
            small_log, job_query, schema=job_schema, width=3
        )
        assert explanation.technique == "SimButDiff"
        for atom in explanation.because.atoms:
            assert atom.feature.endswith(IS_SAME_SUFFIX)
            assert raw_feature_of(atom.feature) != PERFORMANCE_METRIC

    def test_explanation_applicable_to_pair(self, small_log, job_schema, job_query):
        explanation = SimButDiffExplainer().explain(
            small_log, job_query, schema=job_schema, width=3
        )
        first = small_log.find_job(job_query.first_id)
        second = small_log.find_job(job_query.second_id)
        pair_values = compute_pair_features(first, second, job_schema)
        assert explanation.because.evaluate(pair_values)

    def test_similarity_threshold_validated(self):
        with pytest.raises(ConfigurationError):
            SimButDiffExplainer(similarity_threshold=0.0)

    def test_width_respected(self, small_log, job_schema, job_query):
        explanation = SimButDiffExplainer().explain(
            small_log, job_query, schema=job_schema, width=2
        )
        assert explanation.width <= 2
