"""Tests for the paper queries, the PerfXplain facade and the evaluation harness."""

import random

import pytest

from repro.core.api import PerfXplain
from repro.core.evaluation import (
    SweepResult,
    RunMetrics,
    evaluate_despite_relevance,
    evaluate_feature_levels,
    evaluate_log_fraction,
    evaluate_precision_vs_width,
    measure_on_log,
    precision_generality_points,
    relevance_of_user_despite,
    split_for_repetition,
)
from repro.core.explainer import PerfXplainExplainer
from repro.core.explanation import Explanation, ExplanationMetrics
from repro.core.pxql.ast import TRUE_PREDICATE
from repro.core.pxql.parser import parse_predicate
from repro.core.queries import (
    PAPER_QUERIES,
    find_pair_of_interest,
    why_last_task_faster,
    why_slower_despite_same_num_instances,
)
from repro.exceptions import EvaluationError, ExplanationError
from repro.logs.store import ExecutionLog


class TestPaperQueries:
    def test_catalogue(self):
        assert set(PAPER_QUERIES) == {
            "WhyLastTaskFaster", "WhySlowerDespiteSameNumInstances",
        }

    def test_job_query_structure(self):
        query = why_slower_despite_same_num_instances()
        assert query.entity.value == "job"
        assert "numinstances_isSame" in query.despite.features()
        assert query.observed_contradicts_expected()

    def test_task_query_structure(self):
        query = why_last_task_faster()
        assert query.entity.value == "task"
        assert "hostname_isSame" in query.despite.features()
        assert "job_id_isSame" in query.despite.features()

    def test_find_pair_of_interest_satisfies_query(self, small_log, job_schema):
        query = why_slower_despite_same_num_instances()
        first_id, second_id = find_pair_of_interest(
            small_log, query, schema=job_schema, rng=random.Random(0)
        )
        first = small_log.find_job(first_id)
        second = small_log.find_job(second_id)
        assert first.features["numinstances"] == second.features["numinstances"]
        assert first.features["pig_script"] == second.features["pig_script"]
        assert first.duration > second.duration * 1.1

    def test_find_pair_raises_when_impossible(self, small_log, job_schema):
        query = why_slower_despite_same_num_instances().with_despite(
            parse_predicate("numinstances_isSame = T AND pig_script_isSame = T "
                            "AND blocksize > 9999999999999")
        )
        with pytest.raises(ExplanationError):
            find_pair_of_interest(small_log, query, schema=job_schema)


class TestPerfXplainFacade:
    def test_parse_and_explain_from_text(self, perfxplain):
        explanation = perfxplain.explain("""
            FOR JOBS ?, ?
            DESPITE numinstances_isSame = T AND pig_script_isSame = T
            OBSERVED duration_compare = GT
            EXPECTED duration_compare = SIM
        """, width=2)
        assert explanation.width >= 1
        assert explanation.metrics is not None

    def test_explain_with_query_object(self, perfxplain, job_query):
        explanation = perfxplain.explain(job_query, width=2)
        assert explanation.technique == "PerfXplain"

    def test_all_techniques_available(self, perfxplain, job_query):
        available = set(perfxplain.techniques())
        assert {"perfxplain", "ruleofthumb", "simbutdiff"} <= available
        # The deterministic detectors register as first-class techniques.
        assert {
            "detect-skew",
            "detect-straggler",
            "detect-misconfig",
            "detect-underuse",
        } <= available
        for technique in ("perfxplain", "ruleofthumb", "simbutdiff"):
            explanation = perfxplain.explain(job_query, width=2, technique=technique)
            assert explanation.because is not None

    def test_unknown_technique_rejected(self, perfxplain, job_query):
        with pytest.raises(ExplanationError):
            perfxplain.explain(job_query, technique="magic")

    def test_pair_features_exposed(self, perfxplain, job_query):
        values = perfxplain.pair_features(job_query)
        assert values["numinstances_isSame"] == "T"
        assert values["duration_compare"] == "GT"

    def test_suggest_despite(self, perfxplain, job_query):
        despite = perfxplain.suggest_despite(job_query.without_despite(), width=2)
        assert 1 <= despite.width <= 2

    def test_schema_cached_per_entity(self, perfxplain, job_query, task_query):
        first = perfxplain.schema_for(job_query)
        second = perfxplain.schema_for(job_query)
        assert first is second
        assert perfxplain.schema_for(task_query) is not first

    def test_empty_log_rejected(self):
        facade = PerfXplain(ExecutionLog())
        with pytest.raises(ExplanationError):
            facade.explain("""
                FOR JOBS ?, ?
                OBSERVED duration_compare = GT
                EXPECTED duration_compare = SIM
            """)


class TestSweepResult:
    def _metrics(self, precision):
        return ExplanationMetrics(relevance=0.5, precision=precision, generality=0.3, support=10)

    def test_mean_and_std(self):
        sweep = SweepResult()
        for repetition, precision in enumerate([0.8, 0.9, 1.0]):
            sweep.add(RunMetrics("PerfXplain", 3, repetition, self._metrics(precision)))
        assert sweep.mean("PerfXplain", 3) == pytest.approx(0.9)
        assert sweep.std("PerfXplain", 3) == pytest.approx(0.1)

    def test_missing_data_returns_zero(self):
        sweep = SweepResult()
        assert sweep.mean("nobody", 1) == 0.0
        assert sweep.std("nobody", 1) == 0.0

    def test_series_and_table(self):
        sweep = SweepResult()
        for width in (1, 2):
            sweep.add(RunMetrics("PerfXplain", width, 0, self._metrics(0.5 + width / 10)))
        series = sweep.series("PerfXplain")
        assert [point[0] for point in series] == [1, 2]
        table = sweep.format_table()
        assert "PerfXplain" in table
        assert "width" in table


class TestMeasureOnLog:
    def test_empty_because_matches_base_rate(self, small_log, job_schema, job_query):
        explanation = Explanation(because=TRUE_PREDICATE)
        metrics = measure_on_log(explanation, job_query, small_log, schema=job_schema)
        assert 0.0 < metrics.precision < 1.0
        assert metrics.generality == pytest.approx(1.0)
        assert metrics.support > 0

    def test_relevance_plus_base_precision_is_one(self, small_log, job_schema, job_query):
        explanation = Explanation(because=TRUE_PREDICATE)
        metrics = measure_on_log(explanation, job_query, small_log, schema=job_schema)
        assert metrics.relevance + metrics.precision == pytest.approx(1.0)

    def test_specific_because_raises_precision(self, small_log, job_schema, job_query):
        explainer = PerfXplainExplainer()
        explanation = explainer.explain(small_log, job_query, schema=job_schema, width=3)
        empty = measure_on_log(Explanation(because=TRUE_PREDICATE), job_query, small_log,
                               schema=job_schema)
        full = measure_on_log(explanation, job_query, small_log, schema=job_schema)
        assert full.precision > empty.precision
        assert full.generality < empty.generality


class TestSplitting:
    def test_split_forces_pair_jobs_into_both_sides(self, small_log, job_query):
        train, test = split_for_repetition(small_log, job_query, repetition=0, seed=1)
        for part in (train, test):
            assert part.find_job(job_query.first_id) is not None
            assert part.find_job(job_query.second_id) is not None

    def test_split_forces_task_parent_jobs(self, small_log, task_query):
        train, test = split_for_repetition(small_log, task_query, repetition=0, seed=1)
        for part in (train, test):
            assert part.find_task(task_query.first_id) is not None

    def test_different_repetitions_differ(self, small_log, job_query):
        first_train, _ = split_for_repetition(small_log, job_query, 0, seed=1)
        second_train, _ = split_for_repetition(small_log, job_query, 1, seed=1)
        assert {j.job_id for j in first_train.jobs} != {j.job_id for j in second_train.jobs}


class TestEvaluationSweeps:
    """Small-scale runs of every experiment sweep (2 repetitions, few widths)."""

    def test_precision_vs_width_shape(self, small_log, job_query):
        techniques = [PerfXplainExplainer()]
        sweep = evaluate_precision_vs_width(
            small_log, job_query, techniques, widths=(0, 2), repetitions=2, seed=3,
        )
        assert sweep.techniques() == ["PerfXplain"]
        assert sweep.widths() == [0, 2]
        assert sweep.mean("PerfXplain", 2) > sweep.mean("PerfXplain", 0)

    def test_precision_vs_width_requires_pair(self, small_log):
        with pytest.raises(EvaluationError):
            evaluate_precision_vs_width(
                small_log, why_slower_despite_same_num_instances(), [PerfXplainExplainer()],
            )

    def test_despite_relevance_increases_with_width(self, small_log, job_query):
        sweep = evaluate_despite_relevance(
            small_log, job_query, widths=(0, 2), repetitions=2, seed=3,
        )
        empty = sweep.mean("PerfXplain-despite", 0, "relevance")
        generated = sweep.mean("PerfXplain-despite", 2, "relevance")
        assert generated > empty

    def test_user_despite_relevance(self, small_log, job_query):
        relevances = relevance_of_user_despite(small_log, job_query, repetitions=2, seed=3)
        assert len(relevances) == 2
        assert all(0.0 <= value <= 1.0 for value in relevances)

    def test_log_fraction_sweep(self, small_log, job_query):
        results = evaluate_log_fraction(
            small_log, job_query, [PerfXplainExplainer()], fractions=(0.2, 0.5),
            width=2, repetitions=2, seed=3,
        )
        assert set(results) == {0.2, 0.5}
        for sweep in results.values():
            assert sweep.mean("PerfXplain", 2) > 0

    def test_feature_level_sweep(self, small_log, job_query):
        sweep = evaluate_feature_levels(
            small_log, job_query, widths=(2,), repetitions=2, seed=3,
        )
        names = set(sweep.techniques())
        assert names == {"PerfXplain-level1", "PerfXplain-level2", "PerfXplain-level3"}

    def test_precision_generality_points(self, small_log, job_query):
        sweep = evaluate_precision_vs_width(
            small_log, job_query, [PerfXplainExplainer()], widths=(0, 1, 2),
            repetitions=2, seed=4,
        )
        points = precision_generality_points(sweep, "PerfXplain")
        assert len(points) == 2  # width 0 is skipped
        assert all(0 <= g <= 1 and 0 <= p <= 1 for g, p in points)
