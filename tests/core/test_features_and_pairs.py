"""Tests for the raw-feature schema and the pair-feature encoding (Table 1)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.features import (
    PERFORMANCE_METRIC,
    FeatureKind,
    FeatureLevel,
    FeatureSchema,
    infer_schema,
)
from repro.core.pairs import (
    COMPARE_SUFFIX,
    DIFF_SUFFIX,
    GREATER_THAN,
    IS_SAME_SUFFIX,
    LESS_THAN,
    NOT_SAME,
    SAME,
    SIMILAR,
    PairFeatureConfig,
    compare_values,
    compute_pair_features,
    pair_feature_catalog,
    raw_feature_of,
    relative_close,
)
from repro.exceptions import ConfigurationError, UnknownFeatureError
from repro.logs.records import JobRecord


def job(job_id, duration=100.0, **features):
    return JobRecord(job_id=job_id, features=features, duration=duration)


class TestInferSchema:
    def test_numeric_and_nominal_detected(self):
        schema = infer_schema([
            job("a", inputsize=100, pig_script="filter.pig", flag=True),
            job("b", inputsize=200, pig_script="groupby.pig", flag=False),
        ])
        assert schema.is_numeric("inputsize")
        assert not schema.is_numeric("pig_script")
        assert not schema.is_numeric("flag")  # booleans are nominal

    def test_mixed_types_become_nominal(self):
        schema = infer_schema([job("a", x=5), job("b", x="five")])
        assert not schema.is_numeric("x")

    def test_missing_values_do_not_affect_kind(self):
        schema = infer_schema([job("a", x=5), job("b", x=None)])
        assert schema.is_numeric("x")

    def test_duration_pseudo_feature_added(self):
        schema = infer_schema([job("a", x=1)])
        assert PERFORMANCE_METRIC in schema
        assert schema.is_numeric(PERFORMANCE_METRIC)

    def test_duration_can_be_excluded(self):
        schema = infer_schema([job("a", x=1)], include_duration=False)
        assert PERFORMANCE_METRIC not in schema

    def test_nominal_overrides(self):
        schema = infer_schema([job("a", instance_index=3)], nominal_overrides=["instance_index"])
        assert not schema.is_numeric("instance_index")

    def test_unknown_feature_raises(self):
        schema = infer_schema([job("a", x=1)])
        with pytest.raises(UnknownFeatureError):
            schema.spec("nope")

    def test_numeric_and_nominal_lists(self):
        schema = infer_schema([job("a", x=1, s="v")])
        assert "x" in schema.numeric_features()
        assert "s" in schema.nominal_features()


class TestCompareValues:
    def test_within_ten_percent_is_sim(self):
        assert compare_values(100.0, 105.0, 0.10) == SIMILAR
        assert compare_values(105.0, 100.0, 0.10) == SIMILAR

    def test_much_less_is_lt(self):
        assert compare_values(50.0, 100.0, 0.10) == LESS_THAN

    def test_much_greater_is_gt(self):
        assert compare_values(100.0, 50.0, 0.10) == GREATER_THAN

    def test_zeros_are_similar(self):
        assert compare_values(0.0, 0.0, 0.10) == SIMILAR

    @given(st.floats(min_value=-1e6, max_value=1e6), st.floats(min_value=-1e6, max_value=1e6))
    def test_antisymmetric(self, a, b):
        forward = compare_values(a, b, 0.10)
        backward = compare_values(b, a, 0.10)
        if forward == SIMILAR:
            assert backward == SIMILAR
        elif forward == LESS_THAN:
            assert backward == GREATER_THAN
        else:
            assert backward == LESS_THAN

    @given(st.floats(min_value=0, max_value=1e9))
    def test_relative_close_reflexive(self, value):
        assert relative_close(value, value, 0.02)


class TestPairFeatures:
    def _schema_and_jobs(self):
        first = job("j1", duration=300.0, inputsize=2_000_000, pig_script="filter.pig",
                    numinstances=8, avg_cpu=80.0)
        second = job("j2", duration=100.0, inputsize=1_000_000, pig_script="filter.pig",
                     numinstances=8, avg_cpu=81.0)
        schema = infer_schema([first, second])
        return schema, first, second

    def test_is_same_for_equal_nominal(self):
        schema, first, second = self._schema_and_jobs()
        values = compute_pair_features(first, second, schema)
        assert values["pig_script" + IS_SAME_SUFFIX] == SAME

    def test_is_same_for_numeric_with_tolerance(self):
        schema, first, second = self._schema_and_jobs()
        values = compute_pair_features(first, second, schema)
        # 80 vs 81 is within the 2% tolerance.
        assert values["avg_cpu" + IS_SAME_SUFFIX] == SAME
        assert values["inputsize" + IS_SAME_SUFFIX] == NOT_SAME

    def test_compare_feature_direction(self):
        schema, first, second = self._schema_and_jobs()
        values = compute_pair_features(first, second, schema)
        assert values["inputsize" + COMPARE_SUFFIX] == GREATER_THAN
        assert values["numinstances" + COMPARE_SUFFIX] == SIMILAR

    def test_duration_pair_features_present(self):
        schema, first, second = self._schema_and_jobs()
        values = compute_pair_features(first, second, schema)
        assert values["duration" + COMPARE_SUFFIX] == GREATER_THAN

    def test_compare_missing_for_nominal(self):
        schema, first, second = self._schema_and_jobs()
        values = compute_pair_features(first, second, schema)
        assert values["pig_script" + COMPARE_SUFFIX] is None

    def test_diff_only_for_nominal(self):
        schema, first, second = self._schema_and_jobs()
        values = compute_pair_features(first, second, schema)
        assert values["pig_script" + DIFF_SUFFIX] == "(filter.pig, filter.pig)"
        assert values["inputsize" + DIFF_SUFFIX] is None

    def test_base_feature_copied_only_when_equal(self):
        schema, first, second = self._schema_and_jobs()
        values = compute_pair_features(first, second, schema)
        assert values["numinstances"] == 8
        assert values["inputsize"] is None

    def test_missing_raw_value_propagates(self):
        first = job("j1", x=None, y=1)
        second = job("j2", x=5, y=1)
        schema = infer_schema([first, second])
        values = compute_pair_features(first, second, schema)
        assert values["x" + IS_SAME_SUFFIX] is None
        assert values["x" + COMPARE_SUFFIX] is None
        assert values["x"] is None

    def test_restricted_feature_list(self):
        schema, first, second = self._schema_and_jobs()
        values = compute_pair_features(first, second, schema, features=["inputsize"])
        assert set(raw_feature_of(name) for name in values) == {"inputsize"}

    def test_level_one_only_is_same(self):
        schema, first, second = self._schema_and_jobs()
        config = PairFeatureConfig(level=FeatureLevel.IS_SAME_ONLY)
        values = compute_pair_features(first, second, schema, config)
        assert all(name.endswith(IS_SAME_SUFFIX) for name in values)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            PairFeatureConfig(sim_threshold=0.0)
        with pytest.raises(ConfigurationError):
            PairFeatureConfig(is_same_tolerance=-0.1)


class TestPairFeatureCatalog:
    def test_excludes_duration_by_default(self):
        schema = infer_schema([job("a", x=1, s="v")])
        catalog = pair_feature_catalog(schema)
        assert not any(raw_feature_of(name) == PERFORMANCE_METRIC for name in catalog)

    def test_levels_control_catalog_size(self):
        schema = infer_schema([job("a", x=1, s="v")])
        level1 = pair_feature_catalog(schema, PairFeatureConfig(level=FeatureLevel.IS_SAME_ONLY))
        level2 = pair_feature_catalog(schema, PairFeatureConfig(level=FeatureLevel.COMPARISON))
        level3 = pair_feature_catalog(schema, PairFeatureConfig(level=FeatureLevel.FULL))
        assert set(level1) < set(level2) < set(level3)

    def test_only_base_numeric_features_are_numeric(self):
        schema = infer_schema([job("a", x=1, s="v")])
        catalog = pair_feature_catalog(schema)
        assert catalog["x"] is True
        assert catalog["s"] is False
        assert catalog["x" + IS_SAME_SUFFIX] is False
        assert catalog["x" + COMPARE_SUFFIX] is False

    def test_raw_feature_of_suffixes(self):
        assert raw_feature_of("inputsize_compare") == "inputsize"
        assert raw_feature_of("pig_script_isSame") == "pig_script"
        assert raw_feature_of("pig_script_diff") == "pig_script"
        assert raw_feature_of("blocksize") == "blocksize"


class TestPairVectorShape:
    def test_full_vector_has_table1_structure(self, small_log, job_schema):
        first, second = small_log.jobs[0], small_log.jobs[1]
        values = compute_pair_features(first, second, job_schema)
        raw_names = set(job_schema.names())
        for raw in raw_names:
            assert raw + IS_SAME_SUFFIX in values
            assert raw in values
            assert (raw + COMPARE_SUFFIX in values) or (raw + DIFF_SUFFIX in values)


class TestExcludedProvenanceFeatures:
    def _records(self):
        from repro.logs.records import JobRecord

        return [
            JobRecord(
                job_id="j1",
                features={"x": 1, "engine_seed": 5, "scenario": "s",
                          "scenario_variant": "baseline"},
                duration=1.0,
            )
        ]

    def test_provenance_features_dropped_by_default(self):
        from repro.core.features import DEFAULT_EXCLUDED_FEATURES

        schema = infer_schema(self._records())
        assert "x" in schema
        for name in DEFAULT_EXCLUDED_FEATURES:
            assert name not in schema

    def test_exclusion_can_be_disabled(self):
        schema = infer_schema(self._records(), excluded=())
        assert "engine_seed" in schema
        assert "scenario" in schema
