"""Tests for the concurrency primitives: RWLock and SingleFlight."""

import threading
import time

import pytest

from repro.core.locks import RWLock, SingleFlight


class TestRWLockBasics:
    def test_write_side_is_the_context_manager(self):
        lock = RWLock()
        with lock:
            pass  # exclusive acquire/release round-trips

    def test_read_locked_and_write_locked_round_trip(self):
        lock = RWLock()
        with lock.read_locked():
            pass
        with lock.write_locked():
            pass

    def test_readers_share(self):
        lock = RWLock()
        inside = threading.Barrier(3, timeout=5.0)

        def reader():
            with lock.read_locked():
                inside.wait()  # all three must be inside simultaneously

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5.0)
        assert not any(thread.is_alive() for thread in threads)

    def test_writer_excludes_readers(self):
        lock = RWLock()
        order = []
        writer_in = threading.Event()
        release_writer = threading.Event()

        def writer():
            with lock.write_locked():
                writer_in.set()
                order.append("writer-in")
                release_writer.wait(timeout=5.0)
                order.append("writer-out")

        def reader():
            writer_in.wait(timeout=5.0)
            with lock.read_locked():
                order.append("reader")

        writer_thread = threading.Thread(target=writer)
        reader_thread = threading.Thread(target=reader)
        writer_thread.start()
        writer_in.wait(timeout=5.0)
        reader_thread.start()
        time.sleep(0.05)  # give the reader a chance to (wrongly) slip in
        release_writer.set()
        writer_thread.join(timeout=5.0)
        reader_thread.join(timeout=5.0)
        assert order == ["writer-in", "writer-out", "reader"]

    def test_waiting_writer_blocks_new_readers(self):
        # Writer preference: once a writer queues up, later read attempts
        # wait, so a steady reader stream cannot starve the writer.
        lock = RWLock()
        first_reader_in = threading.Event()
        release_first_reader = threading.Event()
        writer_done = threading.Event()
        late_reader_result = []

        def first_reader():
            with lock.read_locked():
                first_reader_in.set()
                release_first_reader.wait(timeout=5.0)

        def writer():
            with lock.write_locked():
                writer_done.set()

        def late_reader():
            with lock.read_locked():
                late_reader_result.append(writer_done.is_set())

        reader_thread = threading.Thread(target=first_reader)
        reader_thread.start()
        first_reader_in.wait(timeout=5.0)
        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        time.sleep(0.05)  # let the writer register as waiting
        late_thread = threading.Thread(target=late_reader)
        late_thread.start()
        time.sleep(0.05)
        release_first_reader.set()
        for thread in (reader_thread, writer_thread, late_thread):
            thread.join(timeout=5.0)
        assert late_reader_result == [True]


class TestSingleFlight:
    def test_computes_once_per_key_under_contention(self):
        flight = SingleFlight()
        calls = []
        gate = threading.Barrier(4, timeout=5.0)
        results = []

        def factory():
            calls.append(1)
            time.sleep(0.02)
            return "value"

        def worker():
            gate.wait()
            results.append(flight.do("key", factory))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5.0)
        assert results == ["value"] * 4
        assert len(calls) == 1
        stats = flight.stats()
        assert stats["leads"] == 1
        assert stats["waits"] == 3
        assert stats["in_flight"] == 0

    def test_sequential_calls_each_lead(self):
        flight = SingleFlight()
        assert flight.do("k", lambda: 1) == 1
        assert flight.do("k", lambda: 2) == 2  # key retired after completion
        assert flight.stats()["leads"] == 2

    def test_waiters_see_the_leaders_error(self):
        flight = SingleFlight()
        gate = threading.Barrier(2, timeout=5.0)
        errors = []

        def boom():
            time.sleep(0.02)
            raise ValueError("leader failed")

        def worker():
            gate.wait()
            with pytest.raises(ValueError, match="leader failed"):
                flight.do("key", boom)
            errors.append(1)

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5.0)
        assert len(errors) == 2
        assert flight.stats()["in_flight"] == 0

    def test_distinct_keys_do_not_share(self):
        flight = SingleFlight()
        assert flight.do(("a", 1), lambda: "a") == "a"
        assert flight.do(("b", 1), lambda: "b") == "b"
        assert flight.stats()["leads"] == 2
