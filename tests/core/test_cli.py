"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.core.registry import unregister_explainer
from repro.core.report import Report
from repro.logs.store import ExecutionLog

_QUERY_TEXT = """
    FOR JOBS ?, ?
    DESPITE pig_script_isSame = T
    OBSERVED duration_compare = GT
    EXPECTED duration_compare = SIM
"""


@pytest.fixture(scope="module")
def log_path(tmp_path_factory):
    """A tiny execution log generated through the CLI itself."""
    path = tmp_path_factory.mktemp("cli") / "log.json"
    exit_code = main(["generate-log", "--grid", "tiny", "--seed", "11",
                      "--output", str(path)])
    assert exit_code == 0
    return path


class TestGenerateLog:
    def test_log_file_is_valid(self, log_path):
        log = ExecutionLog.load(log_path)
        assert log.num_jobs == 16
        assert log.num_tasks > 0

    def test_no_tasks_flag(self, tmp_path):
        path = tmp_path / "jobs_only.json"
        assert main(["generate-log", "--grid", "tiny", "--no-tasks",
                     "--output", str(path)]) == 0
        assert ExecutionLog.load(path).num_tasks == 0

    def test_reference_engine_flag_builds_identical_log(self, log_path, tmp_path):
        path = tmp_path / "reference.json"
        assert main(["generate-log", "--grid", "tiny", "--seed", "11",
                     "--engine", "reference", "--output", str(path)]) == 0
        assert ExecutionLog.load(path).to_json() == ExecutionLog.load(log_path).to_json()


class TestGenerateScenario:
    def test_scenario_log_is_stamped(self, tmp_path):
        path = tmp_path / "scenario.json"
        assert main(["generate-scenario", "--scenario", "data-skew",
                     "--seed", "5", "--output", str(path)]) == 0
        log = ExecutionLog.load(path)
        assert log.num_jobs > 0
        assert all(job.features["scenario"] == "data-skew" for job in log.jobs)
        assert all("engine_seed" in job.features for job in log.jobs)


class TestExplain:
    def test_explain_from_query_file(self, log_path, tmp_path, capsys):
        query_path = tmp_path / "query.pxql"
        query_path.write_text("""
            FOR JOBS ?, ?
            DESPITE pig_script_isSame = T
            OBSERVED duration_compare = GT
            EXPECTED duration_compare = SIM
        """, encoding="utf-8")
        assert main(["explain", "--log", str(log_path), "--query", str(query_path),
                     "--width", "2"]) == 0
        output = capsys.readouterr().out
        assert "BECAUSE" in output

    def test_explain_with_baseline_technique(self, log_path, tmp_path, capsys):
        query_path = tmp_path / "query.pxql"
        query_path.write_text("""
            FOR JOBS ?, ?
            DESPITE pig_script_isSame = T
            OBSERVED duration_compare = GT
            EXPECTED duration_compare = SIM
        """, encoding="utf-8")
        assert main(["explain", "--log", str(log_path), "--query", str(query_path),
                     "--technique", "simbutdiff"]) == 0
        assert "BECAUSE" in capsys.readouterr().out

    def test_impossible_query_reports_error(self, log_path, tmp_path, capsys):
        query_path = tmp_path / "query.pxql"
        query_path.write_text("""
            FOR JOBS 'job_does_not_exist', 'job_also_missing'
            OBSERVED duration_compare = GT
            EXPECTED duration_compare = SIM
        """, encoding="utf-8")
        assert main(["explain", "--log", str(log_path),
                     "--query", str(query_path)]) == 1
        assert "error:" in capsys.readouterr().err


class TestExplainJson:
    def test_json_output_parses_into_report(self, log_path, tmp_path, capsys):
        query_path = tmp_path / "query.pxql"
        query_path.write_text(_QUERY_TEXT, encoding="utf-8")
        assert main(["explain", "--log", str(log_path), "--query", str(query_path),
                     "--width", "2", "--format", "json"]) == 0
        report = Report.from_json(capsys.readouterr().out)
        assert len(report) == 1
        entry = report[0]
        assert entry.ok
        assert entry.first_id and entry.second_id
        assert entry.explanation.width >= 1
        assert entry.explanation.metrics is not None

    def test_multiple_query_files_make_multiple_entries(self, log_path, tmp_path, capsys):
        paths = []
        for index in range(2):
            path = tmp_path / f"query{index}.pxql"
            path.write_text(_QUERY_TEXT, encoding="utf-8")
            paths.append(str(path))
        assert main(["explain", "--log", str(log_path),
                     "--query", paths[0], "--query", paths[1],
                     "--width", "2", "--format", "json"]) == 0
        report = Report.from_json(capsys.readouterr().out)
        assert len(report) == 2


class TestPlugins:
    def test_custom_technique_via_plugin(self, log_path, tmp_path, capsys):
        plugin_path = tmp_path / "my_explainers.py"
        plugin_path.write_text(
            "from repro.core.explanation import Explanation\n"
            "from repro.core.pxql.ast import Comparison, Operator, Predicate\n"
            "from repro.core.registry import register_explainer\n"
            "\n"
            "@register_explainer('pin-blocksize')\n"
            "class PinBlocksize:\n"
            "    name = 'PinBlocksize'\n"
            "    def explain(self, log, query, schema=None, width=None):\n"
            "        atom = Comparison('blocksize_isSame', Operator.EQ, 'F')\n"
            "        return Explanation(because=Predicate.of(atom),\n"
            "                           technique=self.name)\n",
            encoding="utf-8",
        )
        query_path = tmp_path / "query.pxql"
        query_path.write_text(_QUERY_TEXT, encoding="utf-8")
        try:
            assert main(["explain", "--log", str(log_path),
                         "--query", str(query_path),
                         "--plugin", str(plugin_path),
                         "--technique", "pin-blocksize",
                         "--format", "json"]) == 0
            report = Report.from_json(capsys.readouterr().out)
            assert report[0].explanation.technique == "PinBlocksize"
        finally:
            unregister_explainer("pin-blocksize")

    def test_broken_plugin_reports_clean_error(self, log_path, tmp_path, capsys):
        plugin_path = tmp_path / "broken_plugin.py"
        plugin_path.write_text("raise RuntimeError('boom at import')\n", encoding="utf-8")
        query_path = tmp_path / "query.pxql"
        query_path.write_text(_QUERY_TEXT, encoding="utf-8")
        assert main(["explain", "--log", str(log_path), "--query", str(query_path),
                     "--plugin", str(plugin_path)]) == 1
        err = capsys.readouterr().err
        assert "error:" in err
        assert "boom at import" in err

    def test_missing_plugin_reports_clean_error(self, log_path, tmp_path, capsys):
        query_path = tmp_path / "query.pxql"
        query_path.write_text(_QUERY_TEXT, encoding="utf-8")
        assert main(["explain", "--log", str(log_path), "--query", str(query_path),
                     "--plugin", str(tmp_path / "nope.py")]) == 1
        assert "does not exist" in capsys.readouterr().err

    def test_unknown_technique_reports_registered_names(self, log_path, tmp_path, capsys):
        query_path = tmp_path / "query.pxql"
        query_path.write_text(_QUERY_TEXT, encoding="utf-8")
        assert main(["explain", "--log", str(log_path), "--query", str(query_path),
                     "--technique", "nope"]) == 1
        err = capsys.readouterr().err
        assert "unknown technique" in err
        assert "perfxplain" in err


class TestEvaluate:
    def test_evaluate_prints_tables(self, log_path, capsys):
        assert main(["evaluate", "--log", str(log_path),
                     "--query-name", "WhySlowerDespiteSameNumInstances",
                     "--widths", "0", "2", "--repetitions", "2"]) == 0
        output = capsys.readouterr().out
        assert "Precision on the held-out log" in output
        assert "PerfXplain" in output

    def test_evaluate_json_output(self, log_path, capsys):
        assert main(["evaluate", "--log", str(log_path),
                     "--query-name", "WhySlowerDespiteSameNumInstances",
                     "--widths", "0", "2", "--repetitions", "2",
                     "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["pair"][0] and data["pair"][1]
        assert "PerfXplain" in data["results"]
        assert "precision_mean" in data["results"]["PerfXplain"]["2"]

    def test_evaluate_single_technique(self, log_path, capsys):
        assert main(["evaluate", "--log", str(log_path),
                     "--query-name", "WhySlowerDespiteSameNumInstances",
                     "--widths", "2", "--repetitions", "2",
                     "--technique", "ruleofthumb", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert list(data["results"]) == ["RuleOfThumb"]
