"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.logs.store import ExecutionLog


@pytest.fixture(scope="module")
def log_path(tmp_path_factory):
    """A tiny execution log generated through the CLI itself."""
    path = tmp_path_factory.mktemp("cli") / "log.json"
    exit_code = main(["generate-log", "--grid", "tiny", "--seed", "11",
                      "--output", str(path)])
    assert exit_code == 0
    return path


class TestGenerateLog:
    def test_log_file_is_valid(self, log_path):
        log = ExecutionLog.load(log_path)
        assert log.num_jobs == 16
        assert log.num_tasks > 0

    def test_no_tasks_flag(self, tmp_path):
        path = tmp_path / "jobs_only.json"
        assert main(["generate-log", "--grid", "tiny", "--no-tasks",
                     "--output", str(path)]) == 0
        assert ExecutionLog.load(path).num_tasks == 0


class TestExplain:
    def test_explain_from_query_file(self, log_path, tmp_path, capsys):
        query_path = tmp_path / "query.pxql"
        query_path.write_text("""
            FOR JOBS ?, ?
            DESPITE pig_script_isSame = T
            OBSERVED duration_compare = GT
            EXPECTED duration_compare = SIM
        """, encoding="utf-8")
        assert main(["explain", "--log", str(log_path), "--query", str(query_path),
                     "--width", "2"]) == 0
        output = capsys.readouterr().out
        assert "BECAUSE" in output

    def test_explain_with_baseline_technique(self, log_path, tmp_path, capsys):
        query_path = tmp_path / "query.pxql"
        query_path.write_text("""
            FOR JOBS ?, ?
            DESPITE pig_script_isSame = T
            OBSERVED duration_compare = GT
            EXPECTED duration_compare = SIM
        """, encoding="utf-8")
        assert main(["explain", "--log", str(log_path), "--query", str(query_path),
                     "--technique", "simbutdiff"]) == 0
        assert "BECAUSE" in capsys.readouterr().out

    def test_impossible_query_reports_error(self, log_path, tmp_path, capsys):
        query_path = tmp_path / "query.pxql"
        query_path.write_text("""
            FOR JOBS 'job_does_not_exist', 'job_also_missing'
            OBSERVED duration_compare = GT
            EXPECTED duration_compare = SIM
        """, encoding="utf-8")
        assert main(["explain", "--log", str(log_path),
                     "--query", str(query_path)]) == 1
        assert "error:" in capsys.readouterr().err


class TestEvaluate:
    def test_evaluate_prints_tables(self, log_path, capsys):
        assert main(["evaluate", "--log", str(log_path),
                     "--query-name", "WhySlowerDespiteSameNumInstances",
                     "--widths", "0", "2", "--repetitions", "2"]) == 0
        output = capsys.readouterr().out
        assert "Precision on the held-out log" in output
        assert "PerfXplain" in output
