"""Tests for the bounded LRU cache behind the session and service layers."""

import pytest

from repro.core.cache import CacheStats, LRUCache


class TestLRUCache:
    def test_get_put_round_trip(self):
        cache = LRUCache(capacity=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", default=42) == 42

    def test_eviction_drops_least_recently_used(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"; "b" is now LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_put_refreshes_recency(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # re-put refreshes, does not grow
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 10

    def test_unlimited_capacity_never_evicts(self):
        cache = LRUCache(capacity=None)
        for index in range(10_000):
            cache.put(index, index)
        assert len(cache) == 10_000
        assert cache.stats().evictions == 0

    def test_zero_capacity_caches_nothing(self):
        cache = LRUCache(capacity=0)
        cache.put("a", 1)
        assert len(cache) == 0
        assert cache.get("a") is None
        assert cache.stats().misses == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=-1)

    def test_stats_accounting(self):
        cache = LRUCache(capacity=1)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        cache.put("b", 2)  # evicts "a"
        stats = cache.stats()
        assert stats == CacheStats(hits=1, misses=1, evictions=1, size=1, capacity=1)
        assert stats.lookups == 2
        assert stats.hit_rate == 0.5

    def test_stats_to_dict_is_json_compatible(self):
        stats = LRUCache(capacity=8).stats()
        payload = stats.to_dict()
        assert payload["capacity"] == 8
        assert payload["hit_rate"] == 0.0
        assert set(payload) == {
            "hits", "misses", "evictions", "size", "capacity", "hit_rate",
        }

    def test_contains_and_getitem_do_not_count(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        assert "a" in cache
        assert cache["a"] == 1
        assert cache.stats().hits == 0
        assert cache.stats().misses == 0

    def test_clear_keeps_counters(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1
