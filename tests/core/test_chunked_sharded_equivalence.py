"""Differential suite: chunked blocks + process-sharded kernels vs plain path.

The chunked ``RecordBlock`` layout (``repro.logs.chunkstore``) and the
process-sharded candidate evaluation (``repro.core.pairshard``) are pure
re-layouts of the serial in-memory pipeline: on any log and query they must
produce **bit-identical** related pairs, training examples (feature vectors
included), encoded training matrices, and explanation metrics — including
under capped CRC32 candidate subsampling, spill-to-disk chunk eviction, and
any worker count.  This file proves that across randomized logs (mixed
nominal/numeric/bool columns, missing values, NaN, blocking clauses), chunk
sizes from 1 row upward, and 1-3 worker processes.
"""

from __future__ import annotations

import random

import pytest

# Shared randomized-log fixtures and NaN-aware comparators from the
# kernel-vs-reference differential suite (same directory).
from test_pair_pipeline_equivalence import (
    _columns_equal,
    _despite_pool,
    _vectors_equal,
    pair_ids,
    random_log,
    random_query,
)

from repro.core.api import PerfXplainConfig, PerfXplainSession
from repro.core.evaluation import measure_on_log
from repro.core.examples import (
    construct_training_examples,
    construct_training_matrix,
    iter_related_pairs,
)
from repro.core.explanation import Explanation
from repro.core.features import infer_schema
from repro.core.pxql.ast import Predicate
from repro.exceptions import ExplanationError

SEEDS = list(range(12))
CHUNK_ROWS = [1, 3, 7, 16]
WORKER_COUNTS = [2, 3]

JOB_QUERY_TEXT = """
    FOR JOBS ?, ?
    DESPITE script_isSame = T
    OBSERVED duration_compare = GT
    EXPECTED duration_compare = SIM
"""


def chunked_log(seed, chunk_rows, max_resident_chunks=2):
    """The seed's random log re-layouted into spilling chunked blocks."""
    log = random_log(seed)
    log.configure_blocks(
        chunk_rows=chunk_rows, max_resident_chunks=max_resident_chunks
    )
    return log


def _examples_equal(left, right):
    assert len(left) == len(right)
    for left_example, right_example in zip(left, right):
        assert left_example.first_id == right_example.first_id
        assert left_example.second_id == right_example.second_id
        assert left_example.label == right_example.label
        assert _vectors_equal(left_example.values, right_example.values)


def _matrices_equal(left, right):
    assert left.encoding == right.encoding
    assert left.matrix.features == right.matrix.features
    assert bytes(left.observed) == bytes(right.observed)
    for feature in left.matrix.features:
        left_column = left.matrix.column(feature)
        right_column = right.matrix.column(feature)
        assert left_column.numeric == right_column.numeric, feature
        assert _columns_equal(left_column.raw, right_column.raw), feature


class TestChunkedEquivalence:
    """Chunked (and spilling) blocks change nothing observable."""

    @pytest.mark.parametrize("chunk_rows", CHUNK_ROWS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_related_pairs_identical(self, seed, chunk_rows):
        plain_log = random_log(seed)
        query = random_query(seed)
        schema = infer_schema(plain_log.jobs)
        plain = pair_ids(
            iter_related_pairs(plain_log, query, schema, rng=random.Random(seed))
        )
        chunked = pair_ids(
            iter_related_pairs(
                chunked_log(seed, chunk_rows), query, schema,
                rng=random.Random(seed),
            )
        )
        assert chunked == plain

    @pytest.mark.parametrize("seed", SEEDS)
    def test_examples_identical(self, seed):
        query = random_query(seed)
        plain_log = random_log(seed)
        schema = infer_schema(plain_log.jobs)
        plain = construct_training_examples(
            plain_log, query, schema, sample_size=60, rng=random.Random(seed)
        )
        chunked = construct_training_examples(
            chunked_log(seed, chunk_rows=7), query, schema, sample_size=60,
            rng=random.Random(seed),
        )
        _examples_equal(chunked, plain)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_capped_subsampling_identical(self, seed):
        """CRC32 subsampling sees the same candidate universe either way."""
        query = random_query(seed)
        plain_log = random_log(seed)
        schema = infer_schema(plain_log.jobs)
        plain = pair_ids(
            iter_related_pairs(plain_log, query, schema, max_candidate_pairs=50,
                               rng=random.Random(seed))
        )
        chunked = pair_ids(
            iter_related_pairs(chunked_log(seed, chunk_rows=3), query, schema,
                               max_candidate_pairs=50, rng=random.Random(seed))
        )
        assert chunked == plain

    @pytest.mark.parametrize("seed", SEEDS[:8])
    def test_matrix_identical(self, seed):
        query = random_query(seed)
        plain_log = random_log(seed)
        schema = infer_schema(plain_log.jobs)
        plain = construct_training_matrix(
            plain_log, query, schema, sample_size=60, rng=random.Random(seed)
        )
        chunked = construct_training_matrix(
            chunked_log(seed, chunk_rows=5), query, schema, sample_size=60,
            rng=random.Random(seed),
        )
        _matrices_equal(chunked, plain)

    @pytest.mark.parametrize("seed", SEEDS[:8])
    def test_metrics_identical(self, seed):
        query = random_query(seed)
        plain_log = random_log(seed)
        schema = infer_schema(plain_log.jobs)
        rng = random.Random(seed + 3)
        explanation = Explanation(
            because=Predicate.conjunction(rng.sample(_despite_pool(), 2)),
            despite=Predicate.conjunction(rng.sample(_despite_pool(), 1)),
        )
        plain = measure_on_log(explanation, query, plain_log, schema=schema,
                               rng=random.Random(seed))
        chunked = measure_on_log(explanation, query, chunked_log(seed, 4),
                                 schema=schema, rng=random.Random(seed))
        assert chunked == plain


class TestShardedEquivalence:
    """Worker pools shard the work, never the answer."""

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("seed", SEEDS[:6])
    def test_examples_identical(self, seed, workers):
        query = random_query(seed)
        log = random_log(seed)
        schema = infer_schema(log.jobs)
        plain = construct_training_examples(
            log, query, schema, sample_size=60, rng=random.Random(seed)
        )
        sharded = construct_training_examples(
            log, query, schema, sample_size=60, rng=random.Random(seed),
            workers=workers,
        )
        _examples_equal(sharded, plain)

    @pytest.mark.parametrize("seed", SEEDS[:6])
    def test_capped_subsampling_identical(self, seed):
        query = random_query(seed)
        log = random_log(seed)
        schema = infer_schema(log.jobs)
        plain = pair_ids(
            iter_related_pairs(log, query, schema, max_candidate_pairs=50,
                               rng=random.Random(seed))
        )
        sharded = pair_ids(
            iter_related_pairs(log, query, schema, max_candidate_pairs=50,
                               rng=random.Random(seed), workers=2)
        )
        assert sharded == plain

    @pytest.mark.parametrize("seed", SEEDS[:6])
    def test_matrix_identical(self, seed):
        query = random_query(seed)
        log = random_log(seed)
        schema = infer_schema(log.jobs)
        plain = construct_training_matrix(
            log, query, schema, sample_size=60, rng=random.Random(seed)
        )
        sharded = construct_training_matrix(
            log, query, schema, sample_size=60, rng=random.Random(seed),
            workers=2,
        )
        _matrices_equal(sharded, plain)

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_metrics_identical(self, seed):
        query = random_query(seed)
        log = random_log(seed)
        schema = infer_schema(log.jobs)
        rng = random.Random(seed + 3)
        explanation = Explanation(
            because=Predicate.conjunction(rng.sample(_despite_pool(), 2)),
            despite=Predicate.conjunction(rng.sample(_despite_pool(), 1)),
        )
        plain = measure_on_log(explanation, query, log, schema=schema,
                               rng=random.Random(seed))
        sharded = measure_on_log(explanation, query, log, schema=schema,
                                 rng=random.Random(seed), workers=2)
        assert sharded == plain


class TestChunkedAndSharded:
    """Spilling chunked blocks *and* worker pools composed together."""

    @pytest.mark.parametrize("chunk_rows", [1, 5])
    @pytest.mark.parametrize("seed", SEEDS[:6])
    def test_examples_identical(self, seed, chunk_rows):
        query = random_query(seed)
        plain_log = random_log(seed)
        schema = infer_schema(plain_log.jobs)
        plain = construct_training_examples(
            plain_log, query, schema, sample_size=60, rng=random.Random(seed)
        )
        combined = construct_training_examples(
            chunked_log(seed, chunk_rows), query, schema, sample_size=60,
            rng=random.Random(seed), workers=2,
        )
        _examples_equal(combined, plain)

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_matrix_identical(self, seed):
        query = random_query(seed)
        plain_log = random_log(seed)
        schema = infer_schema(plain_log.jobs)
        plain = construct_training_matrix(
            plain_log, query, schema, sample_size=60, rng=random.Random(seed)
        )
        combined = construct_training_matrix(
            chunked_log(seed, chunk_rows=3), query, schema, sample_size=60,
            rng=random.Random(seed), workers=3,
        )
        _matrices_equal(combined, plain)

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_session_explanations_identical(self, seed):
        """End-to-end: a sharded session on a chunked log answers the same."""
        plain_session = PerfXplainSession(random_log(seed), seed=seed)
        combined_session = PerfXplainSession(
            chunked_log(seed, chunk_rows=5),
            config=PerfXplainConfig(pair_workers=2),
            seed=seed,
        )
        try:
            plain = plain_session.explain(JOB_QUERY_TEXT, width=2)
        except ExplanationError:
            with pytest.raises(ExplanationError):
                combined_session.explain(JOB_QUERY_TEXT, width=2)
            return
        combined = combined_session.explain(JOB_QUERY_TEXT, width=2)
        assert combined.because == plain.because
        assert combined.despite == plain.despite
        assert combined.metrics == plain.metrics
