"""Property tests for blocking-group semantics (despite-clause blocking).

Blocking is a pure optimisation: pairs are only enumerated within groups of
records agreeing on every raw feature whose exact equality the despite
clause implies.  These properties pin down its contract over random schemas
and record populations:

* numeric raw features are never blocked (tolerance-based ``isSame`` could
  split genuinely "same" float pairs);
* records missing a blocked value are dropped (they can never satisfy
  ``isSame = T``);
* the kernel path's code-keyed grouping
  (:func:`repro.core.pairkernel.blocking_group_indices`) produces exactly
  the reference's value-keyed groups, including group order.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.examples import _blocking_features, _group_records
from repro.core.features import FeatureKind, FeatureSchema
from repro.core.pairkernel import blocking_group_indices
from repro.core.pxql.ast import Comparison, Operator, Predicate
from repro.core.pxql.query import EntityKind, PXQLQuery
from repro.logs.records import JobRecord
from repro.logs.store import ExecutionLog

#: Candidate raw features (name, kind, value pool).  Pools are tiny to
#: force collisions, and every pool includes missing values; ``epsilon``
#: includes NaN (a nominal-typed float), which blocking must drop exactly
#: like a missing value — NaN can never satisfy ``isSame = T``.
FEATURE_POOLS = {
    "alpha": (FeatureKind.NOMINAL, ["a", "b", "c", None]),
    "beta": (FeatureKind.NOMINAL, [True, False, 1, 0, None]),
    "gamma": (FeatureKind.NUMERIC, [1, 2, 2.0, None]),
    "delta": (FeatureKind.NUMERIC, [0.5, 3.5, None]),
    "epsilon": (FeatureKind.NOMINAL, ["x", None, float("nan")]),
}


@st.composite
def schema_records_and_query(draw):
    feature_names = draw(
        st.lists(st.sampled_from(sorted(FEATURE_POOLS)), min_size=1, max_size=5,
                 unique=True)
    )
    schema = FeatureSchema()
    for name in feature_names:
        schema.add(name, FEATURE_POOLS[name][0])
    schema.add("duration", FeatureKind.NUMERIC)

    n_records = draw(st.integers(min_value=0, max_value=25))
    records = []
    for index in range(n_records):
        features = {
            name: draw(st.sampled_from(FEATURE_POOLS[name][1]))
            for name in feature_names
        }
        records.append(
            JobRecord(job_id=f"job_{index}", features=features, duration=1.0 + index)
        )

    # The despite clause mixes isSame = T atoms (blocking candidates for
    # nominal raws), non-blocking operators/values, and unknown features.
    atom_pool = []
    for name in feature_names:
        atom_pool.append(Comparison(f"{name}_isSame", Operator.EQ, "T"))
        atom_pool.append(Comparison(f"{name}_isSame", Operator.EQ, "F"))
        atom_pool.append(Comparison(f"{name}_isSame", Operator.NE, "T"))
    atom_pool.append(Comparison("ghost_isSame", Operator.EQ, "T"))
    atoms = draw(st.lists(st.sampled_from(atom_pool), max_size=4, unique_by=id))
    query = PXQLQuery(
        entity=EntityKind.JOB,
        despite=Predicate.conjunction(atoms),
        observed=Predicate.of(Comparison("duration_compare", Operator.EQ, "GT")),
        expected=Predicate.of(Comparison("duration_compare", Operator.EQ, "SIM")),
    )
    return schema, records, query


@settings(max_examples=120, deadline=None)
@given(data=schema_records_and_query())
def test_numeric_features_are_never_blocked(data):
    schema, _, query = data
    blocking = _blocking_features(query, schema)
    for raw in blocking:
        assert raw in schema
        assert not schema.is_numeric(raw)


@settings(max_examples=120, deadline=None)
@given(data=schema_records_and_query())
def test_blocking_only_from_is_same_equals_t_atoms(data):
    schema, _, query = data
    blocking = _blocking_features(query, schema)
    implied = {
        atom.feature[: -len("_isSame")]
        for atom in query.despite.atoms
        if atom.operator is Operator.EQ
        and atom.value == "T"
        and atom.feature.endswith("_isSame")
    }
    assert set(blocking) <= implied


@settings(max_examples=120, deadline=None)
@given(data=schema_records_and_query())
def test_groups_drop_missing_and_agree_on_blocked_values(data):
    schema, records, query = data
    blocking = _blocking_features(query, schema)
    groups = _group_records(records, blocking)
    grouped = [record for group in groups for record in group]
    if blocking:
        for record in records:
            missing = any(
                value is None or value != value
                for value in (record.features.get(name) for name in blocking)
            )
            assert (record in grouped) == (not missing)
        for group in groups:
            anchor = group[0]
            for record in group:
                for name in blocking:
                    assert record.features.get(name) == anchor.features.get(name)
    else:
        assert grouped == list(records)


@settings(max_examples=120, deadline=None)
@given(data=schema_records_and_query())
def test_kernel_groups_match_reference_groups(data):
    schema, records, query = data
    blocking = _blocking_features(query, schema)
    log = ExecutionLog(jobs=list(records))
    block = log.record_block(schema, kind="job")
    kernel_groups = blocking_group_indices(block, blocking)
    reference_groups = _group_records(records, blocking)
    as_records = [[records[index] for index in group] for group in kernel_groups]
    assert as_records == reference_groups


@settings(max_examples=60, deadline=None)
@given(data=schema_records_and_query())
def test_chunked_kernel_groups_match_reference_groups(data):
    """Chunked blocks group identically — global codes span chunk edges."""
    schema, records, query = data
    blocking = _blocking_features(query, schema)
    log = ExecutionLog(jobs=list(records))
    log.configure_blocks(chunk_rows=5, max_resident_chunks=2)
    block = log.record_block(schema, kind="job")
    kernel_groups = blocking_group_indices(block, blocking)
    reference_groups = _group_records(records, blocking)
    as_records = [[records[index] for index in group] for group in kernel_groups]
    assert as_records == reference_groups
