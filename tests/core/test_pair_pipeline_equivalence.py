"""Differential suite: columnar pair pipeline vs the dict reference path.

The kernel pipeline (`RecordBlock` -> `PairKernel` -> `TrainingMatrix`) must
be a pure re-layout of the pair-at-a-time dict algorithm preserved in
:mod:`repro.core.pairref`: on any log and query it must produce **identical**
related pairs (ids, labels *and order*), identical training examples
(feature vectors included) and an identical encoded training matrix.  This
file checks that on 48 randomized logs mixing nominal/numeric/bool/int
columns, missing values, duplicated values, NaN, blocking clauses and every
atom family (isSame/compare/diff/base, EQ/NE/ordering), plus capped
candidate subsampling and the three feature levels.
"""

from __future__ import annotations

import random

import pytest

from repro.core.examples import (
    Label,
    construct_training_examples,
    construct_training_matrix,
    encode_training_examples,
    iter_related_pairs,
)
from repro.core.features import (
    FeatureKind,
    FeatureLevel,
    FeatureSchema,
    infer_schema,
)
from repro.core.pairref import (
    construct_training_examples_reference,
    iter_related_pairs_reference,
)
from repro.core.pairs import PairFeatureConfig, compute_pair_features
from repro.core.explanation import Explanation
from repro.core.evaluation import measure_on_log
from repro.core.pxql.ast import Comparison, Operator, Predicate
from repro.core.pxql.query import EntityKind, PXQLQuery
from repro.logs.records import JobRecord
from repro.logs.store import ExecutionLog

#: Randomized log/query seeds exercised by every differential test.
DATASET_SEEDS = list(range(48))

SCRIPTS = ["wordcount.pig", "join.pig", "filter.pig", None]
HOSTS = ["host-a", "host-b", "host-c", "host-d", None]
MEM_POOL = [0.5, 0.5, 2.0, 2.0, 8.0, 17.5, -3.25, 0.0, None, None]
SIZE_POOL = [64, 64, 128, 256, 1024, None]
FLAG_POOL = [True, False, False, None]
DURATION_POOL = [1.0, 2.0, 2.0, 5.0, 5.5, 30.0, 120.0]


def random_log(seed: int) -> ExecutionLog:
    """A randomized job log with missing values, duplicates and NaN."""
    rng = random.Random(seed)
    nan = float("nan")
    log = ExecutionLog()
    for index in range(rng.randint(10, 60)):
        features = {
            "script": rng.choice(SCRIPTS),
            "host": rng.choice(HOSTS),
            "mem": nan if rng.random() < 0.05 else rng.choice(MEM_POOL),
            "size": rng.choice(SIZE_POOL),
            "flag": rng.choice(FLAG_POOL),
        }
        duration = rng.choice(DURATION_POOL) * rng.choice([1.0, 1.0, 1.0, 1.09, 3.0])
        log.add_job(JobRecord(job_id=f"job_{seed}_{index}", features=features,
                              duration=duration))
    return log


#: Despite-atom pool: every kernel mask family (vector paths and fallbacks).
def _despite_pool() -> list[Comparison]:
    return [
        Comparison("script_isSame", Operator.EQ, "T"),      # nominal isSame (blocking)
        Comparison("host_isSame", Operator.EQ, "T"),        # nominal isSame (blocking)
        Comparison("host_isSame", Operator.EQ, "F"),        # isSame EQ F
        Comparison("flag_isSame", Operator.EQ, "T"),        # bool nominal isSame
        Comparison("mem_isSame", Operator.EQ, "T"),         # numeric tolerance isSame
        Comparison("size_isSame", Operator.NE, "F"),        # NE on isSame
        Comparison("mem_compare", Operator.EQ, "SIM"),      # compare EQ SIM
        Comparison("size_compare", Operator.EQ, "GT"),      # compare EQ GT
        Comparison("size_compare", Operator.NE, "LT"),      # compare NE
        Comparison("script", Operator.EQ, "join.pig"),      # base EQ (nominal)
        Comparison("size", Operator.EQ, 64),                # base EQ (numeric)
        Comparison("mem", Operator.LE, 4.0),                # base ordering (fallback)
        Comparison("script_diff", Operator.NE, "(a, b)"),   # diff NE (fallback)
        Comparison("host_isSame", Operator.LT, "U"),        # ordering on isSame (fallback)
    ]


def random_query(seed: int) -> PXQLQuery:
    rng = random.Random(seed * 31 + 7)
    despite = Predicate.conjunction(
        rng.sample(_despite_pool(), rng.randint(0, 3))
    )
    observed = Predicate.of(Comparison("duration_compare", Operator.EQ, "GT"))
    expected = Predicate.of(Comparison("duration_compare", Operator.EQ, "SIM"))
    return PXQLQuery(
        entity=EntityKind.JOB,
        despite=despite,
        observed=observed,
        expected=expected,
        name=f"differential-{seed}",
    )


def pair_ids(pairs):
    return [(first.entity_id, second.entity_id, label) for first, second, label in pairs]


class TestRelatedPairEquivalence:
    @pytest.mark.parametrize("seed", DATASET_SEEDS)
    def test_related_pairs_identical(self, seed):
        log = random_log(seed)
        query = random_query(seed)
        schema = infer_schema(log.jobs)
        kernel = pair_ids(iter_related_pairs(log, query, schema,
                                             rng=random.Random(seed)))
        reference = pair_ids(iter_related_pairs_reference(log, query, schema,
                                                          rng=random.Random(seed)))
        assert kernel == reference

    @pytest.mark.parametrize("seed", DATASET_SEEDS[:12])
    @pytest.mark.parametrize("level", list(FeatureLevel))
    def test_related_pairs_identical_per_level(self, seed, level):
        log = random_log(seed)
        query = random_query(seed)
        schema = infer_schema(log.jobs)
        config = PairFeatureConfig(level=level)
        kernel = pair_ids(iter_related_pairs(log, query, schema, config,
                                             rng=random.Random(seed)))
        reference = pair_ids(iter_related_pairs_reference(log, query, schema, config,
                                                          rng=random.Random(seed)))
        assert kernel == reference

    @pytest.mark.parametrize("seed", DATASET_SEEDS[:16])
    def test_capped_subsampling_identical(self, seed):
        log = random_log(seed)
        query = random_query(seed)
        schema = infer_schema(log.jobs)
        kernel = pair_ids(iter_related_pairs(log, query, schema,
                                             max_candidate_pairs=50,
                                             rng=random.Random(seed)))
        reference = pair_ids(iter_related_pairs_reference(log, query, schema,
                                                          max_candidate_pairs=50,
                                                          rng=random.Random(seed)))
        assert kernel == reference

    @pytest.mark.parametrize("seed", DATASET_SEEDS[:8])
    def test_mixed_type_numeric_column_identical(self, seed):
        """A schema forcing numeric kind onto a mixed-type column."""
        log = random_log(seed)
        rng = random.Random(seed + 999)
        for job in log.jobs:
            if rng.random() < 0.3:
                job.features["mem"] = rng.choice(["low", "high", True])
        schema = FeatureSchema()
        for name in ("script", "host", "flag"):
            schema.add(name, FeatureKind.NOMINAL)
        for name in ("mem", "size", "duration"):
            schema.add(name, FeatureKind.NUMERIC)
        query = random_query(seed)
        kernel = pair_ids(iter_related_pairs(log, query, schema,
                                             rng=random.Random(seed)))
        reference = pair_ids(iter_related_pairs_reference(log, query, schema,
                                                          rng=random.Random(seed)))
        assert kernel == reference


class TestTrainingExampleEquivalence:
    @pytest.mark.parametrize("seed", DATASET_SEEDS)
    def test_examples_identical(self, seed):
        log = random_log(seed)
        query = random_query(seed)
        schema = infer_schema(log.jobs)
        sample_size = random.Random(seed + 5).choice([None, 20, 75, 2000])
        kernel = construct_training_examples(
            log, query, schema, sample_size=sample_size, rng=random.Random(seed)
        )
        reference = construct_training_examples_reference(
            log, query, schema, sample_size=sample_size, rng=random.Random(seed)
        )
        assert len(kernel) == len(reference)
        for kernel_example, reference_example in zip(kernel, reference):
            assert kernel_example.first_id == reference_example.first_id
            assert kernel_example.second_id == reference_example.second_id
            assert kernel_example.label == reference_example.label
            assert _vectors_equal(kernel_example.values, reference_example.values)


def _vectors_equal(kernel_values: dict, reference_values: dict) -> bool:
    """Dict equality that distinguishes NaN-valued from differing entries."""
    if list(kernel_values) != list(reference_values):
        return False
    for key, reference_value in reference_values.items():
        kernel_value = kernel_values[key]
        if kernel_value != reference_value and not (
            kernel_value != kernel_value and reference_value != reference_value
        ):
            return False
    return True


class TestTrainingMatrixEquivalence:
    @pytest.mark.parametrize("seed", DATASET_SEEDS)
    def test_matrix_identical_to_encoded_reference(self, seed):
        log = random_log(seed)
        query = random_query(seed)
        schema = infer_schema(log.jobs)
        level = random.Random(seed + 17).choice(list(FeatureLevel))
        kernel_matrix = construct_training_matrix(
            log, query, schema, sample_size=60, rng=random.Random(seed),
            feature_level=level,
        )
        reference_examples = construct_training_examples_reference(
            log, query, schema, sample_size=60, rng=random.Random(seed)
        )
        reference_matrix = encode_training_examples(
            reference_examples, schema, feature_level=level
        )
        assert kernel_matrix.encoding == reference_matrix.encoding
        assert kernel_matrix.matrix.features == reference_matrix.matrix.features
        assert bytes(kernel_matrix.observed) == bytes(reference_matrix.observed)
        for feature in kernel_matrix.matrix.features:
            kernel_column = kernel_matrix.matrix.column(feature)
            reference_column = reference_matrix.matrix.column(feature)
            assert kernel_column.numeric == reference_column.numeric, feature
            assert _columns_equal(kernel_column.raw, reference_column.raw), feature
        # The Sequence protocol surfaces the same example objectsively.
        assert [example.label for example in kernel_matrix] == [
            example.label for example in reference_matrix
        ]


def _columns_equal(kernel_column: list, reference_column: list) -> bool:
    if len(kernel_column) != len(reference_column):
        return False
    for kernel_value, reference_value in zip(kernel_column, reference_column):
        if kernel_value != reference_value and not (
            kernel_value != kernel_value and reference_value != reference_value
        ):
            return False
    return True


class TestMeasureOnLogEquivalence:
    """The kernelized metric estimation matches a dict-path recount."""

    @pytest.mark.parametrize("seed", DATASET_SEEDS[:12])
    def test_metrics_match_dict_recount(self, seed):
        log = random_log(seed)
        query = random_query(seed)
        schema = infer_schema(log.jobs)
        rng = random.Random(seed + 3)
        explanation = Explanation(
            because=Predicate.conjunction(rng.sample(_despite_pool(), 2)),
            despite=Predicate.conjunction(rng.sample(_despite_pool(), 1)),
        )
        metrics = measure_on_log(explanation, query, log, schema=schema,
                                 rng=random.Random(seed))

        in_context = in_context_expected = 0
        matching = matching_observed = 0
        for first, second, label in iter_related_pairs_reference(
            log, query, schema, rng=random.Random(seed)
        ):
            values = compute_pair_features(first, second, schema)
            if not explanation.despite.evaluate(values):
                continue
            in_context += 1
            if label is Label.EXPECTED:
                in_context_expected += 1
            if explanation.because.evaluate(values):
                matching += 1
                if label is Label.OBSERVED:
                    matching_observed += 1
        assert metrics.support == in_context
        if in_context:
            assert metrics.relevance == in_context_expected / in_context
            assert metrics.generality == matching / in_context
        if matching:
            assert metrics.precision == matching_observed / matching
