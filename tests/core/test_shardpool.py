"""Tests for the persistent ShardPool: reuse, re-fork, overlap, teardown."""

from __future__ import annotations

import threading

import pytest

# Randomized-log builder shared with the kernel differential suites.
from test_pair_pipeline_equivalence import random_log

from repro.core.examples import pair_kernel_for
from repro.core.features import infer_schema
from repro.core.pairkernel import blocking_group_indices
from repro.core.pairs import PairFeatureConfig
from repro.core.pairshard import (
    ShardPool,
    _fork_context,
    default_shard_pool,
    evaluate_candidate_batch,
    iter_evaluated_batches,
    shard_token,
)
from repro.core.pxql.parser import parse_query

fork_only = pytest.mark.skipif(
    _fork_context() is None, reason="requires the fork start method"
)

JOB_QUERY_TEXT = """
    FOR JOBS ?, ?
    DESPITE script_isSame = T
    OBSERVED duration_compare = GT
    EXPECTED duration_compare = SIM
"""


def _kernel_and_groups(seed: int):
    log = random_log(seed)
    query = parse_query(JOB_QUERY_TEXT)
    schema = infer_schema(log.jobs)
    kernel = pair_kernel_for(log, query, schema, PairFeatureConfig())
    groups = blocking_group_indices(kernel.block, ["script"])
    return kernel, query, groups


def _serial_stream(kernel, query, groups):
    return [
        (firsts, seconds, bytes(observed))
        for firsts, seconds, observed in iter_evaluated_batches(
            kernel, query, groups, None, 0, workers=1, batch_size=8
        )
    ]


def _pooled_stream(pool, kernel, query, groups, workers=2):
    return [
        (firsts, seconds, bytes(observed))
        for firsts, seconds, observed in iter_evaluated_batches(
            kernel, query, groups, None, 0,
            workers=workers, batch_size=8, pool=pool,
        )
    ]


class TestShardToken:
    def test_same_kernel_same_token(self):
        kernel, _, _ = _kernel_and_groups(0)
        assert shard_token(kernel) == shard_token(kernel)

    def test_distinct_blocks_distinct_tokens(self):
        first, _, _ = _kernel_and_groups(0)
        second, _, _ = _kernel_and_groups(1)
        assert shard_token(first) != shard_token(second)

    def test_config_is_part_of_the_token(self):
        kernel, query, _ = _kernel_and_groups(0)
        log = random_log(0)
        schema = infer_schema(log.jobs)
        other = pair_kernel_for(
            log, query, schema, PairFeatureConfig(sim_threshold=0.42)
        )
        assert shard_token(kernel)[2] != shard_token(other)[2]


@fork_only
class TestShardPool:
    def test_pooled_stream_bit_identical_to_serial(self):
        kernel, query, groups = _kernel_and_groups(3)
        serial = _serial_stream(kernel, query, groups)
        assert serial, "the test log must produce related pairs"
        pool = ShardPool()
        try:
            assert _pooled_stream(pool, kernel, query, groups) == serial
        finally:
            pool.shutdown()

    def test_repeat_query_reuses_the_forked_workers(self):
        kernel, query, groups = _kernel_and_groups(3)
        pool = ShardPool()
        try:
            first = _pooled_stream(pool, kernel, query, groups)
            second = _pooled_stream(pool, kernel, query, groups)
            assert first == second
            stats = pool.stats()
            assert stats["forks"] == 1
            assert stats["reuses"] == 1
            assert stats["workers"] == 2
        finally:
            pool.shutdown()

    def test_new_kernel_triggers_a_refork(self):
        kernel_a, query, groups_a = _kernel_and_groups(3)
        kernel_b, _, groups_b = _kernel_and_groups(4)
        pool = ShardPool()
        try:
            _pooled_stream(pool, kernel_a, query, groups_a)
            assert _pooled_stream(pool, kernel_b, query, groups_b) == _serial_stream(
                kernel_b, query, groups_b
            )
            stats = pool.stats()
            assert stats["forks"] == 2
            assert stats["tokens"] == 2
            # ...and the first kernel is now served without a third fork.
            _pooled_stream(pool, kernel_a, query, groups_a)
            assert pool.stats()["forks"] == 2
        finally:
            pool.shutdown()

    def test_two_threads_shard_concurrently_on_one_pool(self):
        # The old module-global design serialised every sharded query on a
        # process-wide lock; the pool must let two generations overlap.
        kernel, query, groups = _kernel_and_groups(3)
        serial = _serial_stream(kernel, query, groups)
        pool = ShardPool()
        # Fork once up front so both threads reuse (no re-fork races the
        # barrier timing below).
        _pooled_stream(pool, kernel, query, groups)
        both_inside = threading.Barrier(2, timeout=30.0)
        results: dict[int, list] = {}
        errors: list[BaseException] = []

        def generation(slot: int) -> None:
            try:
                stream = iter_evaluated_batches(
                    kernel, query, groups, None, 0,
                    workers=2, batch_size=8, pool=pool,
                )
                collected = [next(stream)]  # prove the generation is live...
                both_inside.wait()  # ...while the other one is live too
                collected.extend(stream)
                results[slot] = [
                    (firsts, seconds, bytes(observed))
                    for firsts, seconds, observed in collected
                ]
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [
            threading.Thread(target=generation, args=(slot,)) for slot in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors
        assert results[0] == serial
        assert results[1] == serial
        stats = pool.stats()
        assert stats["max_concurrent_generations"] >= 2
        assert stats["forks"] == 1
        pool.shutdown()

    def test_shutdown_then_reuse_reforks(self):
        kernel, query, groups = _kernel_and_groups(3)
        serial = _serial_stream(kernel, query, groups)
        pool = ShardPool()
        _pooled_stream(pool, kernel, query, groups)
        pool.shutdown()
        assert pool.stats()["workers"] == 0
        assert pool.stats()["tokens"] == 0
        assert _pooled_stream(pool, kernel, query, groups) == serial
        assert pool.stats()["forks"] == 2
        pool.shutdown()

    def test_default_pool_is_shared_and_alive(self):
        assert default_shard_pool() is default_shard_pool()

    def test_worker_rejects_invalid_counts(self):
        kernel, query, groups = _kernel_and_groups(3)
        pool = ShardPool()
        with pytest.raises(ValueError, match="workers"):
            list(pool.run(kernel, query, iter([]), workers=0))


class TestSerialPathUnchanged:
    def test_workers_one_never_touches_a_pool(self):
        kernel, query, groups = _kernel_and_groups(5)
        stream = list(
            iter_evaluated_batches(kernel, query, groups, None, 0, workers=1)
        )
        rebuilt = []
        for firsts, seconds in _candidates(kernel, groups):
            result = evaluate_candidate_batch(kernel, query, firsts, seconds)
            if result[0]:
                rebuilt.append(result)
        assert [
            (f, s, bytes(o)) for f, s, o in stream
        ] == [(f, s, bytes(o)) for f, s, o in rebuilt]


def _candidates(kernel, groups):
    from repro.core.pairkernel import iter_candidate_batches

    return iter_candidate_batches(kernel.block, groups, None, 0)
