"""Tests for the PXQL language: AST, parser and query validation."""

import pytest

from repro.core.pxql.ast import Comparison, Operator, Predicate, TRUE_PREDICATE
from repro.core.pxql.parser import parse_predicate, parse_query
from repro.core.pxql.query import EntityKind, PXQLQuery
from repro.exceptions import PXQLSyntaxError, PXQLValidationError
from repro.units import MB


class TestOperator:
    def test_symbol_aliases(self):
        assert Operator.from_symbol("=") is Operator.EQ
        assert Operator.from_symbol("==") is Operator.EQ
        assert Operator.from_symbol("!=") is Operator.NE
        assert Operator.from_symbol("<>") is Operator.NE
        assert Operator.from_symbol("≤") is Operator.LE
        assert Operator.from_symbol("≥") is Operator.GE

    def test_unknown_symbol(self):
        with pytest.raises(ValueError):
            Operator.from_symbol("~~")


class TestComparisonEvaluation:
    def test_equality(self):
        atom = Comparison("x_isSame", Operator.EQ, "T")
        assert atom.evaluate({"x_isSame": "T"})
        assert not atom.evaluate({"x_isSame": "F"})

    def test_missing_value_never_satisfies(self):
        atom = Comparison("x", Operator.EQ, 1)
        assert not atom.evaluate({})
        assert not atom.evaluate({"x": None})
        negation = Comparison("x", Operator.NE, 1)
        assert not negation.evaluate({})

    def test_numeric_inequalities(self):
        atom = Comparison("blocksize", Operator.GE, 128 * MB)
        assert atom.evaluate({"blocksize": 256 * MB})
        assert not atom.evaluate({"blocksize": 64 * MB})

    def test_type_mismatch_is_false_not_error(self):
        atom = Comparison("x", Operator.LT, 10)
        assert not atom.evaluate({"x": "a string"})

    def test_str_rendering(self):
        atom = Comparison("inputsize_compare", Operator.EQ, "GT")
        assert str(atom) == "inputsize_compare = GT"


class TestPredicate:
    def test_empty_predicate_is_true(self):
        assert TRUE_PREDICATE.evaluate({})
        assert TRUE_PREDICATE.is_true
        assert TRUE_PREDICATE.width == 0

    def test_conjunction_requires_all_atoms(self):
        predicate = Predicate.of(
            Comparison("a", Operator.EQ, 1), Comparison("b", Operator.EQ, 2)
        )
        assert predicate.evaluate({"a": 1, "b": 2})
        assert not predicate.evaluate({"a": 1, "b": 3})
        assert predicate.width == 2

    def test_extended_appends_atom(self):
        predicate = TRUE_PREDICATE.extended(Comparison("a", Operator.EQ, 1))
        assert predicate.width == 1
        assert not predicate.is_true

    def test_and_then_concatenates(self):
        first = Predicate.of(Comparison("a", Operator.EQ, 1))
        second = Predicate.of(Comparison("b", Operator.EQ, 2))
        combined = first.and_then(second)
        assert combined.features() == ["a", "b"]

    def test_features_deduplicated(self):
        predicate = Predicate.of(
            Comparison("a", Operator.GE, 1), Comparison("a", Operator.LE, 5)
        )
        assert predicate.features() == ["a"]

    def test_str_uses_and(self):
        predicate = Predicate.of(
            Comparison("a", Operator.EQ, 1), Comparison("b", Operator.EQ, "x")
        )
        assert str(predicate) == "a = 1 AND b = x"
        assert str(TRUE_PREDICATE) == "TRUE"


class TestParsePredicate:
    def test_single_comparison(self):
        predicate = parse_predicate("duration_compare = SIM")
        assert predicate.width == 1
        assert predicate.atoms[0].value == "SIM"

    def test_conjunction_with_and(self):
        predicate = parse_predicate("a_isSame = T AND b_compare = GT")
        assert predicate.width == 2

    def test_conjunction_with_unicode_and(self):
        predicate = parse_predicate("a_isSame = T ∧ b_compare = GT")
        assert predicate.width == 2

    def test_size_literal(self):
        predicate = parse_predicate("blocksize >= 128MB")
        assert predicate.atoms[0].value == 128 * MB
        assert predicate.atoms[0].operator is Operator.GE

    def test_number_literals(self):
        predicate = parse_predicate("numinstances <= 12 AND factor = 1.5")
        assert predicate.atoms[0].value == 12
        assert isinstance(predicate.atoms[1].value, float)

    def test_quoted_string(self):
        predicate = parse_predicate("pig_script = 'simple-filter.pig'")
        assert predicate.atoms[0].value == "simple-filter.pig"

    def test_bare_identifier_value(self):
        predicate = parse_predicate("pig_script_diff = something")
        assert predicate.atoms[0].value == "something"

    def test_empty_string_is_true(self):
        assert parse_predicate("   ").is_true

    def test_case_insensitive_and(self):
        assert parse_predicate("a = 1 and b = 2").width == 2

    def test_syntax_error_reports_position(self):
        with pytest.raises(PXQLSyntaxError):
            parse_predicate("a = ")
        with pytest.raises(PXQLSyntaxError):
            parse_predicate("a = 1 garbage garbage")
        with pytest.raises(PXQLSyntaxError):
            parse_predicate("= 3")


class TestParseQuery:
    QUERY = """
        FOR JOBS 'job_1', 'job_2'
        DESPITE numinstances_isSame = T AND pig_script_isSame = T
        OBSERVED duration_compare = GT
        EXPECTED duration_compare = SIM
    """

    def test_full_query(self):
        query = parse_query(self.QUERY)
        assert query.entity is EntityKind.JOB
        assert query.first_id == "job_1"
        assert query.second_id == "job_2"
        assert query.despite.width == 2
        assert query.observed.width == 1
        assert query.expected.width == 1

    def test_task_query_with_placeholders(self):
        query = parse_query("""
            FOR TASKS ?, ?
            OBSERVED duration_compare = LT
            EXPECTED duration_compare = SIM
        """)
        assert query.entity is EntityKind.TASK
        assert not query.has_pair
        assert query.despite.is_true

    def test_clause_order_flexible(self):
        query = parse_query("""
            FOR JOBS 'a', 'b'
            EXPECTED duration_compare = SIM
            OBSERVED duration_compare = GT
        """)
        assert query.observed.atoms[0].value == "GT"

    def test_missing_observed_rejected(self):
        with pytest.raises(PXQLSyntaxError):
            parse_query("FOR JOBS 'a', 'b' EXPECTED duration_compare = SIM")

    def test_missing_expected_rejected(self):
        with pytest.raises(PXQLSyntaxError):
            parse_query("FOR JOBS 'a', 'b' OBSERVED duration_compare = SIM")

    def test_roundtrip_through_str(self):
        query = parse_query(self.QUERY)
        reparsed = parse_query(str(query))
        assert reparsed.despite == query.despite
        assert reparsed.observed == query.observed
        assert reparsed.expected == query.expected
        assert reparsed.first_id == query.first_id


class TestQueryValidation:
    def _query(self, **kwargs):
        defaults = dict(
            entity=EntityKind.JOB,
            observed=parse_predicate("duration_compare = GT"),
            expected=parse_predicate("duration_compare = SIM"),
        )
        defaults.update(kwargs)
        return PXQLQuery(**defaults)

    def test_empty_observed_rejected(self):
        with pytest.raises(PXQLValidationError):
            self._query(observed=TRUE_PREDICATE)

    def test_empty_expected_rejected(self):
        with pytest.raises(PXQLValidationError):
            self._query(expected=TRUE_PREDICATE)

    def test_contradiction_detected(self):
        assert self._query().observed_contradicts_expected()

    def test_non_contradicting_query_flagged(self):
        query = self._query(expected=parse_predicate("inputsize_compare = SIM"))
        assert not query.observed_contradicts_expected()
        assert query.validate()  # non-empty issue list
        with pytest.raises(PXQLValidationError):
            query.validate(strict=True)

    def test_validate_against_pair(self):
        query = self._query(despite=parse_predicate("numinstances_isSame = T"))
        good_pair = {"numinstances_isSame": "T", "duration_compare": "GT"}
        assert query.validate_against_pair(good_pair) == []
        bad_pair = {"numinstances_isSame": "F", "duration_compare": "SIM"}
        with pytest.raises(PXQLValidationError):
            query.validate_against_pair(bad_pair)
        issues = query.validate_against_pair(bad_pair, strict=False)
        assert len(issues) >= 2

    def test_with_pair_and_despite_helpers(self):
        query = self._query()
        bound = query.with_pair("j1", "j2")
        assert bound.has_pair
        stripped = bound.without_despite()
        assert stripped.despite.is_true
        extended = bound.with_despite(parse_predicate("blocksize_isSame = T"))
        assert extended.despite.width == 1

    def test_referenced_features(self):
        query = self._query(despite=parse_predicate("numinstances_isSame = T"))
        assert set(query.referenced_features()) == {"numinstances_isSame", "duration_compare"}
