"""Tests for the reporting helpers."""

import csv
import io
import json

import pytest

from repro.core.evaluation import RunMetrics, SweepResult
from repro.core.explanation import Explanation, ExplanationMetrics
from repro.core.pxql.parser import parse_predicate
from repro.core.reporting import (
    explanation_report,
    save_experiment_bundle,
    save_sweep_json,
    sweep_to_csv,
    sweep_to_dict,
    sweep_to_markdown,
)
from repro.logs.records import JobRecord


def make_sweep() -> SweepResult:
    sweep = SweepResult()
    for technique, precision in (("PerfXplain", 0.9), ("RuleOfThumb", 0.7)):
        for width in (1, 3):
            for repetition in range(2):
                metrics = ExplanationMetrics(
                    relevance=0.5, precision=precision + repetition * 0.02,
                    generality=0.4 - width * 0.05, support=100,
                )
                sweep.add(RunMetrics(technique, width, repetition, metrics))
    return sweep


class TestSweepExport:
    def test_dict_structure(self):
        summary = sweep_to_dict(make_sweep())
        assert set(summary) == {"PerfXplain", "RuleOfThumb"}
        assert set(summary["PerfXplain"]) == {"1", "3"}
        assert summary["PerfXplain"]["3"]["precision_mean"] == pytest.approx(0.91)

    def test_csv_rows(self):
        text = sweep_to_csv(make_sweep())
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 4
        assert {row["technique"] for row in rows} == {"PerfXplain", "RuleOfThumb"}
        assert float(rows[0]["precision_mean"]) > 0

    def test_markdown_table(self):
        table = sweep_to_markdown(make_sweep())
        assert table.startswith("| width |")
        assert "PerfXplain" in table
        assert "±" in table

    def test_json_file(self, tmp_path):
        path = save_sweep_json(make_sweep(), tmp_path / "out" / "sweep.json")
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded["RuleOfThumb"]["1"]["precision_mean"] == pytest.approx(0.71)

    def test_bundle_writes_both_formats(self, tmp_path):
        files = save_experiment_bundle({"fig3b": make_sweep()}, tmp_path / "bundle")
        suffixes = {path.suffix for path in files}
        assert suffixes == {".json", ".csv"}
        assert all(path.exists() for path in files)


class TestExplanationReport:
    def test_report_lists_raw_feature_values(self):
        explanation = Explanation(
            because=parse_predicate("blocksize_isSame = F"),
            despite=parse_predicate("numinstances_isSame = T"),
            technique="PerfXplain",
        )
        first = JobRecord("j1", {"blocksize": 67108864, "numinstances": 8}, 100.0)
        second = JobRecord("j2", {"blocksize": 268435456, "numinstances": 8}, 100.0)
        report = explanation_report(explanation, first, second)
        assert "BECAUSE blocksize_isSame = F" in report
        assert "blocksize" in report
        assert "67108864" in report and "268435456" in report

    def test_report_without_pair(self):
        explanation = Explanation(because=parse_predicate("blocksize_isSame = F"))
        report = explanation_report(explanation)
        assert "BECAUSE" in report

    def test_missing_values_marked(self):
        explanation = Explanation(because=parse_predicate("iosortfactor_isSame = T"))
        first = JobRecord("j1", {"iosortfactor": 10}, 1.0)
        second = JobRecord("j2", {"other": 1}, 1.0)
        report = explanation_report(explanation, first, second)
        assert "(missing)" in report
