"""Session cache coherence over a live, growing log.

:class:`~repro.core.api.PerfXplainSession` tracks the log's per-kind
mutation snapshot and, on append, drops only the cache entries whose
clause signature touches the grown kind — a task append must not evict
job-level work, and vice versa.  In-place mutation moves the kind's
epoch and wipes everything.  The acceptance bar: a warm session that
lived through appends answers bit-identically to a cold session over a
freshly-built log with the same records.
"""

import pytest

from repro.core.api import PerfXplainSession
from repro.core.pxql.ast import Comparison, Operator, Predicate
from repro.core.pxql.query import EntityKind, PXQLQuery
from repro.core.queries import why_slower_despite_same_num_instances
from repro.logs.records import JobRecord
from repro.logs.store import ExecutionLog
from repro.workloads.grid import build_experiment_log, tiny_grid


def same_job_task_query():
    """A task-level query lenient enough for truncated tiny-grid logs.

    The paper's WhyLastTaskFaster additionally pins same-host and
    similar-input atoms that a 10-job subset cannot always satisfy.
    """
    return PXQLQuery(
        entity=EntityKind.TASK,
        despite=Predicate.of(Comparison("job_id_isSame", Operator.EQ, "T")),
        observed=Predicate.of(Comparison("duration_compare", Operator.EQ, "GT")),
        expected=Predicate.of(Comparison("duration_compare", Operator.EQ, "SIM")),
        name="WhySameJobTaskSlower",
    )


@pytest.fixture(scope="module")
def full_log():
    """The complete 16-job tiny-grid log the growth tests split up."""
    return build_experiment_log(tiny_grid(), seed=11)


def split_log(full, num_jobs):
    """A log holding the first ``num_jobs`` jobs (tasks included), plus
    the held-back remainder as ``(jobs, tasks)`` batches to append."""
    head_ids = {job.job_id for job in full.jobs[:num_jobs]}
    log = ExecutionLog(
        jobs=full.jobs[:num_jobs],
        tasks=[task for task in full.tasks if task.job_id in head_ids],
    )
    tail_jobs = full.jobs[num_jobs:]
    tail_tasks = [task for task in full.tasks if task.job_id not in head_ids]
    return log, tail_jobs, tail_tasks


class TestAppendInvalidation:
    def test_task_append_preserves_job_caches(self, full_log):
        log, tail_jobs, tail_tasks = split_log(full_log, 12)
        session = PerfXplainSession(log, seed=3)
        job_matrix = session.training_matrix(why_slower_despite_same_num_instances())
        session.training_matrix(same_job_task_query())
        log.extend(tasks=tail_tasks[:3])
        # The next query syncs: only the task kind was touched.
        assert (
            session.training_matrix(why_slower_despite_same_num_instances())
            is job_matrix
        )
        assert session.invalidation_stats() == {
            "append_invalidations": 1,
            "full_invalidations": 0,
        }
        # The task-level matrix was dropped and rebuilt over the grown log.
        task_matrix = session.training_matrix(same_job_task_query())
        assert session.cache_stats()["matrices"].misses == 3

    def test_job_append_drops_job_caches(self, full_log):
        log, tail_jobs, _ = split_log(full_log, 12)
        session = PerfXplainSession(log, seed=3)
        job_query = why_slower_despite_same_num_instances()
        before = session.training_matrix(job_query)
        log.extend(jobs=tail_jobs)
        after = session.training_matrix(job_query)
        assert after is not before
        assert session.invalidation_stats()["append_invalidations"] == 1
        # New jobs are now candidates: the matrix saw the grown log.
        assert len(log.jobs) == 16

    def test_replace_moves_epoch_and_wipes_everything(self, full_log):
        log, _, _ = split_log(full_log, 12)
        session = PerfXplainSession(log, seed=3)
        job_query = why_slower_despite_same_num_instances()
        before = session.training_matrix(job_query)
        victim = log.jobs[0]
        log.replace_job(
            JobRecord(
                job_id=victim.job_id,
                features=dict(victim.features),
                duration=victim.duration * 2,
            )
        )
        after = session.training_matrix(job_query)
        assert after is not before
        assert session.invalidation_stats() == {
            "append_invalidations": 0,
            "full_invalidations": 1,
        }

    def test_unchanged_log_never_invalidates(self, full_log):
        log, _, _ = split_log(full_log, 12)
        session = PerfXplainSession(log, seed=3)
        query = why_slower_despite_same_num_instances()
        first = session.explain(query)
        second = session.explain(query)
        assert second is first  # explanation cache hit
        assert session.invalidation_stats() == {
            "append_invalidations": 0,
            "full_invalidations": 0,
        }


class TestWarmColdEquivalence:
    def test_warm_session_matches_cold_after_appends(self, full_log):
        log, tail_jobs, tail_tasks = split_log(full_log, 10)
        warm = PerfXplainSession(log, seed=3)
        job_query = why_slower_despite_same_num_instances()
        task_query = same_job_task_query()
        # Interleave queries with growth so every cache gets populated,
        # invalidated and repopulated at least once.
        warm.explain(job_query)
        warm.explain(task_query)
        log.extend(jobs=tail_jobs[:3], tasks=[
            task for task in tail_tasks
            if task.job_id in {job.job_id for job in tail_jobs[:3]}
        ])
        warm.explain(job_query)
        log.extend(jobs=tail_jobs[3:], tasks=[
            task for task in tail_tasks
            if task.job_id in {job.job_id for job in tail_jobs[3:]}
        ])
        warm_job = warm.explain(job_query)
        warm_task = warm.explain(task_query)
        warm_pair = warm.find_pair(job_query)

        cold_log = ExecutionLog(jobs=list(full_log.jobs), tasks=list(full_log.tasks))
        cold = PerfXplainSession(cold_log, seed=3)
        assert warm.find_pair(job_query) == cold.find_pair(job_query)
        assert warm_pair == cold.find_pair(job_query)
        assert warm_job.to_dict() == cold.explain(job_query).to_dict()
        assert warm_task.to_dict() == cold.explain(task_query).to_dict()

    def test_pair_features_refresh_after_append(self, full_log):
        log, tail_jobs, _ = split_log(full_log, 12)
        session = PerfXplainSession(log, seed=3)
        query = why_slower_despite_same_num_instances()
        resolved = session.resolve(query)
        session.pair_features(resolved)
        assert session.cache_stats()["pair_features"].size == 1
        log.extend(jobs=tail_jobs)
        session.resolve(query)  # sync point
        assert session.cache_stats()["pair_features"].size == 0
