"""Tests for the explainer registry, structured results and the batch session."""

import json

import pytest

from repro.core.api import PerfXplain, PerfXplainSession
from repro.core.explanation import Explanation, ExplanationMetrics
from repro.core.pxql.ast import Comparison, Operator, Predicate, TRUE_PREDICATE
from repro.core.pxql.query import BoundQuery
from repro.core.registry import (
    call_explainer,
    create_explainer,
    is_registered,
    register_explainer,
    registered_explainers,
    unregister_explainer,
)
from repro.core.report import Report, ReportEntry
from repro.exceptions import ExplanationError, PXQLValidationError
from repro.logs.store import ExecutionLog

JOB_QUERY_TEXT = """
    FOR JOBS ?, ?
    DESPITE numinstances_isSame = T AND pig_script_isSame = T
    OBSERVED duration_compare = GT
    EXPECTED duration_compare = SIM
"""


class _ConstantExplainer:
    """A minimal custom technique: always blames the blocksize."""

    name = "Constant"

    def explain(self, log, query, schema=None, width=None):
        because = Predicate.of(Comparison("blocksize_isSame", Operator.EQ, "F"))
        return Explanation(because=because, technique=self.name)


@pytest.fixture
def constant_technique():
    """Register the constant technique for one test, then clean up."""
    register_explainer("constant", _ConstantExplainer)
    yield "constant"
    unregister_explainer("constant")


class TestRegistry:
    def test_builtins_registered(self):
        names = registered_explainers()
        assert {"perfxplain", "ruleofthumb", "simbutdiff"} <= set(names)

    def test_create_builtin(self):
        explainer = create_explainer("perfxplain")
        assert explainer.name == "PerfXplain"

    def test_names_case_insensitive(self, constant_technique):
        assert is_registered("Constant")
        assert create_explainer("CONSTANT").name == "Constant"

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ExplanationError, match="perfxplain"):
            create_explainer("no-such-technique")

    def test_duplicate_rejected_without_override(self, constant_technique):
        with pytest.raises(ExplanationError, match="already registered"):
            register_explainer("constant", _ConstantExplainer)

    def test_override_replaces(self, constant_technique):
        class Other(_ConstantExplainer):
            name = "Other"

        register_explainer("constant", Other, override=True)
        assert create_explainer("constant").name == "Other"

    def test_unregister_unknown_is_noop(self):
        unregister_explainer("never-registered")

    def test_custom_explainer_through_facade(self, small_log, job_query, constant_technique):
        px = PerfXplain(small_log)
        explanation = px.explain(job_query, technique="constant")
        assert explanation.technique == "Constant"
        assert explanation.because.features() == ["blocksize_isSame"]
        assert "constant" in px.techniques()

    def test_auto_despite_rejected_for_minimal_explainer(
        self, small_log, job_query, constant_technique
    ):
        px = PerfXplain(small_log)
        with pytest.raises(ExplanationError, match="auto_despite"):
            px.explain(job_query, technique="constant", auto_despite=True)

    def test_call_explainer_drops_unsupported_examples(self, small_log, job_query):
        explanation = call_explainer(
            _ConstantExplainer(), small_log, job_query,
            schema=None, width=1, examples=["not", "used"],
        )
        assert explanation.technique == "Constant"


class TestStructuredResults:
    def _explanation(self):
        because = Predicate.of(
            Comparison("blocksize_compare", Operator.EQ, "GT"),
            Comparison("avg_cpu_idle_diff", Operator.LE, 0.25),
        )
        despite = Predicate.of(
            Comparison("numinstances_isSame", Operator.EQ, "T"),
            Comparison("inputsize", Operator.GE, 1 << 30),
        )
        metrics = ExplanationMetrics(
            relevance=0.4, precision=0.9, generality=0.25, support=321
        )
        return Explanation(
            because=because, despite=despite, technique="PerfXplain", metrics=metrics
        )

    def test_explanation_round_trip(self):
        explanation = self._explanation()
        rebuilt = Explanation.from_dict(explanation.to_dict())
        assert rebuilt == explanation
        assert rebuilt.because == explanation.because
        assert rebuilt.despite == explanation.despite
        assert rebuilt.metrics == explanation.metrics

    def test_explanation_json_round_trip(self):
        explanation = self._explanation()
        assert Explanation.from_json(explanation.to_json()) == explanation

    def test_predicates_serialize_symbolically(self):
        data = self._explanation().to_dict()
        assert data["because"][0] == {
            "feature": "blocksize_compare", "op": "=", "value": "GT",
        }
        assert data["because"][1]["op"] == "<="
        assert data["despite"][1]["value"] == 1 << 30  # int survives, not str()

    def test_empty_despite_and_missing_metrics(self):
        explanation = Explanation(
            because=Predicate.of(Comparison("a_isSame", Operator.EQ, "F"))
        )
        rebuilt = Explanation.from_dict(explanation.to_dict())
        assert rebuilt.despite is not None and rebuilt.despite.is_true
        assert rebuilt.metrics is None
        assert rebuilt == explanation

    def test_report_round_trip(self, tmp_path):
        report = Report()
        report.add(ReportEntry(
            query="FOR JOBS 'a', 'b'\nOBSERVED duration_compare = GT\n"
                  "EXPECTED duration_compare = SIM",
            first_id="a", second_id="b", explanation=self._explanation(),
        ))
        report.add(ReportEntry(query="FOR JOBS ?, ?", error="no such pair"))
        rebuilt = Report.from_json(report.to_json())
        assert rebuilt.to_dict() == report.to_dict()
        assert len(rebuilt) == 2
        assert rebuilt[0].ok and not rebuilt[1].ok
        assert len(rebuilt.explanations) == 1
        assert len(rebuilt.failures) == 1

        path = report.save(tmp_path / "report.json")
        assert Report.from_json(path.read_text(encoding="utf-8")).to_dict() == report.to_dict()

    def test_report_format_mentions_errors(self):
        report = Report(entries=[ReportEntry(query="FOR JOBS ?, ?", error="boom")])
        assert "boom" in report.format()

    def test_report_format_survives_empty_query_text(self):
        report = Report(entries=[ReportEntry(query="", error="empty")])
        rendered = report.format()
        assert "empty" in rendered
        assert "<empty query>" in rendered


class TestBoundQuery:
    def test_resolve_returns_bound_query(self, perfxplain):
        resolved = perfxplain.resolve(JOB_QUERY_TEXT)
        assert isinstance(resolved, BoundQuery)
        assert resolved.first_id and resolved.second_id

    def test_bound_raises_on_unbound(self, perfxplain):
        query = perfxplain.parse(JOB_QUERY_TEXT)
        with pytest.raises(PXQLValidationError):
            query.bound()

    def test_with_pair_returns_bound(self, perfxplain):
        query = perfxplain.parse(JOB_QUERY_TEXT).with_pair("j1", "j2")
        assert isinstance(query, BoundQuery)
        assert query.bound() is not None

    def test_bound_query_requires_ids(self, perfxplain):
        query = perfxplain.parse(JOB_QUERY_TEXT)
        with pytest.raises(PXQLValidationError):
            BoundQuery(
                entity=query.entity, observed=query.observed,
                expected=query.expected, despite=query.despite,
            )


class TestSession:
    def test_clause_signature_is_structural_not_rendered(self):
        from repro.core.pxql.query import EntityKind, PXQLQuery

        def query_with_value(value):
            return PXQLQuery(
                entity=EntityKind.JOB,
                despite=Predicate.of(Comparison("numinstances", Operator.EQ, value)),
                observed=Predicate.of(Comparison("duration_compare", Operator.EQ, "GT")),
                expected=Predicate.of(Comparison("duration_compare", Operator.EQ, "SIM")),
            )

        int_sig = PerfXplainSession._clause_signature(query_with_value(2))
        str_sig = PerfXplainSession._clause_signature(query_with_value("2"))
        assert int_sig != str_sig  # str(predicate) would render both as "= 2"
        assert int_sig == PerfXplainSession._clause_signature(query_with_value(2))

    def test_examples_cached_per_clause_signature(self, small_log, job_query):
        session = PerfXplainSession(small_log)
        first = session.training_examples(job_query)
        second = session.training_examples(JOB_QUERY_TEXT)
        assert first is second  # same clause signature -> one construction
        assert len(session._matrix_cache) == 1

    def test_find_pair_cached(self, small_log):
        session = PerfXplainSession(small_log)
        assert session.find_pair(JOB_QUERY_TEXT) == session.find_pair(JOB_QUERY_TEXT)
        assert len(session._pair_cache) == 1

    def test_pair_features_cached(self, small_log, job_query):
        session = PerfXplainSession(small_log)
        first = session.pair_features(job_query)
        second = session.pair_features(job_query)
        assert first is second
        assert first["numinstances_isSame"] == "T"

    def test_session_explanations_match_quality(self, small_log, job_query):
        session = PerfXplainSession(small_log)
        explanation = session.explain(job_query, width=2)
        assert explanation.width >= 1
        assert explanation.metrics is not None

    def test_explain_batch_returns_report(self, small_log):
        session = PerfXplainSession(small_log)
        report = session.explain_batch([JOB_QUERY_TEXT, JOB_QUERY_TEXT], width=2)
        assert len(report) == 2
        assert all(entry.ok for entry in report)
        assert len(session._matrix_cache) == 1
        parsed = json.loads(report.to_json())
        assert len(parsed["entries"]) == 2

    def test_explain_batch_collects_errors(self, small_log):
        bad = """
            FOR JOBS 'job_missing_1', 'job_missing_2'
            OBSERVED duration_compare = GT
            EXPECTED duration_compare = SIM
        """
        session = PerfXplainSession(small_log)
        report = session.explain_batch([JOB_QUERY_TEXT, bad], width=2)
        assert report[0].ok
        assert not report[1].ok
        assert report[1].error

    def test_explain_batch_raises_without_collect(self, small_log):
        bad = """
            FOR JOBS 'job_missing_1', 'job_missing_2'
            OBSERVED duration_compare = GT
            EXPECTED duration_compare = SIM
        """
        session = PerfXplainSession(small_log)
        with pytest.raises(ExplanationError):
            session.explain_batch([bad], collect_errors=False)

    def test_session_on_empty_log_reports_error(self):
        session = PerfXplainSession(ExecutionLog())
        report = session.explain_batch([JOB_QUERY_TEXT])
        assert len(report.failures) == 1

    def test_examples_not_built_for_techniques_that_ignore_them(
        self, small_log, job_query, constant_technique
    ):
        session = PerfXplainSession(small_log)
        session.explain(job_query, technique="constant")
        assert len(session._matrix_cache) == 0  # construction deferred and skipped


class TestSessionCacheBounds:
    """The session's caches are bounded LRUs with observable counters."""

    def test_cache_stats_names_every_cache(self, tiny_log):
        session = PerfXplainSession(tiny_log)
        stats = session.cache_stats()
        assert set(stats) == {
            "explanations",
            "matrices",
            "pairs",
            "pair_features",
            "record_blocks",
        }
        assert all(s.size == 0 for s in stats.values())

    def test_repeated_explain_hits_the_explanation_cache(self, tiny_log):
        session = PerfXplainSession(tiny_log)
        first = session.explain(JOB_QUERY_TEXT, width=2)
        second = session.explain(JOB_QUERY_TEXT, width=2)
        assert first is second
        stats = session.cache_stats()
        assert stats["explanations"].hits == 1
        assert stats["explanations"].misses == 1

    def test_capacity_none_is_unbounded(self, tiny_log):
        session = PerfXplainSession(tiny_log, cache_capacity=None)
        session.explain(JOB_QUERY_TEXT, width=2)
        assert session.cache_stats()["explanations"].capacity is None

    def test_eviction_only_costs_recomputation(self, tiny_log):
        bounded = PerfXplainSession(tiny_log, cache_capacity=1)
        reference = PerfXplainSession(tiny_log)
        widths = [1, 2, 3]
        first_round = [bounded.explain(JOB_QUERY_TEXT, width=w) for w in widths]
        # Capacity 1 means earlier widths were evicted; re-asking recomputes
        # the identical explanation (determinism is seed-derived, not cached).
        second_round = [bounded.explain(JOB_QUERY_TEXT, width=w) for w in widths]
        expected = [reference.explain(JOB_QUERY_TEXT, width=w) for w in widths]
        for recomputed, once, oracle in zip(second_round, first_round, expected):
            assert recomputed.to_dict() == once.to_dict() == oracle.to_dict()
        assert bounded.cache_stats()["explanations"].evictions >= 2

    def test_default_capacity_is_generous_but_finite(self, tiny_log):
        from repro.core.api import DEFAULT_CACHE_CAPACITY

        session = PerfXplainSession(tiny_log)
        assert session.cache_stats()["explanations"].capacity == DEFAULT_CACHE_CAPACITY
        assert DEFAULT_CACHE_CAPACITY >= 256


class TestReportEntrySelfDescription:
    """ReportEntry JSON carries technique/width/elapsed_ms (satellite)."""

    def _explanation(self):
        because = Predicate.of(Comparison("blocksize_compare", Operator.EQ, "GT"))
        return Explanation(because=because, technique="PerfXplain")

    def test_to_dict_carries_new_fields(self):
        entry = ReportEntry(
            query="FOR JOBS 'a', 'b'\nOBSERVED duration_compare = GT\n"
                  "EXPECTED duration_compare = SIM",
            first_id="a", second_id="b", explanation=self._explanation(),
            technique="PerfXplain", width=1, elapsed_ms=12.5,
        )
        payload = entry.to_dict()
        assert payload["technique"] == "PerfXplain"
        assert payload["width"] == 1
        assert payload["elapsed_ms"] == 12.5
        rebuilt = ReportEntry.from_dict(payload)
        assert rebuilt.to_dict() == payload

    def test_to_dict_derives_fields_from_explanation(self):
        entry = ReportEntry(query="FOR JOBS ?, ?", explanation=self._explanation())
        payload = entry.to_dict()
        assert payload["technique"] == "PerfXplain"
        assert payload["width"] == 1
        assert payload["elapsed_ms"] is None

    def test_from_dict_accepts_old_payloads(self):
        # A pre-1.2 payload: no technique/width/elapsed_ms keys at all.
        old = {
            "query": "FOR JOBS 'a', 'b'\nOBSERVED duration_compare = GT\n"
                     "EXPECTED duration_compare = SIM",
            "pair": ["a", "b"],
            "explanation": self._explanation().to_dict(),
            "error": None,
        }
        entry = ReportEntry.from_dict(old)
        assert entry.ok
        assert entry.technique == "PerfXplain"  # recovered from the explanation
        assert entry.width == 1
        assert entry.elapsed_ms is None

    def test_from_dict_accepts_old_error_payloads(self):
        old = {"query": "FOR JOBS ?, ?", "error": "no such pair"}
        entry = ReportEntry.from_dict(old)
        assert not entry.ok
        assert entry.technique is None and entry.width is None

    def test_batch_entries_record_elapsed_time(self, tiny_log):
        session = PerfXplainSession(tiny_log)
        report = session.explain_batch([JOB_QUERY_TEXT], width=2)
        entry = report[0]
        assert entry.ok
        assert entry.technique == "PerfXplain"
        assert entry.width is not None and entry.width >= 1
        assert entry.elapsed_ms is not None and entry.elapsed_ms > 0.0
