"""Boundary tests for batched candidate enumeration and CRC32 subsampling.

``iter_candidate_batches`` must flatten to the reference's exact candidate
sequence — every ordered pair of distinct records within each blocking
group, group order then row-major order — no matter where batch boundaries
or chunk edges fall, and no matter which ``max_candidate_pairs`` cap drives
the keep limit.  These tests pin that against a brute-force enumeration.
"""

from __future__ import annotations

import random

import pytest

from repro.core.examples import iter_related_pairs
from repro.core.features import FeatureKind, FeatureSchema, infer_schema
from repro.core.pairkernel import (
    CANDIDATE_BATCH,
    blocking_group_indices,
    iter_candidate_batches,
    keep_limit,
    pair_is_kept,
)
from repro.core.pairref import iter_related_pairs_reference
from repro.core.pxql.ast import Comparison, Operator, Predicate
from repro.core.pxql.query import EntityKind, PXQLQuery
from repro.logs.records import JobRecord
from repro.logs.store import ExecutionLog

#: Group sizes chosen to straddle every interesting boundary: singletons
#: (no pairs), a pair, and groups whose pair counts cross small batch sizes.
GROUP_SIZES = [1, 2, 3, 1, 5, 4, 1, 2]


def boundary_log():
    """A log whose ``bucket`` feature yields GROUP_SIZES-shaped groups."""
    log = ExecutionLog()
    counter = 0
    for bucket, size in enumerate(GROUP_SIZES):
        for _ in range(size):
            log.add_job(
                JobRecord(
                    job_id=f"job_{counter}",
                    features={"bucket": f"b{bucket}", "noise": counter % 3},
                    duration=1.0 + counter * 0.5,
                )
            )
            counter += 1
    return log


def boundary_schema():
    schema = FeatureSchema()
    schema.add("bucket", FeatureKind.NOMINAL)
    schema.add("noise", FeatureKind.NUMERIC)
    schema.add("duration", FeatureKind.NUMERIC)
    return schema


def reference_candidates(block, groups, salt=None, limit=0):
    """Brute-force twin of ``iter_candidate_batches``: one pair at a time."""
    ids = block.ids
    for group in groups:
        for row in group:
            for second in group:
                if second == row:
                    continue
                if salt is not None and not pair_is_kept(
                    ids[row], ids[second], salt, limit
                ):
                    continue
                yield row, second


def flatten(batches):
    pairs = []
    for firsts, seconds in batches:
        assert len(firsts) == len(seconds)
        pairs.extend(zip(firsts, seconds))
    return pairs


@pytest.fixture
def block_and_groups():
    log = boundary_log()
    block = log.record_block(boundary_schema(), kind="job")
    groups = blocking_group_indices(block, ["bucket"])
    assert [len(group) for group in groups] == GROUP_SIZES
    return block, groups


class TestBatchBoundaries:
    @pytest.mark.parametrize("batch_size", [1, 2, 3, 5, 64, CANDIDATE_BATCH])
    def test_flattened_sequence_invariant_under_batch_size(
        self, block_and_groups, batch_size
    ):
        block, groups = block_and_groups
        batches = list(
            iter_candidate_batches(block, groups, batch_size=batch_size)
        )
        assert flatten(batches) == list(reference_candidates(block, groups))
        # Every batch except the last respects the bound's flush rule: a
        # batch is emitted as soon as it reaches batch_size, so only the
        # final row's extension can overshoot within one group row.
        for firsts, _ in batches[:-1]:
            assert len(firsts) >= batch_size

    def test_no_self_pairs_and_no_cross_group_pairs(self, block_and_groups):
        block, groups = block_and_groups
        group_of = {
            row: index for index, group in enumerate(groups) for row in group
        }
        for row, second in flatten(iter_candidate_batches(block, groups)):
            assert row != second
            assert group_of[row] == group_of[second]

    def test_singleton_and_empty_groups_yield_nothing(self, block_and_groups):
        block, _ = block_and_groups
        assert list(iter_candidate_batches(block, [[0], [], [5]])) == []

    def test_chunked_block_enumerates_identically(self):
        log = boundary_log()
        schema = boundary_schema()
        plain_block = log.record_block(schema, kind="job")
        plain_groups = blocking_group_indices(plain_block, ["bucket"])
        log.configure_blocks(chunk_rows=4, max_resident_chunks=2)
        chunked_block = log.record_block(schema, kind="job")
        chunked_groups = blocking_group_indices(chunked_block, ["bucket"])
        assert chunked_groups == plain_groups
        for batch_size in (2, 7, CANDIDATE_BATCH):
            assert flatten(
                iter_candidate_batches(
                    chunked_block, chunked_groups, batch_size=batch_size
                )
            ) == flatten(
                iter_candidate_batches(
                    plain_block, plain_groups, batch_size=batch_size
                )
            )


class TestSubsamplingCaps:
    @pytest.mark.parametrize("cap", [1, 5, 13, 50, 10**9])
    @pytest.mark.parametrize("salt_seed", [0, 1, 2])
    def test_capped_enumeration_matches_pairwise_rule(
        self, block_and_groups, cap, salt_seed
    ):
        block, groups = block_and_groups
        total = sum(len(group) * (len(group) - 1) for group in groups)
        salt = random.Random(salt_seed).getrandbits(32)
        limit = keep_limit(cap, total)
        kept = flatten(
            iter_candidate_batches(block, groups, salt=salt, limit=limit,
                                   batch_size=3)
        )
        assert kept == list(
            reference_candidates(block, groups, salt=salt, limit=limit)
        )
        # The kept set is a sub-sequence of the uncapped enumeration.
        uncapped = list(reference_candidates(block, groups))
        iterator = iter(uncapped)
        assert all(pair in iterator for pair in kept)

    def test_huge_cap_keeps_everything(self, block_and_groups):
        block, groups = block_and_groups
        total = sum(len(group) * (len(group) - 1) for group in groups)
        limit = keep_limit(2**40, total)
        kept = flatten(
            iter_candidate_batches(block, groups, salt=7, limit=limit)
        )
        assert kept == list(reference_candidates(block, groups))

    def test_no_salt_means_no_subsampling(self, block_and_groups):
        block, groups = block_and_groups
        assert flatten(iter_candidate_batches(block, groups)) == list(
            reference_candidates(block, groups)
        )


class TestRelatedPairsUnderCaps:
    """End-to-end: kernel and dict reference agree for every cap."""

    @pytest.mark.parametrize(
        "max_candidate_pairs", [None, 1, 5, 50, 10**9]
    )
    def test_boundary_log_pairs_identical(self, max_candidate_pairs):
        log = boundary_log()
        schema = infer_schema(log.jobs)
        query = PXQLQuery(
            entity=EntityKind.JOB,
            despite=Predicate.of(Comparison("bucket_isSame", Operator.EQ, "T")),
            observed=Predicate.of(
                Comparison("duration_compare", Operator.EQ, "GT")
            ),
            expected=Predicate.of(
                Comparison("duration_compare", Operator.EQ, "SIM")
            ),
        )
        kernel = [
            (first.entity_id, second.entity_id, label)
            for first, second, label in iter_related_pairs(
                log, query, schema, max_candidate_pairs=max_candidate_pairs,
                rng=random.Random(11),
            )
        ]
        reference = [
            (first.entity_id, second.entity_id, label)
            for first, second, label in iter_related_pairs_reference(
                log, query, schema, max_candidate_pairs=max_candidate_pairs,
                rng=random.Random(11),
            )
        ]
        assert kernel == reference
        if max_candidate_pairs == 1:
            total = sum(size * (size - 1) for size in GROUP_SIZES)
            assert len(kernel) <= total
