"""Tests for explanations, metrics, training examples and sampling."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.examples import (
    Label,
    TrainingExample,
    construct_training_examples,
    find_record,
    iter_related_pairs,
    records_for_query,
)
from repro.core.explanation import (
    Explanation,
    ExplanationMetrics,
    evaluate_explanation,
    generality_of,
    precision_of,
    relevance_of,
)
from repro.core.pxql.ast import Comparison, Operator, Predicate, TRUE_PREDICATE
from repro.core.pxql.parser import parse_predicate
from repro.core.queries import why_last_task_faster, why_slower_despite_same_num_instances
from repro.core.sampling import balanced_sample, class_counts
from repro.exceptions import ExplanationError


def example(label: Label, **values) -> TrainingExample:
    return TrainingExample(first_id="a", second_id="b", values=values, label=label)


def synthetic_examples():
    """20 examples where `cause = yes` implies OBSERVED with precision 0.8."""
    examples = []
    for index in range(10):
        examples.append(example(Label.OBSERVED if index < 8 else Label.EXPECTED,
                                cause="yes", other=index))
    for index in range(10):
        examples.append(example(Label.EXPECTED if index < 9 else Label.OBSERVED,
                                cause="no", other=index))
    return examples


class TestExplanationObject:
    def test_applicability_requires_both_clauses(self):
        explanation = Explanation(
            because=parse_predicate("cause = yes"),
            despite=parse_predicate("context = here"),
        )
        assert explanation.is_applicable({"cause": "yes", "context": "here"})
        assert not explanation.is_applicable({"cause": "yes", "context": "elsewhere"})
        assert not explanation.is_applicable({"cause": "no", "context": "here"})

    def test_width_counts_because_atoms(self):
        explanation = Explanation(because=parse_predicate("a = 1 AND b = 2"))
        assert explanation.width == 2

    def test_format_mentions_clauses_and_metrics(self):
        explanation = Explanation(
            because=parse_predicate("cause = yes"),
            despite=parse_predicate("context = here"),
            metrics=ExplanationMetrics(relevance=0.9, precision=0.8, generality=0.4, support=10),
        )
        text = explanation.format()
        assert "DESPITE context = here" in text
        assert "BECAUSE cause = yes" in text
        assert "precision=0.80" in text

    def test_metrics_as_dict(self):
        metrics = ExplanationMetrics(0.1, 0.2, 0.3, 4)
        assert metrics.as_dict() == {
            "relevance": 0.1, "precision": 0.2, "generality": 0.3, "support": 4.0,
        }


class TestMetricEstimation:
    def test_precision_of_cause(self):
        examples = synthetic_examples()
        because = parse_predicate("cause = yes")
        assert precision_of(because, TRUE_PREDICATE, examples) == pytest.approx(0.8)

    def test_generality_of_cause(self):
        examples = synthetic_examples()
        because = parse_predicate("cause = yes")
        assert generality_of(because, TRUE_PREDICATE, examples) == pytest.approx(0.5)

    def test_relevance_counts_expected(self):
        examples = synthetic_examples()
        despite = parse_predicate("cause = no")
        assert relevance_of(despite, examples) == pytest.approx(0.9)

    def test_empty_match_gives_zero(self):
        examples = synthetic_examples()
        because = parse_predicate("cause = maybe")
        assert precision_of(because, TRUE_PREDICATE, examples) == 0.0
        assert generality_of(because, TRUE_PREDICATE, examples) == 0.0

    def test_evaluate_explanation_combines_all(self):
        examples = synthetic_examples()
        explanation = Explanation(because=parse_predicate("cause = yes"))
        metrics = evaluate_explanation(explanation, examples)
        assert metrics.precision == pytest.approx(0.8)
        assert metrics.generality == pytest.approx(0.5)
        assert metrics.support == 20

    def test_empty_because_precision_equals_base_rate(self):
        examples = synthetic_examples()
        explanation = Explanation(because=TRUE_PREDICATE)
        metrics = evaluate_explanation(explanation, examples)
        observed = sum(1 for ex in examples if ex.is_observed)
        assert metrics.precision == pytest.approx(observed / len(examples))
        assert metrics.generality == pytest.approx(1.0)


class TestBalancedSampling:
    def _items(self, observed, expected):
        return (
            [example(Label.OBSERVED, index=i) for i in range(observed)]
            + [example(Label.EXPECTED, index=i) for i in range(expected)]
        )

    def test_small_input_returned_unchanged(self):
        items = self._items(5, 5)
        assert balanced_sample(items, 100, random.Random(0)) == items

    def test_balances_skewed_classes(self):
        items = self._items(2000, 100)
        sampled = balanced_sample(items, 400, random.Random(1))
        counts = class_counts(sampled)
        # The minority class is kept whole (its target is not reached) and
        # the majority class is cut to exactly half the sample size; the
        # slack is never redistributed (the capped-probability expectation).
        assert counts[Label.EXPECTED] == 100
        assert counts[Label.OBSERVED] == 200

    def test_exact_sample_size_when_classes_large(self):
        items = self._items(5000, 5000)
        sampled = balanced_sample(items, 1000, random.Random(2))
        assert len(sampled) == 1000
        counts = class_counts(sampled)
        assert counts[Label.OBSERVED] == 500
        assert counts[Label.EXPECTED] == 500

    def test_odd_sample_size_gives_observed_the_remainder(self):
        items = self._items(500, 500)
        sampled = balanced_sample(items, 101, random.Random(3))
        counts = class_counts(sampled)
        assert counts[Label.OBSERVED] == 51
        assert counts[Label.EXPECTED] == 50

    def test_deterministic_for_a_seed_and_order_preserving(self):
        items = self._items(300, 300)
        first = balanced_sample(items, 100, random.Random(7))
        second = balanced_sample(items, 100, random.Random(7))
        assert first == second
        positions = [items.index(item) for item in first]
        assert positions == sorted(positions)

    def test_invalid_sample_size(self):
        with pytest.raises(ValueError):
            balanced_sample(self._items(1, 1), 0)

    @settings(max_examples=20, deadline=None)
    @given(observed=st.integers(0, 500), expected=st.integers(0, 500),
           seed=st.integers(0, 100))
    def test_sample_is_subset_with_both_classes_represented(self, observed, expected, seed):
        items = self._items(observed, expected)
        sampled = balanced_sample(items, 50, random.Random(seed))
        assert len(sampled) <= len(items)
        counts = class_counts(sampled)
        if observed > 0 and expected > 0 and len(items) > 50:
            # Balancing never drops an entire minority class of size >= 25.
            if min(observed, expected) >= 25:
                assert counts[Label.OBSERVED] > 0
                assert counts[Label.EXPECTED] > 0


class TestRelatedPairs:
    def test_records_for_query_selects_entity(self, small_log):
        job_query = why_slower_despite_same_num_instances()
        task_query = why_last_task_faster()
        assert records_for_query(small_log, job_query) == small_log.jobs
        assert records_for_query(small_log, task_query) == small_log.tasks

    def test_find_record_raises_for_unknown_id(self, small_log):
        query = why_slower_despite_same_num_instances("job_does_not_exist", "also_missing")
        with pytest.raises(ExplanationError):
            find_record(small_log, query, "job_does_not_exist")

    def test_related_pairs_satisfy_despite_and_labels(self, small_log, job_schema):
        query = why_slower_despite_same_num_instances()
        pairs = list(iter_related_pairs(small_log, query, job_schema))
        assert pairs, "expected at least one related pair in the small log"
        durations = {job.job_id: job.duration for job in small_log.jobs}
        for first, second, label in pairs[:200]:
            assert first.features["numinstances"] == second.features["numinstances"]
            assert first.features["pig_script"] == second.features["pig_script"]
            if label is Label.OBSERVED:
                assert durations[first.job_id] > durations[second.job_id]

    def test_unknown_query_feature_raises(self, small_log, job_schema):
        query = why_slower_despite_same_num_instances().with_despite(
            parse_predicate("nonexistent_isSame = T")
        )
        with pytest.raises(ExplanationError):
            list(iter_related_pairs(small_log, query, job_schema))

    def test_max_candidate_pairs_limits_enumeration(self, small_log, job_schema):
        query = why_slower_despite_same_num_instances()
        limited = list(
            iter_related_pairs(small_log, query, job_schema, max_candidate_pairs=200,
                               rng=random.Random(0))
        )
        full = list(iter_related_pairs(small_log, query, job_schema))
        assert len(limited) < len(full)

    def test_subsample_independent_of_record_order(self, small_log, job_schema):
        """Regression: the capped subset must not depend on enumeration order.

        Keep decisions hash the pair ids with a seed-derived salt instead of
        consuming a shared rng stream, so reordering the log's records (and
        therefore the blocking groups and candidate sequence) must keep the
        exact same subset.
        """
        query = why_slower_despite_same_num_instances()
        reordered_log = type(small_log)(
            jobs=list(reversed(small_log.jobs)), tasks=list(small_log.tasks)
        )

        def kept(log):
            return {
                (first.entity_id, second.entity_id, label)
                for first, second, label in iter_related_pairs(
                    log, query, job_schema, max_candidate_pairs=200,
                    rng=random.Random(0),
                )
            }

        original = kept(small_log)
        reordered = kept(reordered_log)
        assert original, "the cap should still keep a non-empty subset"
        assert original == reordered


class TestConstructTrainingExamples:
    def test_examples_have_full_vectors_and_labels(self, small_log, job_schema, job_query):
        examples = construct_training_examples(
            small_log, job_query, job_schema, sample_size=300, rng=random.Random(0)
        )
        assert examples
        assert {ex.label for ex in examples} == {Label.OBSERVED, Label.EXPECTED}
        sample = examples[0]
        assert "duration_compare" in sample.values
        assert "numinstances_isSame" in sample.values
        assert "blocksize" in sample.values

    def test_sample_size_respected(self, small_log, job_schema, job_query):
        examples = construct_training_examples(
            small_log, job_query, job_schema, sample_size=100, rng=random.Random(1)
        )
        unsampled = construct_training_examples(
            small_log, job_query, job_schema, sample_size=None, rng=random.Random(1)
        )
        assert len(examples) <= len(unsampled)

    def test_task_query_examples_blocked_by_job_and_host(self, small_log, task_schema, task_query):
        examples = construct_training_examples(
            small_log, task_query, task_schema, sample_size=200, rng=random.Random(2)
        )
        assert examples
        for ex in examples[:50]:
            first = small_log.find_task(ex.first_id)
            second = small_log.find_task(ex.second_id)
            assert first.job_id == second.job_id
            assert first.features["hostname"] == second.features["hostname"]
