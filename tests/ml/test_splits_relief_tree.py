"""Tests for predicate search, RReliefF and the decision tree."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.decision_tree import DecisionTree
from repro.ml.relief import relieff_importance
from repro.ml.splits import best_predicate_for_feature


class TestBestPredicateNominal:
    def test_picks_separating_value(self):
        values = ["a", "a", "a", "b", "b", "b"]
        labels = [True, True, True, False, False, False]
        predicate = best_predicate_for_feature("f", values, labels, numeric=False)
        assert predicate.operator == "=="
        assert predicate.value in {"a", "b"}
        assert predicate.gain == pytest.approx(1.0)

    def test_respects_required_value(self):
        values = ["a", "a", "b", "b", "c", "c"]
        labels = [True, True, False, False, True, False]
        predicate = best_predicate_for_feature(
            "f", values, labels, numeric=False, required_value="c"
        )
        assert predicate.value == "c"

    def test_missing_required_value_returns_none(self):
        predicate = best_predicate_for_feature(
            "f", ["a", "b"], [True, False], numeric=False, required_value=None
        )
        assert predicate is None

    def test_required_value_absent_from_examples(self):
        predicate = best_predicate_for_feature(
            "f", ["a", "b"], [True, False], numeric=False, required_value="z"
        )
        assert predicate is None

    def test_all_missing_values(self):
        predicate = best_predicate_for_feature(
            "f", [None, None, None], [True, False, True], numeric=False
        )
        assert predicate is None

    def test_constant_feature_has_no_predicate(self):
        predicate = best_predicate_for_feature(
            "f", ["a"] * 6, [True, False] * 3, numeric=False
        )
        assert predicate is None


class TestBestPredicateNumeric:
    def test_threshold_separates_classes(self):
        values = [1.0, 2.0, 3.0, 10.0, 11.0, 12.0]
        labels = [False, False, False, True, True, True]
        predicate = best_predicate_for_feature("f", values, labels, numeric=True)
        assert predicate.gain == pytest.approx(1.0)
        assert predicate.operator in {"<=", ">"}
        assert 3.0 < predicate.value < 10.0

    def test_required_value_selects_side(self):
        values = [1.0, 2.0, 3.0, 10.0, 11.0, 12.0]
        labels = [False, False, False, True, True, True]
        low = best_predicate_for_feature("f", values, labels, numeric=True, required_value=2.0)
        high = best_predicate_for_feature("f", values, labels, numeric=True, required_value=11.0)
        assert low.satisfied_by(2.0) and not low.satisfied_by(11.0)
        assert high.satisfied_by(11.0) and not high.satisfied_by(2.0)

    def test_missing_values_fall_outside(self):
        values = [1.0, None, 3.0, 10.0, None, 12.0]
        labels = [False, False, False, True, True, True]
        predicate = best_predicate_for_feature("f", values, labels, numeric=True,
                                               required_value=12.0)
        assert predicate is not None
        assert not predicate.satisfied_by(None)

    def test_equality_candidate_for_numeric(self):
        values = [5, 5, 5, 7, 8, 9]
        labels = [True, True, True, False, False, False]
        predicate = best_predicate_for_feature("f", values, labels, numeric=True,
                                               required_value=5)
        assert predicate.satisfied_by(5)
        assert predicate.gain == pytest.approx(1.0)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(min_value=-100, max_value=100), st.booleans()),
            min_size=2, max_size=60,
        )
    )
    def test_gain_nonnegative_and_predicate_nondegenerate(self, rows):
        values = [value for value, _ in rows]
        labels = [label for _, label in rows]
        predicate = best_predicate_for_feature("f", values, labels, numeric=True)
        if predicate is None:
            return
        assert predicate.gain >= 0.0
        inside = sum(1 for value in values if predicate.satisfied_by(value))
        assert 0 < inside < len(values)


class TestRelief:
    def _rows(self, n=60, seed=0):
        rng = random.Random(seed)
        rows, targets = [], []
        for _ in range(n):
            relevant = rng.uniform(0, 10)
            irrelevant = rng.uniform(0, 10)
            nominal = rng.choice(["x", "y"])
            rows.append({"relevant": relevant, "irrelevant": irrelevant, "nominal": nominal})
            targets.append(3.0 * relevant + rng.gauss(0, 0.5))
        return rows, targets

    def test_relevant_feature_ranked_above_irrelevant(self):
        rows, targets = self._rows()
        importance = relieff_importance(
            rows, targets, numeric={"relevant": True, "irrelevant": True, "nominal": False},
            rng=random.Random(1),
        )
        assert importance["relevant"] > importance["irrelevant"]
        assert importance["relevant"] > importance["nominal"]

    def test_handles_missing_values(self):
        rows, targets = self._rows(40)
        for index in range(0, 40, 5):
            rows[index] = dict(rows[index], relevant=None)
        importance = relieff_importance(
            rows, targets, numeric={"relevant": True, "irrelevant": True, "nominal": False},
            rng=random.Random(2),
        )
        assert set(importance) == {"relevant", "irrelevant", "nominal"}

    def test_too_few_rows_returns_zeros(self):
        importance = relieff_importance([{"a": 1}], [1.0], numeric={"a": True}, features=["a"])
        assert importance == {"a": 0.0}

    def test_mismatched_lengths_raise(self):
        with pytest.raises(Exception):
            relieff_importance([{"a": 1}], [1.0, 2.0], numeric={"a": True})

    def test_sample_size_limits_work(self):
        rows, targets = self._rows(50)
        importance = relieff_importance(
            rows, targets, numeric={"relevant": True, "irrelevant": True, "nominal": False},
            sample_size=10, rng=random.Random(3),
        )
        assert importance["relevant"] > importance["irrelevant"]


class TestDecisionTree:
    def _data(self, n=200, seed=0):
        rng = random.Random(seed)
        rows, labels = [], []
        for _ in range(n):
            x = rng.uniform(0, 1)
            color = rng.choice(["red", "blue"])
            rows.append({"x": x, "color": color})
            labels.append(x > 0.5 and color == "red")
        return rows, labels

    def test_learns_simple_concept(self):
        rows, labels = self._data()
        tree = DecisionTree(max_depth=3, min_samples_split=5).fit(
            rows, labels, numeric={"x": True, "color": False}
        )
        correct = sum(1 for row, label in zip(rows, labels) if tree.predict(row) == label)
        assert correct / len(rows) > 0.95

    def test_depth_respected(self):
        rows, labels = self._data()
        tree = DecisionTree(max_depth=2).fit(rows, labels, numeric={"x": True, "color": False})
        assert tree.depth() <= 2

    def test_pure_labels_give_single_leaf(self):
        rows = [{"x": float(i)} for i in range(20)]
        tree = DecisionTree().fit(rows, [True] * 20, numeric={"x": True})
        assert tree.depth() == 0
        assert tree.predict({"x": 3.0}) is True

    def test_predict_before_fit_raises(self):
        with pytest.raises(ValueError):
            DecisionTree().predict_proba({"x": 1.0})

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError):
            DecisionTree().fit([], [])

    def test_probability_in_unit_interval(self):
        rows, labels = self._data(100, seed=2)
        tree = DecisionTree(max_depth=4).fit(rows, labels, numeric={"x": True, "color": False})
        for row, _ in zip(rows, labels):
            assert 0.0 <= tree.predict_proba(row) <= 1.0
