"""Edge-case coverage for the columnar :class:`FeatureMatrix` encoding."""

from __future__ import annotations

import math

import pytest

from repro.ml.matrix import FeatureColumn, FeatureMatrix, search_column
from repro.ml.splits import best_predicate_for_feature


def _search_all(matrix: FeatureMatrix, feature: str, labels):
    view = matrix.view()
    return view.best_predicate(feature, bytearray(1 if l else 0 for l in labels))


class TestEncoding:
    def test_zero_rows(self):
        matrix = FeatureMatrix.from_rows([], numeric={"x": True}, features=["x"])
        assert matrix.n_rows == 0
        assert matrix.features == ("x",)
        column = matrix.column("x")
        assert len(column) == 0
        assert len(column.order) == 0
        assert _search_all(matrix, "x", []) is None

    def test_missing_values_have_no_code_and_no_order_slot(self):
        column = FeatureColumn.from_values("x", [None, 1.0, None, 2.0], True)
        assert list(column.codes) == [-1, 0, -1, 1]
        assert list(column.order) == [1, 3]
        assert column.numeric_ok[0] == 0 and column.numeric_ok[1] == 1

    def test_global_sort_is_stable_for_duplicates(self):
        column = FeatureColumn.from_values("x", [2.0, 1.0, 2.0, 1.0], True)
        assert list(column.order) == [1, 3, 0, 2]

    def test_equal_values_share_a_code_across_types(self):
        # Dict equality folds 1 and 1.0 into one bucket, exactly like the
        # row path's value counting did.
        column = FeatureColumn.from_values("x", [1, 1.0, 2], True)
        assert column.codes[0] == column.codes[1]
        assert column.codes[2] != column.codes[0]

    def test_nan_is_excluded_from_the_numeric_order(self):
        column = FeatureColumn.from_values("x", [1.0, float("nan"), 3.0], True)
        assert list(column.order) == [0, 2]
        assert column.numeric_ok[1] == 0

    def test_mismatched_column_lengths_rejected(self):
        with pytest.raises(ValueError):
            FeatureMatrix.from_columns(
                {"a": [1, 2], "b": [1, 2, 3]}, numeric={"a": True, "b": True}
            )


class TestDegenerateColumns:
    def test_all_missing_column_yields_no_predicate(self):
        matrix = FeatureMatrix.from_rows(
            [{"x": None}, {"x": None}, {"x": None}, {"x": None}],
            numeric={"x": True},
        )
        assert _search_all(matrix, "x", [True, False, True, False]) is None
        assert best_predicate_for_feature(
            "x", [None] * 4, [True, False, True, False], numeric=True
        ) is None

    def test_single_distinct_numeric_value_yields_no_predicate(self):
        # One distinct value: the equality partition is degenerate and
        # there is no midpoint for a threshold.
        matrix = FeatureMatrix.from_rows(
            [{"x": 5.0}] * 6, numeric={"x": True}
        )
        assert _search_all(matrix, "x", [True, False] * 3) is None

    def test_single_distinct_value_with_missing_rows_allows_equality(self):
        # With missing rows present the equality partition is no longer
        # degenerate (missing rows fall outside), mirroring the row path.
        values = [5.0, 5.0, 5.0, None, None, None]
        labels = [True, True, True, False, False, False]
        matrix = FeatureMatrix.from_rows(
            [{"x": value} for value in values], numeric={"x": True}
        )
        predicate = _search_all(matrix, "x", labels)
        assert predicate is not None
        assert (predicate.operator, predicate.value) == ("==", 5.0)
        assert predicate.gain == pytest.approx(1.0)


class TestBooleanGuard:
    def test_bools_never_become_thresholds(self):
        # Mirrors the ``isinstance(..., bool)`` guard in the split search:
        # a numeric column holding booleans yields equality candidates only.
        values = [True, True, False, False, True, False]
        labels = [True, True, False, False, True, False]
        matrix = FeatureMatrix.from_rows(
            [{"x": value} for value in values], numeric={"x": True}
        )
        column = matrix.column("x")
        assert len(column.order) == 0
        predicate = _search_all(matrix, "x", labels)
        assert predicate.operator == "=="
        assert predicate.value in (True, False)

    def test_bools_mixed_with_numbers_only_numbers_get_thresholds(self):
        values = [True, 1.5, 2.5, False, 3.5, 0.5]
        matrix = FeatureMatrix.from_rows(
            [{"x": value} for value in values], numeric={"x": True}
        )
        column = matrix.column("x")
        # Only the four genuine numbers participate in the sorted order.
        assert [values[i] for i in column.order] == [0.5, 1.5, 2.5, 3.5]


class TestViews:
    def test_narrowed_view_filters_order_stably(self):
        values = [4.0, 1.0, 3.0, 2.0, 5.0]
        matrix = FeatureMatrix.from_rows(
            [{"x": value} for value in values], numeric={"x": True}
        )
        view = matrix.view()
        assert list(view.order_for("x")) == [1, 3, 2, 0, 4]
        keep = bytearray([1, 0, 1, 0, 1])
        narrowed = view.narrow(keep)
        assert list(narrowed.indices) == [0, 2, 4]
        assert list(narrowed.order_for("x")) == [2, 0, 4]

    def test_split_partitions_indices_and_orders(self):
        values = [4.0, 1.0, 3.0, 2.0, 5.0]
        matrix = FeatureMatrix.from_rows(
            [{"x": value} for value in values], numeric={"x": True}
        )
        view = matrix.view()
        view.order_for("x")  # populate the cache so split carries it over
        left, right = view.split(bytearray([0, 1, 1, 0, 0]))
        assert list(left.indices) == [1, 2]
        assert list(right.indices) == [0, 3, 4]
        assert list(left.order_for("x")) == [1, 2]
        assert list(right.order_for("x")) == [3, 0, 4]

    def test_subset_view_computes_order_from_global_sort(self):
        values = [4.0, 1.0, None, 2.0, 5.0]
        matrix = FeatureMatrix.from_rows(
            [{"x": value} for value in values], numeric={"x": True}
        )
        view = matrix.view([4, 0, 3])
        assert list(view.order_for("x")) == [3, 0, 4]

    def test_search_column_subset_matches_row_adapter_on_subset(self):
        values = [1.0, 9.0, 2.0, 8.0, 3.0, 7.0]
        labels = [True, False, True, False, True, False]
        matrix = FeatureMatrix.from_rows(
            [{"x": value} for value in values], numeric={"x": True}
        )
        subset = [0, 1, 2, 3]
        view = matrix.view(subset)
        bits = bytearray(1 if l else 0 for l in labels)
        from_view = view.best_predicate("x", bits)
        from_rows = best_predicate_for_feature(
            "x", [values[i] for i in subset], [labels[i] for i in subset],
            numeric=True,
        )
        assert from_view == from_rows

    def test_search_column_ignores_rows_outside_the_subset(self):
        column = FeatureColumn.from_values("x", [1.0, 2.0, 3.0, 4.0], True)
        labels = bytearray([1, 1, 0, 0])
        full = search_column(column, range(4), column.order, labels)
        assert full is not None and math.isclose(full.gain, 1.0)
        # A pure subset still yields a candidate (like the row path), but
        # with zero gain and a constant drawn from the subset's values only.
        half = search_column(column, [0, 1], [0, 1], labels)
        assert half.gain == 0.0
        assert half.satisfied_by(1.0) or half.satisfied_by(2.0)
        assert not half.satisfied_by(4.0) or half.operator == "<="
