"""Regression tests for explicit, deterministic split tie-breaking.

Historically, when two features tied on gain the tree kept whichever came
first in ``sorted(features)`` only by accident of iteration, and within a
feature the winning constant depended on row order (equality candidates
were generated in first-occurrence order).  The policy is now explicit:

* across features: gain first (ties within ``GAIN_TIE_TOLERANCE``), then
  feature name, then operator rank (:func:`repro.ml.splits.prefer_candidate`);
* within a feature: candidates are offered in canonical order — equality
  constants sorted by :func:`repro.ml.splits.canonical_value_key`, then
  thresholds ascending with ``<=`` before ``>`` — and the first candidate
  within a gain tie wins.
"""

from __future__ import annotations

from repro.ml.decision_tree import DecisionTree
from repro.ml.splits import (
    CandidatePredicate,
    best_predicate_for_feature,
    prefer_candidate,
)


class TestPreferCandidate:
    def test_higher_gain_wins(self):
        strong = CandidatePredicate("zzz", "==", "x", 0.9)
        weak = CandidatePredicate("aaa", "==", "x", 0.4)
        assert prefer_candidate(strong, weak)
        assert not prefer_candidate(weak, strong)

    def test_gain_tie_broken_by_feature_name(self):
        first = CandidatePredicate("aaa", ">", 1.0, 0.5)
        second = CandidatePredicate("bbb", "==", "x", 0.5)
        assert prefer_candidate(first, second)
        assert not prefer_candidate(second, first)

    def test_sub_tolerance_gain_difference_is_a_tie(self):
        nearly = CandidatePredicate("bbb", "==", "x", 0.5 + 1e-13)
        incumbent = CandidatePredicate("aaa", "==", "x", 0.5)
        # "bbb" is microscopically better but loses the name tie-break.
        assert not prefer_candidate(nearly, incumbent)

    def test_same_feature_tie_broken_by_operator_rank(self):
        equality = CandidatePredicate("f", "==", 1.0, 0.5)
        threshold = CandidatePredicate("f", "<=", 1.5, 0.5)
        assert prefer_candidate(equality, threshold)
        assert not prefer_candidate(threshold, equality)


class TestTreeFeatureTieBreak:
    def _tied_rows(self, first: str, second: str):
        """Two features carrying identical, perfectly separating columns."""
        rows = []
        labels = []
        for index in range(20):
            value = "hot" if index < 10 else "cold"
            rows.append({first: value, second: value})
            labels.append(index < 10)
        return rows, labels

    def test_alphabetically_first_feature_wins_the_tie(self):
        rows, labels = self._tied_rows("alpha", "zeta")
        tree = DecisionTree(max_depth=2, min_samples_split=2).fit(
            rows, labels, numeric={}
        )
        assert tree.root.split.feature == "alpha"

    def test_winner_does_not_depend_on_insertion_order(self):
        rows, labels = self._tied_rows("zeta", "alpha")
        # Build rows whose dicts list "zeta" first; the winner must still be
        # the alphabetically first feature, not the first-inserted one.
        tree = DecisionTree(max_depth=2, min_samples_split=2).fit(
            rows, labels, numeric={}
        )
        assert tree.root.split.feature == "alpha"


class TestWithinFeatureTieBreak:
    def test_equality_preferred_over_threshold_on_tie(self):
        # Two distinct values, perfectly separating: "== 1.0" and the
        # threshold at 1.5 induce the same bipartition (gain 1.0 both).
        values = [1.0, 1.0, 2.0, 2.0]
        labels = [True, True, False, False]
        predicate = best_predicate_for_feature("f", values, labels, numeric=True)
        assert predicate.operator == "=="
        assert predicate.gain == 1.0

    def test_tied_equality_constant_is_canonical_not_first_seen(self):
        # "== a" and "== b" tie (complementary halves); the canonical
        # (sorted) constant must win regardless of which value row 0 holds.
        forward = best_predicate_for_feature(
            "f", ["a", "a", "b", "b"], [True, True, False, False], numeric=False
        )
        backward = best_predicate_for_feature(
            "f", ["b", "b", "a", "a"], [False, False, True, True], numeric=False
        )
        assert forward == backward
        assert forward.value == "a"

    def test_row_order_does_not_flip_threshold_ties(self):
        values = [1.0, 2.0, 3.0, 4.0]
        labels = [True, False, True, False]
        forward = best_predicate_for_feature("f", values, labels, numeric=True)
        reverse = best_predicate_for_feature(
            "f", values[::-1], labels[::-1], numeric=True
        )
        assert forward == reverse
