"""Differential suite: columnar pipeline vs the frozen row path.

The columnar training pipeline (:mod:`repro.ml.matrix`) must be a pure
re-layout of the row-oriented algorithm preserved in
:mod:`repro.ml.rowpath`: on any dataset, split search returns **identical**
best predicates (feature, operator, constant and bit-identical gain) and
tree fitting produces **identical** structures and ``predict_proba``
outputs.  This file checks that on ~50 randomized datasets mixing numeric
and nominal columns, missing values, duplicated values and constant
columns — the cases where an encoding bug would bite.
"""

from __future__ import annotations

import random

import pytest

from repro.ml.decision_tree import DecisionTree, DecisionTreeNode
from repro.ml.rowpath import RowPathDecisionTree, rowpath_best_predicate_for_feature
from repro.ml.splits import best_predicate_for_feature

#: Randomized dataset seeds exercised by every differential test.
DATASET_SEEDS = list(range(50))

#: Value pools chosen to force duplicates (small pools, many rows).
NUMERIC_POOL = [-3.0, -1.5, 0.0, 0.5, 0.5, 2.0, 2.0, 7.25, 11.0]
INTEGER_POOL = [0, 1, 1, 2, 5, 9]
NOMINAL_POOL = ["alpha", "beta", "gamma", "delta"]


def random_dataset(seed: int) -> tuple[list[dict], list[bool], dict[str, bool]]:
    """One randomized mixed-type dataset with adversarial columns.

    Columns cover: floats with duplicates, integers, nominals, a constant
    column, an all-missing column and a high-missing-rate numeric column.
    Labels are random with a seed-dependent skew (sometimes nearly pure).
    """
    rng = random.Random(seed)
    n = rng.randint(8, 90)
    positive_rate = rng.choice([0.1, 0.3, 0.5, 0.5, 0.7, 0.95])
    rows: list[dict] = []
    labels: list[bool] = []
    for _ in range(n):
        rows.append({
            "f_float": rng.choice(NUMERIC_POOL + [None]),
            "f_int": rng.choice(INTEGER_POOL + [None]),
            "f_nom": rng.choice(NOMINAL_POOL + [None]),
            "f_const": 42.0,
            "f_all_missing": None,
            "f_sparse": rng.choice([None, None, None, 1.5, 6.0]),
        })
        labels.append(rng.random() < positive_rate)
    numeric = {
        "f_float": True, "f_int": True, "f_nom": False,
        "f_const": True, "f_all_missing": True, "f_sparse": True,
    }
    return rows, labels, numeric


def tree_signature(node: DecisionTreeNode | None):
    """A comparable rendering of a fitted tree (splits and leaf posteriors)."""
    if node is None:
        return None
    if node.is_leaf:
        return ("leaf", node.prediction, node.probability)
    return (
        ("split", node.split.feature, node.split.operator, node.split.value,
         node.split.gain),
        tree_signature(node.left),
        tree_signature(node.right),
    )


class TestSplitSearchEquivalence:
    @pytest.mark.parametrize("seed", DATASET_SEEDS)
    def test_unconstrained_splits_identical(self, seed):
        rows, labels, numeric = random_dataset(seed)
        for feature, is_numeric in numeric.items():
            values = [row.get(feature) for row in rows]
            columnar = best_predicate_for_feature(
                feature, values, labels, numeric=is_numeric
            )
            rowpath = rowpath_best_predicate_for_feature(
                feature, values, labels, numeric=is_numeric
            )
            assert columnar == rowpath
            if columnar is not None:
                # Bit-identical gains, not just approximately equal.
                assert columnar.gain == rowpath.gain

    @pytest.mark.parametrize("seed", DATASET_SEEDS)
    def test_constrained_splits_identical(self, seed):
        rows, labels, numeric = random_dataset(seed)
        rng = random.Random(seed + 1000)
        for feature, is_numeric in numeric.items():
            values = [row.get(feature) for row in rows]
            present = [value for value in values if value is not None]
            required_options = [None, "never-present"]
            if present:
                required_options.append(rng.choice(present))
            for required in required_options:
                columnar = best_predicate_for_feature(
                    feature, values, labels, numeric=is_numeric,
                    required_value=required,
                )
                rowpath = rowpath_best_predicate_for_feature(
                    feature, values, labels, numeric=is_numeric,
                    required_value=required,
                )
                assert columnar == rowpath


class TestTreeEquivalence:
    @pytest.mark.parametrize("seed", DATASET_SEEDS)
    def test_trees_identical(self, seed):
        rows, labels, numeric = random_dataset(seed)
        params = dict(max_depth=5, min_samples_split=4, min_gain=1e-6)
        columnar = DecisionTree(**params).fit(rows, labels, numeric=numeric)
        rowpath = RowPathDecisionTree(**params).fit(rows, labels, numeric=numeric)
        assert tree_signature(columnar.root) == tree_signature(rowpath.root)

    @pytest.mark.parametrize("seed", DATASET_SEEDS[::5])
    def test_predict_proba_identical_on_unseen_rows(self, seed):
        rows, labels, numeric = random_dataset(seed)
        columnar = DecisionTree(max_depth=6, min_samples_split=2).fit(
            rows, labels, numeric=numeric
        )
        rowpath = RowPathDecisionTree(max_depth=6, min_samples_split=2).fit(
            rows, labels, numeric=numeric
        )
        probe_rng = random.Random(seed + 5000)
        probes = list(rows)
        for _ in range(40):
            probes.append({
                "f_float": probe_rng.uniform(-5, 13),
                "f_int": probe_rng.randint(-1, 10),
                "f_nom": probe_rng.choice(NOMINAL_POOL + ["unseen"]),
                "f_const": probe_rng.choice([42.0, 0.0]),
                "f_sparse": probe_rng.choice([None, 1.5, 3.0]),
            })
        for probe in probes:
            assert columnar.predict_proba(probe) == rowpath.predict_proba(probe)
            assert columnar.predict(probe) == rowpath.predict(probe)
