"""Property-based invariants of ``best_predicate_for_feature``.

Randomized (hypothesis-driven) checks of the contracts every caller relies
on, independent of the concrete dataset:

* information gain is non-negative and never exceeds the parent entropy;
* a ``required_value`` constraint is honoured — the returned predicate is
  always satisfied by the required value;
* missing values (``None``) never satisfy the returned predicate;
* the partition induced by the predicate is non-degenerate;
* the result is invariant under row permutation (the explicit canonical
  tie-breaking makes this hold even for tied gains).
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.ml.entropy import binary_entropy
from repro.ml.splits import best_predicate_for_feature

#: Small value pools force duplicate values (and therefore gain ties).
_numeric_values = st.one_of(
    st.none(),
    st.sampled_from([-2.0, 0.0, 0.5, 1.0, 1.0, 3.25, 9.0]),
    st.integers(min_value=-3, max_value=5),
    st.floats(min_value=-50, max_value=50, allow_nan=False),
)
_nominal_values = st.one_of(st.none(), st.sampled_from(["a", "b", "c", "d"]))


def _column(values_strategy):
    return st.lists(
        st.tuples(values_strategy, st.booleans()), min_size=2, max_size=60
    )


def _split(rows):
    values = [value for value, _ in rows]
    labels = [label for _, label in rows]
    return values, labels


@settings(max_examples=120, deadline=None)
@given(rows=_column(_numeric_values), numeric=st.booleans())
def test_gain_bounded_by_parent_entropy(rows, numeric):
    values, labels = _split(rows)
    predicate = best_predicate_for_feature("f", values, labels, numeric=numeric)
    if predicate is None:
        return
    parent = binary_entropy(sum(labels) / len(labels))
    assert 0.0 <= predicate.gain
    assert predicate.gain <= parent + 1e-9


@settings(max_examples=120, deadline=None)
@given(rows=_column(_numeric_values), numeric=st.booleans(), data=st.data())
def test_required_value_always_satisfied(rows, numeric, data):
    values, labels = _split(rows)
    present = [value for value in values if value is not None]
    if not present:
        return
    required = data.draw(st.sampled_from(present))
    predicate = best_predicate_for_feature(
        "f", values, labels, numeric=numeric, required_value=required
    )
    if predicate is None:
        return
    assert predicate.satisfied_by(required)


@settings(max_examples=120, deadline=None)
@given(rows=_column(st.one_of(_numeric_values, _nominal_values)),
       numeric=st.booleans())
def test_missing_never_satisfies_and_partition_nondegenerate(rows, numeric):
    values, labels = _split(rows)
    predicate = best_predicate_for_feature("f", values, labels, numeric=numeric)
    if predicate is None:
        return
    assert not predicate.satisfied_by(None)
    inside = sum(1 for value in values if predicate.satisfied_by(value))
    # The *counted* partition excludes rows the search could not place
    # (e.g. bools against thresholds), so bound both sides loosely but
    # strictly: something must be in, something must be out.
    assert 0 < inside < len(values)


@settings(max_examples=120, deadline=None)
@given(rows=_column(_numeric_values), numeric=st.booleans(),
       seed=st.integers(min_value=0, max_value=2**16))
def test_invariant_under_row_permutation(rows, numeric, seed):
    values, labels = _split(rows)
    baseline = best_predicate_for_feature("f", values, labels, numeric=numeric)

    paired = list(zip(values, labels))
    random.Random(seed).shuffle(paired)
    shuffled_values = [value for value, _ in paired]
    shuffled_labels = [label for _, label in paired]
    permuted = best_predicate_for_feature(
        "f", shuffled_values, shuffled_labels, numeric=numeric
    )

    assert baseline == permuted
    if baseline is not None:
        # Gains are computed from integer counts, so permutation must not
        # change even the last bit.
        assert baseline.gain == permuted.gain


@settings(max_examples=80, deadline=None)
@given(rows=_column(_nominal_values),
       seed=st.integers(min_value=0, max_value=2**16), data=st.data())
def test_constrained_invariant_under_row_permutation(rows, seed, data):
    values, labels = _split(rows)
    present = [value for value in values if value is not None]
    if not present:
        return
    required = data.draw(st.sampled_from(present))
    baseline = best_predicate_for_feature(
        "f", values, labels, numeric=False, required_value=required
    )
    paired = list(zip(values, labels))
    random.Random(seed).shuffle(paired)
    permuted = best_predicate_for_feature(
        "f", [v for v, _ in paired], [l for _, l in paired], numeric=False,
        required_value=required,
    )
    assert baseline == permuted
