"""Tests for entropy, information gain and percentile-rank normalisation."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.ml.entropy import binary_entropy, entropy, information_gain
from repro.ml.ranking import percentile_ranks


class TestBinaryEntropy:
    def test_pure_distributions_are_zero(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0

    def test_uniform_is_one_bit(self):
        assert binary_entropy(0.5) == pytest.approx(1.0)

    def test_paper_example_value(self):
        # Section 4.2 example: p = 0.6 gives entropy ~0.97.
        assert binary_entropy(0.6) == pytest.approx(0.971, abs=0.001)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_bounded_and_symmetric(self, p):
        value = binary_entropy(p)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(binary_entropy(1.0 - p), abs=1e-9)


class TestEntropy:
    def test_empty_is_zero(self):
        assert entropy([]) == 0.0

    def test_single_class_is_zero(self):
        assert entropy(["a"] * 10) == 0.0

    def test_two_equal_classes_is_one_bit(self):
        assert entropy(["a", "b"] * 5) == pytest.approx(1.0)

    def test_four_equal_classes_is_two_bits(self):
        assert entropy(["a", "b", "c", "d"] * 3) == pytest.approx(2.0)

    def test_matches_binary_entropy(self):
        labels = [True] * 3 + [False] * 7
        assert entropy(labels) == pytest.approx(binary_entropy(0.3))


class TestInformationGain:
    def test_perfect_split_recovers_full_entropy(self):
        labels = [True] * 5 + [False] * 5
        satisfies = [True] * 5 + [False] * 5
        assert information_gain(labels, satisfies) == pytest.approx(1.0)

    def test_useless_split_is_zero(self):
        labels = [True, False] * 4
        satisfies = [True, False, False, True, True, False, False, True]
        gain = information_gain(labels, satisfies)
        assert gain == pytest.approx(0.0, abs=1e-9)

    def test_degenerate_partition_is_zero(self):
        labels = [True, False, True]
        assert information_gain(labels, [True, True, True]) == 0.0
        assert information_gain(labels, [False, False, False]) == 0.0

    def test_paper_figure2_example(self):
        # Figure 2: 6 positives and 4 negatives (entropy 0.97); predicate A
        # separates them almost perfectly and has gain ~0.87.
        labels = [True] * 6 + [False] * 4
        predicate_a = [True] * 6 + [False] * 4
        assert information_gain(labels, predicate_a) == pytest.approx(0.971, abs=0.001)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            information_gain([True], [True, False])

    @given(st.lists(st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=60))
    def test_gain_bounded_by_parent_entropy(self, pairs):
        labels = [label for label, _ in pairs]
        satisfies = [flag for _, flag in pairs]
        gain = information_gain(labels, satisfies)
        parent = entropy(labels)
        assert -1e-9 <= gain <= parent + 1e-9


class TestPercentileRanks:
    def test_empty(self):
        assert percentile_ranks([]) == []

    def test_single_value(self):
        assert percentile_ranks([0.3]) == [1.0]

    def test_ordering_preserved(self):
        ranks = percentile_ranks([0.2, 0.9, 0.5])
        assert ranks[1] > ranks[2] > ranks[0]

    def test_ties_get_equal_rank(self):
        ranks = percentile_ranks([0.5, 0.5, 0.1])
        assert ranks[0] == ranks[1]
        assert ranks[0] > ranks[2]

    def test_max_rank_is_one(self):
        assert max(percentile_ranks([3.0, 1.0, 2.0])) == pytest.approx(1.0)

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=50))
    def test_ranks_in_unit_interval_and_monotone(self, values):
        ranks = percentile_ranks(values)
        assert all(0.0 < rank <= 1.0 for rank in ranks)
        for i in range(len(values)):
            for j in range(len(values)):
                if values[i] < values[j]:
                    assert ranks[i] < ranks[j] + 1e-12
                if values[i] == values[j]:
                    assert ranks[i] == pytest.approx(ranks[j])
