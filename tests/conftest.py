"""Shared fixtures: small execution logs built once per test session."""

from __future__ import annotations

import random

import pytest

from repro.cluster.config import MapReduceConfig
from repro.core.api import PerfXplain
from repro.core.features import infer_schema
from repro.core.queries import (
    find_pair_of_interest,
    why_last_task_faster,
    why_slower_despite_same_num_instances,
)
from repro.logs.store import ExecutionLog
from repro.units import MB
from repro.workloads.excite import excite_dataset
from repro.workloads.grid import build_experiment_log, small_grid, tiny_grid
from repro.workloads.pig import SIMPLE_FILTER, SIMPLE_GROUPBY
from repro.workloads.runner import run_workload


@pytest.fixture(scope="session")
def tiny_log() -> ExecutionLog:
    """A 16-job log (with tasks) built from the tiny grid."""
    return build_experiment_log(tiny_grid(), seed=11)


@pytest.fixture(scope="session")
def small_log() -> ExecutionLog:
    """A 128-job log (with tasks) built from the small grid."""
    return build_experiment_log(small_grid(), seed=7)


@pytest.fixture(scope="session")
def job_schema(small_log):
    """Inferred raw-feature schema over the small log's jobs."""
    return infer_schema(small_log.jobs)


@pytest.fixture(scope="session")
def task_schema(small_log):
    """Inferred raw-feature schema over the small log's tasks."""
    return infer_schema(small_log.tasks)


@pytest.fixture(scope="session")
def job_query(small_log, job_schema):
    """WhySlowerDespiteSameNumInstances bound to a pair from the small log."""
    query = why_slower_despite_same_num_instances()
    pair = find_pair_of_interest(small_log, query, schema=job_schema,
                                 rng=random.Random(0))
    return query.with_pair(*pair)


@pytest.fixture(scope="session")
def task_query(small_log, task_schema):
    """WhyLastTaskFaster bound to a pair from the small log."""
    query = why_last_task_faster()
    pair = find_pair_of_interest(small_log, query, schema=task_schema,
                                 rng=random.Random(0))
    return query.with_pair(*pair)


@pytest.fixture(scope="session")
def perfxplain(small_log) -> PerfXplain:
    """A PerfXplain facade over the small log."""
    return PerfXplain(small_log, seed=3)


@pytest.fixture(scope="session")
def single_run():
    """One simulated filter job on four instances (records + simulation)."""
    config = MapReduceConfig(dfs_block_size=64 * MB, num_reduce_tasks=2)
    return run_workload(
        SIMPLE_FILTER, excite_dataset(6), config, num_instances=4, seed=5,
        job_sequence=900, reduce_tasks_factor=1.0,
    )


@pytest.fixture(scope="session")
def groupby_run():
    """One simulated group-by job on two instances."""
    config = MapReduceConfig(dfs_block_size=64 * MB, num_reduce_tasks=3)
    return run_workload(
        SIMPLE_GROUPBY, excite_dataset(6), config, num_instances=2, seed=9,
        job_sequence=901, reduce_tasks_factor=1.5,
    )
