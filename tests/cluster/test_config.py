"""Tests for repro.cluster.config."""

import pytest

from repro.cluster.config import HADOOP_PROPERTY_MAP, MapReduceConfig
from repro.exceptions import ConfigurationError
from repro.units import MB


class TestDefaults:
    def test_default_block_size(self):
        assert MapReduceConfig().dfs_block_size == 128 * MB

    def test_default_slots_match_paper(self):
        config = MapReduceConfig()
        assert config.map_slots_per_instance == 2
        assert config.reduce_slots_per_instance == 2


class TestValidation:
    def test_negative_block_size(self):
        with pytest.raises(ConfigurationError):
            MapReduceConfig(dfs_block_size=0)

    def test_negative_reducers(self):
        with pytest.raises(ConfigurationError):
            MapReduceConfig(num_reduce_tasks=-1)

    def test_io_sort_factor_minimum(self):
        with pytest.raises(ConfigurationError):
            MapReduceConfig(io_sort_factor=1)

    def test_slowstart_range(self):
        with pytest.raises(ConfigurationError):
            MapReduceConfig(reduce_slowstart=1.5)

    def test_zero_map_slots(self):
        with pytest.raises(ConfigurationError):
            MapReduceConfig(map_slots_per_instance=0)


class TestOverrides:
    def test_with_overrides_returns_new_object(self):
        base = MapReduceConfig()
        changed = base.with_overrides(num_reduce_tasks=7)
        assert changed.num_reduce_tasks == 7
        assert base.num_reduce_tasks == 1

    def test_with_overrides_validates(self):
        with pytest.raises(ConfigurationError):
            MapReduceConfig().with_overrides(dfs_block_size=-5)


class TestHadoopProperties:
    def test_roundtrip(self):
        config = MapReduceConfig(
            dfs_block_size=256 * MB, num_reduce_tasks=12, io_sort_factor=50,
            speculative_execution=True,
        )
        rebuilt = MapReduceConfig.from_hadoop_properties(config.to_hadoop_properties())
        assert rebuilt == config

    def test_all_mapped_properties_present(self):
        properties = MapReduceConfig().to_hadoop_properties()
        assert set(properties) == set(HADOOP_PROPERTY_MAP)

    def test_unknown_properties_ignored(self):
        config = MapReduceConfig.from_hadoop_properties(
            {"mapred.unknown.thing": "42", "dfs.block.size": str(64 * MB)}
        )
        assert config.dfs_block_size == 64 * MB

    def test_size_string_parsed(self):
        config = MapReduceConfig.from_hadoop_properties({"dfs.block.size": "64 MB"})
        assert config.dfs_block_size == 64 * MB

    def test_boolean_parsing(self):
        config = MapReduceConfig.from_hadoop_properties(
            {"mapred.map.tasks.speculative.execution": "true"}
        )
        assert config.speculative_execution is True
