"""Tests for repro.cluster.hdfs."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.hdfs import Dataset, num_blocks, split_dataset
from repro.exceptions import ConfigurationError
from repro.units import MB


def make_dataset(size_bytes: int, num_records: int = 1000) -> Dataset:
    return Dataset(name="data.log", size_bytes=size_bytes, num_records=num_records)


class TestDataset:
    def test_avg_record_bytes(self):
        dataset = make_dataset(1000, 10)
        assert dataset.avg_record_bytes == 100

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            make_dataset(0)

    def test_invalid_records(self):
        with pytest.raises(ConfigurationError):
            Dataset(name="x", size_bytes=10, num_records=0)


class TestNumBlocks:
    def test_exact_multiple(self):
        assert num_blocks(make_dataset(128 * MB), 64 * MB) == 2

    def test_remainder_adds_block(self):
        assert num_blocks(make_dataset(130 * MB), 64 * MB) == 3

    def test_smaller_than_block(self):
        assert num_blocks(make_dataset(10 * MB), 64 * MB) == 1

    def test_paper_motivating_example(self):
        # 32 GB at 128 MB blocks -> 256 map tasks; 1 GB -> 8 map tasks.
        assert num_blocks(make_dataset(32 * 1024 * MB), 128 * MB) == 256
        assert num_blocks(make_dataset(1024 * MB), 128 * MB) == 8

    def test_invalid_block_size(self):
        with pytest.raises(ConfigurationError):
            num_blocks(make_dataset(MB), 0)


class TestSplitDataset:
    def test_split_count_matches_num_blocks(self):
        dataset = make_dataset(300 * MB, 3000)
        splits = split_dataset(dataset, 64 * MB)
        assert len(splits) == num_blocks(dataset, 64 * MB)

    def test_split_lengths_sum_to_size(self):
        dataset = make_dataset(300 * MB, 3000)
        splits = split_dataset(dataset, 64 * MB)
        assert sum(split.length for split in splits) == dataset.size_bytes

    def test_split_records_sum_to_total(self):
        dataset = make_dataset(300 * MB, 3001)
        splits = split_dataset(dataset, 64 * MB)
        assert sum(split.num_records for split in splits) == dataset.num_records

    def test_only_last_split_is_partial(self):
        dataset = make_dataset(130 * MB, 1300)
        splits = split_dataset(dataset, 64 * MB)
        assert [split.length for split in splits[:-1]] == [64 * MB, 64 * MB]
        assert splits[-1].length == 2 * MB

    def test_offsets_are_contiguous(self):
        dataset = make_dataset(200 * MB, 2000)
        splits = split_dataset(dataset, 64 * MB)
        expected_offset = 0
        for split in splits:
            assert split.offset == expected_offset
            expected_offset += split.length

    @given(
        size=st.integers(min_value=1, max_value=40 * 1024 * MB),
        records=st.integers(min_value=1, max_value=10_000_000),
        block=st.sampled_from([64 * MB, 128 * MB, 256 * MB, 1024 * MB]),
    )
    def test_invariants_hold_for_any_dataset(self, size, records, block):
        dataset = make_dataset(size, records)
        splits = split_dataset(dataset, block)
        assert sum(s.length for s in splits) == size
        assert sum(s.num_records for s in splits) == records
        assert all(s.length <= block for s in splits)
        assert all(s.num_records >= 0 for s in splits)
