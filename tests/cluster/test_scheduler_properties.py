"""Hypothesis property suite for :class:`SlotScheduler` wave invariants.

The scheduler is driven in *lockstep*: every scheduling round assigns as
many tasks as free slots allow, then all running tasks complete at once
(uniform task durations).  Under that model the paper's wave structure is
exact, so three invariants must hold on every randomized configuration:

* the number of map waves equals ``ceil(num_maps / total map slots)``;
* reduce tasks are held back until the slowstart fraction of maps has
  completed (and with slowstart 1.0, until every map has completed);
* whenever the map count does not divide the slot capacity, the final wave
  is partial — some instance runs strictly fewer co-located map tasks than
  its slot count, which is exactly the lighter-loaded machine the
  WhyLastTaskFaster query probes.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.cluster import ClusterSpec
from repro.cluster.config import MapReduceConfig
from repro.cluster.scheduler import SlotScheduler
from repro.cluster.tasks import Phase, PhaseKind, TaskAttempt, TaskType
from repro.exceptions import SimulationError


def make_attempts(count: int, task_type: TaskType) -> list[TaskAttempt]:
    suffix = "m" if task_type is TaskType.MAP else "r"
    return [
        TaskAttempt(
            task_id=f"task_prop_{suffix}_{index:04d}",
            task_type=task_type,
            phases=[Phase("work", 1.0, PhaseKind.CPU)],
        )
        for index in range(count)
    ]


def run_lockstep(num_instances, map_slots, reduce_slots, num_maps, num_reduces,
                 slowstart):
    """Drive the scheduler with lockstep completions; return assignments.

    Returns ``(map_assignments, reduce_assignments, violations)`` where
    ``violations`` collects any slowstart breach observed while running.
    """
    cluster = ClusterSpec(
        num_instances=num_instances, speed_jitter=0.0, background_model=None,
    ).provision(random.Random(0))
    config = MapReduceConfig(
        num_reduce_tasks=max(1, num_reduces),
        map_slots_per_instance=map_slots,
        reduce_slots_per_instance=reduce_slots,
        reduce_slowstart=slowstart,
    )
    maps = make_attempts(num_maps, TaskType.MAP)
    reduces = make_attempts(num_reduces, TaskType.REDUCE)
    scheduler = SlotScheduler(cluster, config, maps, reduces)

    map_assignments = []
    reduce_assignments = []
    violations = []
    rounds = 0
    while scheduler.has_pending():
        rounds += 1
        assert rounds <= 2 * (num_maps + num_reduces) + 2, "scheduler stalled"
        batch = scheduler.next_assignments()
        assert batch, "work pending but nothing schedulable"
        for assignment in batch:
            if assignment.attempt.task_type is TaskType.REDUCE:
                needed = slowstart * num_maps
                if scheduler.completed_maps < needed:
                    violations.append(
                        (scheduler.completed_maps, needed)
                    )
                reduce_assignments.append(assignment)
            else:
                map_assignments.append(assignment)
        # Lockstep: everything assigned this round completes together.
        for assignment in batch:
            scheduler.release(assignment.instance, assignment.attempt,
                              completed=True)
    return map_assignments, reduce_assignments, violations


configurations = st.tuples(
    st.integers(min_value=1, max_value=5),    # num_instances
    st.integers(min_value=1, max_value=3),    # map slots
    st.integers(min_value=1, max_value=3),    # reduce slots
    st.integers(min_value=0, max_value=40),   # num maps
    st.integers(min_value=0, max_value=10),   # num reduces
    st.sampled_from([0.0, 0.25, 0.5, 1.0]),   # slowstart
)


class TestWaveInvariants:
    @settings(max_examples=120, deadline=None)
    @given(configurations)
    def test_every_task_assigned_exactly_once(self, configuration):
        num_instances, map_slots, reduce_slots, num_maps, num_reduces, slow = configuration
        maps, reduces, _ = run_lockstep(*configuration)
        assert len(maps) == num_maps
        assert len(reduces) == num_reduces
        assert len({a.attempt.task_id for a in maps + reduces}) == num_maps + num_reduces

    @settings(max_examples=120, deadline=None)
    @given(configurations)
    def test_map_wave_count_is_ceiling_of_tasks_over_slots(self, configuration):
        num_instances, map_slots, _, num_maps, _, _ = configuration
        maps, _, _ = run_lockstep(*configuration)
        if num_maps == 0:
            assert maps == []
            return
        total_slots = num_instances * map_slots
        observed_waves = max(a.wave for a in maps) + 1
        assert observed_waves == -(-num_maps // total_slots)

    @settings(max_examples=120, deadline=None)
    @given(configurations)
    def test_slowstart_holds_reduces_back(self, configuration):
        *_, violations = run_lockstep(*configuration)
        assert violations == []

    @settings(max_examples=60, deadline=None)
    @given(configurations.filter(lambda c: c[3] > 0 and c[4] > 0))
    def test_full_slowstart_serialises_reduces_after_maps(self, configuration):
        num_instances, map_slots, reduce_slots, num_maps, num_reduces, _ = configuration
        configuration = (num_instances, map_slots, reduce_slots, num_maps,
                         num_reduces, 1.0)
        maps, reduces, violations = run_lockstep(*configuration)
        assert violations == []
        # In lockstep rounds, slot_order is assignment order: with full
        # slowstart every reduce is assigned after every map.
        last_map_order = max(a.slot_order for a in maps)
        first_reduce_order = min(a.slot_order for a in reduces)
        assert first_reduce_order > last_map_order

    @settings(max_examples=120, deadline=None)
    @given(configurations.filter(lambda c: c[3] > 0))
    def test_final_wave_partial_when_capacity_not_divided(self, configuration):
        num_instances, map_slots, _, num_maps, _, _ = configuration
        maps, _, _ = run_lockstep(*configuration)
        per_instance: dict[int, list] = {}
        for assignment in maps:
            per_instance.setdefault(assignment.instance.index, []).append(assignment)
        for assignments in per_instance.values():
            final_wave = max(a.wave for a in assignments)
            final_size = sum(1 for a in assignments if a.wave == final_wave)
            assert final_size <= map_slots
            # Within one instance, waves before the final are full.
            for wave in range(final_wave):
                size = sum(1 for a in assignments if a.wave == wave)
                assert size == map_slots
        if num_maps % (num_instances * map_slots) != 0:
            # The WhyLastTaskFaster precondition: during the global final
            # wave some machine runs strictly fewer co-located map tasks
            # than its slot count (possibly zero — an idle instance).
            global_final = max(a.wave for a in maps)
            final_sizes = [
                sum(1 for a in assignments if a.wave == global_final)
                for assignments in per_instance.values()
            ]
            final_sizes.extend([0] * (num_instances - len(per_instance)))
            assert min(final_sizes) < map_slots, (
                "a non-dividing map count must leave some instance lighter "
                "during the final wave"
            )


class TestReleaseSafety:
    def test_release_without_use_raises(self):
        cluster = ClusterSpec(num_instances=1, speed_jitter=0.0,
                              background_model=None).provision(random.Random(0))
        config = MapReduceConfig(num_reduce_tasks=1)
        [attempt] = make_attempts(1, TaskType.MAP)
        scheduler = SlotScheduler(cluster, config, [attempt], [])
        with pytest.raises(SimulationError):
            scheduler.release(cluster[0], attempt, completed=True)
