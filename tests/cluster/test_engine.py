"""Tests for the discrete-event simulation engine."""

import random

import pytest

from repro.cluster.background import BackgroundLoadProfile
from repro.cluster.cluster import ClusterSpec
from repro.cluster.config import MapReduceConfig
from repro.cluster.engine import SimulationEngine
from repro.cluster.faults import FaultModel
from repro.cluster.jobs import JobSpec
from repro.cluster.tasks import Phase, PhaseKind, TaskAttempt, TaskType


def quiet_cluster(num_instances=2, seed=0):
    return ClusterSpec(
        num_instances=num_instances, speed_jitter=0.0, background_model=None,
        background_procs=0.0,
    ).provision(random.Random(seed))


def make_map(task_id: str, seconds: float = 10.0) -> TaskAttempt:
    return TaskAttempt(
        task_id=task_id, task_type=TaskType.MAP,
        phases=[Phase("map", seconds, PhaseKind.CPU)],
    )


def make_reduce(task_id: str, seconds: float = 5.0) -> TaskAttempt:
    return TaskAttempt(
        task_id=task_id, task_type=TaskType.REDUCE,
        phases=[Phase("reduce", seconds, PhaseKind.CPU)],
    )


def make_job(num_maps: int, num_reduces: int = 0, seconds: float = 10.0,
             config: MapReduceConfig | None = None) -> JobSpec:
    return JobSpec(
        job_id="job_test_0001",
        name="test-job",
        map_tasks=[make_map(f"task_test_0001_m_{i:06d}", seconds) for i in range(num_maps)],
        reduce_tasks=[make_reduce(f"task_test_0001_r_{i:06d}") for i in range(num_reduces)],
        config=config if config is not None else MapReduceConfig(num_reduce_tasks=max(1, num_reduces)),
    )


class TestBasicExecution:
    def test_all_tasks_complete(self):
        engine = SimulationEngine(quiet_cluster(), jitter=0.0)
        result = engine.run(make_job(num_maps=6, num_reduces=2))
        assert len(result.tasks) == 8
        assert len(result.map_tasks()) == 6
        assert len(result.reduce_tasks()) == 2

    def test_job_duration_spans_all_tasks(self):
        engine = SimulationEngine(quiet_cluster(), jitter=0.0)
        result = engine.run(make_job(num_maps=4))
        last_finish = max(task.finish_time for task in result.tasks)
        assert result.job.finish_time == pytest.approx(last_finish)
        assert result.job.duration > 0

    def test_single_task_uncontended_duration_close_to_nominal(self):
        engine = SimulationEngine(quiet_cluster(num_instances=1), jitter=0.0)
        result = engine.run(make_job(num_maps=1, seconds=10.0))
        [task] = result.tasks
        assert task.duration == pytest.approx(10.0, rel=0.01)

    def test_reducers_start_after_maps_finish(self):
        engine = SimulationEngine(quiet_cluster(), jitter=0.0)
        result = engine.run(make_job(num_maps=4, num_reduces=2))
        last_map_finish = max(t.finish_time for t in result.map_tasks())
        first_reduce_start = min(t.start_time for t in result.reduce_tasks())
        assert first_reduce_start >= last_map_finish - 1e-6

    def test_counters_propagate_to_job(self):
        job = make_job(num_maps=2)
        for index, task in enumerate(job.map_tasks):
            task.counters.input_bytes = 100 * (index + 1)
        engine = SimulationEngine(quiet_cluster(), jitter=0.0)
        result = engine.run(job)
        assert result.job.counters["input_bytes"] == 300


class TestWavesAndContention:
    def test_waves_extend_job_duration(self):
        # 2 instances x 2 slots = 4 concurrent maps: 8 maps of 10s each need
        # two waves, so the job takes roughly twice as long as 4 maps.
        engine = SimulationEngine(quiet_cluster(), jitter=0.0)
        one_wave = engine.run(make_job(num_maps=4, seconds=10.0)).job.duration
        two_waves = engine.run(make_job(num_maps=8, seconds=10.0)).job.duration
        assert two_waves > 1.7 * one_wave

    def test_co_located_tasks_slower_than_lone_task(self):
        # Two tasks on a 2-core node contend (memory bandwidth, daemons),
        # so each runs slower than a task that has the node to itself.
        engine = SimulationEngine(quiet_cluster(num_instances=1), jitter=0.0)
        lone = engine.run(make_job(num_maps=1, seconds=20.0)).tasks[0].duration
        pair = engine.run(make_job(num_maps=2, seconds=20.0)).tasks
        assert all(task.duration > lone * 1.05 for task in pair)

    def test_adding_instances_shortens_job(self):
        job = make_job(num_maps=8, seconds=10.0)
        small = SimulationEngine(quiet_cluster(num_instances=1), jitter=0.0).run(job)
        large = SimulationEngine(quiet_cluster(num_instances=4), jitter=0.0).run(job)
        assert large.job.duration < small.job.duration

    def test_background_load_slows_tasks(self):
        cluster_quiet = quiet_cluster(num_instances=1)
        cluster_busy = quiet_cluster(num_instances=1)
        cluster_busy[0].load_profile = BackgroundLoadProfile(
            times=[0.0, 1e9], loads=[1.5], extra_procs=[3]
        )
        quiet_run = SimulationEngine(cluster_quiet, jitter=0.0).run(make_job(2, seconds=20.0))
        busy_run = SimulationEngine(cluster_busy, jitter=0.0).run(make_job(2, seconds=20.0))
        assert busy_run.job.duration > quiet_run.job.duration * 1.15

    def test_trace_records_running_tasks(self):
        engine = SimulationEngine(quiet_cluster(num_instances=1), jitter=0.0)
        result = engine.run(make_job(num_maps=2, seconds=10.0))
        intervals = result.trace.for_instance(0)
        assert intervals, "expected utilization intervals for the busy instance"
        assert max(interval.running_maps for interval in intervals) == 2

    def test_deterministic_given_seed(self):
        job = make_job(num_maps=5, num_reduces=1)
        first = SimulationEngine(quiet_cluster(), rng=random.Random(4)).run(job)
        second = SimulationEngine(quiet_cluster(), rng=random.Random(4)).run(job)
        assert first.job.duration == pytest.approx(second.job.duration)
        for a, b in zip(first.tasks, second.tasks):
            assert a.duration == pytest.approx(b.duration)


class TestFaults:
    def test_slow_node_degrades_cluster(self):
        cluster = quiet_cluster(num_instances=4)
        model = FaultModel(slow_node_probability=1.0, slow_node_factor=0.5)
        degraded = model.degrade_cluster(cluster, random.Random(0))
        assert degraded == [0, 1, 2, 3]
        assert all(instance.speed_factor == pytest.approx(0.5) for instance in cluster)

    def test_task_failure_adds_retry_time(self):
        job = make_job(num_maps=2, seconds=20.0)
        clean = SimulationEngine(quiet_cluster(num_instances=1), jitter=0.0).run(job)
        failing_engine = SimulationEngine(
            quiet_cluster(num_instances=1),
            fault_model=FaultModel(task_failure_probability=1.0),
            rng=random.Random(1),
            jitter=0.0,
        )
        failed = failing_engine.run(job)
        assert failed.job.duration > clean.job.duration
        assert any(task.attempts > 1 for task in failed.tasks)
        assert len(failed.tasks) == len(clean.tasks)

    def test_failure_draw_respects_probability_zero(self):
        model = FaultModel(task_failure_probability=0.0)
        assert model.draw_failure(random.Random(0)) is None

    def test_fault_model_validation(self):
        with pytest.raises(Exception):
            FaultModel(slow_node_probability=1.5)
