"""Differential suite: event-core engine vs the frozen reference loop.

The event-core engine (:mod:`repro.cluster.engine`) must be a pure
re-organisation of the reference processor-sharing loop preserved in
:mod:`repro.cluster.engineref`: same rates, same steps, same records.  This
file runs both engines over randomized clusters (sizes, instance types,
speed jitter, background-load models), randomized jobs (phase mixes
including zero-length phases, map/reduce counts, slot configurations,
slowstart fractions) and randomized fault models, and asserts the results
are **bit-identical** — job executions, task executions (including
per-attempt phase wall timings and retry counts) and the full utilization
trace, compared with exact float equality via dataclass ``==``.

Both engines consume one shared random stream per run (provisioning,
degradation, phase jitter, failure draws), so each side gets its own
identically-seeded generators and an identically-provisioned cluster.
"""

from __future__ import annotations

import random

import pytest

from repro.cluster.background import BackgroundLoadModel
from repro.cluster.cluster import ClusterSpec
from repro.cluster.config import MapReduceConfig
from repro.cluster.engine import SimulationEngine
from repro.cluster.engineref import ReferenceSimulationEngine
from repro.cluster.faults import NO_FAULTS, FaultModel
from repro.cluster.jobs import JobSpec, make_task_id
from repro.cluster.tasks import Phase, PhaseKind, TaskAttempt, TaskType

#: Randomized configurations exercised by every differential test (the
#: acceptance bar asks for at least 40).
SEEDS = list(range(44))

_PHASE_KINDS = [
    ("setup", PhaseKind.OVERHEAD),
    ("read", PhaseKind.DISK),
    ("map", PhaseKind.CPU),
    ("sort", PhaseKind.CPU),
    ("spill", PhaseKind.DISK),
    ("shuffle", PhaseKind.NETWORK),
    ("reduce", PhaseKind.CPU),
    ("write", PhaseKind.DISK),
]

_INSTANCE_TYPES = ["m1.small", "m1.large", "m1.xlarge", "c1.medium"]


def random_attempt(rng: random.Random, job_id: str, task_type: TaskType,
                   index: int) -> TaskAttempt:
    phases = []
    for _ in range(rng.randint(1, 4)):
        name, kind = rng.choice(_PHASE_KINDS)
        seconds = rng.choice([0.0, 0.05, 0.5, 2.0, 8.0, 30.0]) * rng.uniform(0.5, 1.5)
        phases.append(Phase(name, seconds, kind))
    if all(phase.nominal_seconds == 0.0 for phase in phases):
        phases.append(Phase("map", 1.0, PhaseKind.CPU))
    return TaskAttempt(
        task_id=make_task_id(job_id, task_type, index),
        task_type=task_type,
        phases=phases,
    )


def random_scenario(seed: int):
    """One randomized (cluster spec, job spec, fault model, jitter) tuple."""
    rng = random.Random(seed * 7919 + 11)
    background = rng.choice([
        None,
        BackgroundLoadModel(),
        BackgroundLoadModel(busy_probability=0.8, busy_load_mean=2.0,
                            episode_seconds_mean=20.0),
        BackgroundLoadModel(quiet_load=0.0, busy_probability=0.0),
    ])
    spec = ClusterSpec(
        num_instances=rng.randint(1, 6),
        instance_type=rng.choice(_INSTANCE_TYPES),
        speed_jitter=rng.choice([0.0, 0.05, 0.2]),
        background_procs=rng.choice([0.0, 0.25, 1.0]),
        background_model=background,
    )
    job_id = f"job_diff_{seed:04d}"
    num_maps = rng.randint(1, 14)
    num_reduces = rng.randint(0, 6)
    config = MapReduceConfig(
        num_reduce_tasks=max(1, num_reduces),
        map_slots_per_instance=rng.randint(1, 3),
        reduce_slots_per_instance=rng.randint(1, 3),
        reduce_slowstart=rng.choice([0.0, 0.5, 1.0]),
    )
    job = JobSpec(
        job_id=job_id,
        name="differential",
        map_tasks=[random_attempt(rng, job_id, TaskType.MAP, i) for i in range(num_maps)],
        reduce_tasks=[random_attempt(rng, job_id, TaskType.REDUCE, i)
                      for i in range(num_reduces)],
        config=config,
        submit_time=rng.choice([0.0, 120.5]),
    )
    faults = rng.choice([
        NO_FAULTS,
        FaultModel(slow_node_probability=0.5, slow_node_factor=0.5),
        FaultModel(task_failure_probability=0.4),
        FaultModel(slow_node_probability=0.3, slow_node_factor=0.7,
                   task_failure_probability=0.3),
    ])
    jitter = rng.choice([0.0, 0.03, 0.1])
    return spec, job, faults, jitter


def run_engine(engine_cls, seed: int):
    spec, job, faults, jitter = random_scenario(seed)
    rng = random.Random(seed)
    cluster = spec.provision(rng)
    faults.degrade_cluster(cluster, rng)
    engine = engine_cls(cluster, fault_model=faults, rng=rng, jitter=jitter)
    return engine.run(job)


class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_results_bit_identical(self, seed):
        reference = run_engine(ReferenceSimulationEngine, seed)
        event = run_engine(SimulationEngine, seed)

        # Job execution: exact dataclass equality (floats compared with ==).
        assert event.job == reference.job

        # Task executions: ids, placement, waves, retry counts, counters and
        # per-attempt phase wall timings, all bit-identical and in order.
        assert len(event.tasks) == len(reference.tasks)
        for event_task, reference_task in zip(event.tasks, reference.tasks):
            assert event_task == reference_task

        # Utilization traces: every interval of every instance.
        assert event.trace.instances() == reference.trace.instances()
        for index in reference.trace.instances():
            assert event.trace.for_instance(index) == reference.trace.for_instance(index)

    @pytest.mark.parametrize("seed", SEEDS[:8])
    def test_phase_timings_cover_durations(self, seed):
        # Sanity on the comparison itself: wall phase timings are non-trivial
        # (the differential is not vacuously comparing empty dicts).
        result = run_engine(SimulationEngine, seed)
        assert result.tasks
        for task in result.tasks:
            assert task.phase_wall_seconds
            total = sum(task.phase_wall_seconds.values())
            assert total > 0.0
