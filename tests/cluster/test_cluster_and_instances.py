"""Tests for provisioning, instances, clusters and background load."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.cluster.background import BackgroundLoadModel, BackgroundLoadProfile
from repro.cluster.cluster import Cluster, ClusterSpec
from repro.cluster.instance import Instance
from repro.cluster.provisioning import INSTANCE_TYPES, get_instance_type
from repro.exceptions import ConfigurationError


class TestInstanceTypes:
    def test_default_catalogue_has_m1_large(self):
        assert "m1.large" in INSTANCE_TYPES

    def test_m1_large_has_two_cores(self):
        # The paper's machines run two concurrent map tasks on two cores.
        assert INSTANCE_TYPES["m1.large"].cores == 2

    def test_lookup_unknown_type(self):
        with pytest.raises(ConfigurationError):
            get_instance_type("z9.colossal")


class TestInstance:
    def test_hostname_is_unique_per_index(self):
        first = Instance(index=0)
        second = Instance(index=1)
        assert first.hostname != second.hostname

    def test_tracker_name_contains_hostname(self):
        instance = Instance(index=3)
        assert instance.hostname in instance.tracker_name

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigurationError):
            Instance(index=-1)

    def test_background_without_profile_is_constant(self):
        instance = Instance(index=0, background_procs=0.4)
        assert instance.background_at(0.0) == 0.4
        assert instance.background_at(1e6) == 0.4
        assert instance.next_background_change(0.0) == float("inf")

    def test_background_with_profile(self):
        profile = BackgroundLoadProfile(times=[0.0, 100.0, 200.0],
                                        loads=[0.2, 1.5], extra_procs=[0, 4])
        instance = Instance(index=0, load_profile=profile)
        assert instance.background_at(50.0) == 0.2
        assert instance.background_at(150.0) == 1.5
        assert instance.extra_procs_at(150.0) == 4
        assert instance.next_background_change(50.0) == 100.0


class TestBackgroundLoadProfile:
    def test_lookup_before_start_uses_first_episode(self):
        profile = BackgroundLoadProfile(times=[0.0, 10.0], loads=[0.3], extra_procs=[0])
        assert profile.load_at(-5.0) == 0.3

    def test_lookup_after_horizon_uses_last_episode(self):
        profile = BackgroundLoadProfile(times=[0.0, 10.0, 20.0],
                                        loads=[0.3, 0.9], extra_procs=[0, 2])
        assert profile.load_at(1e9) == 0.9

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            BackgroundLoadProfile(times=[0.0, 1.0], loads=[0.1, 0.2], extra_procs=[0, 0])

    def test_generated_profile_covers_horizon(self):
        model = BackgroundLoadModel(horizon_seconds=1000.0)
        profile = model.generate(random.Random(1))
        assert profile.times[-1] >= 1000.0
        assert all(load >= 0 for load in profile.loads)

    def test_constant_profile_has_single_episode(self):
        profile = BackgroundLoadModel(quiet_load=0.3).constant()
        assert profile.loads == [0.3]

    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_generated_loads_are_nonnegative_and_ordered(self, seed):
        profile = BackgroundLoadModel(horizon_seconds=2000.0).generate(random.Random(seed))
        assert all(b >= a for a, b in zip(profile.times, profile.times[1:]))
        assert all(load >= 0.0 for load in profile.loads)

    def test_mean_load_between_min_and_max(self):
        profile = BackgroundLoadModel(horizon_seconds=3000.0).generate(random.Random(3))
        assert min(profile.loads) <= profile.mean_load() <= max(profile.loads)


class TestClusterSpec:
    def test_provision_count(self):
        cluster = ClusterSpec(num_instances=5).provision(random.Random(0))
        assert len(cluster) == 5
        assert cluster.num_instances == 5

    def test_zero_instances_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(num_instances=0)

    def test_instance_type_by_name(self):
        spec = ClusterSpec(num_instances=1, instance_type="c1.medium")
        cluster = spec.provision(random.Random(0))
        assert cluster[0].instance_type.name == "c1.medium"

    def test_speed_jitter_produces_variation(self):
        cluster = ClusterSpec(num_instances=20, speed_jitter=0.1).provision(random.Random(1))
        speeds = {round(instance.speed_factor, 6) for instance in cluster}
        assert len(speeds) > 1

    def test_no_jitter_means_identical_speed(self):
        cluster = ClusterSpec(num_instances=5, speed_jitter=0.0).provision(random.Random(1))
        assert {instance.speed_factor for instance in cluster} == {1.0}

    def test_background_model_none_gives_constant_load(self):
        spec = ClusterSpec(num_instances=2, background_model=None)
        cluster = spec.provision(random.Random(0))
        assert all(instance.load_profile is None for instance in cluster)

    def test_total_slots(self):
        cluster = ClusterSpec(num_instances=4).provision(random.Random(0))
        assert cluster.total_map_slots(2) == 8
        assert cluster.total_reduce_slots(3) == 12

    def test_hostnames_unique(self):
        cluster = ClusterSpec(num_instances=8).provision(random.Random(0))
        assert len(set(cluster.hostnames())) == 8

    def test_empty_cluster_rejected(self):
        with pytest.raises(ConfigurationError):
            Cluster(instances=[])
