"""Tests for the task model and the slot scheduler."""

import random

import pytest

from repro.cluster.cluster import ClusterSpec
from repro.cluster.config import MapReduceConfig
from repro.cluster.scheduler import SlotScheduler
from repro.cluster.tasks import (
    Phase,
    PhaseKind,
    TaskAttempt,
    TaskCounters,
    TaskType,
    merge_passes,
)
from repro.exceptions import ConfigurationError, SimulationError


def make_task(task_id: str, task_type: TaskType = TaskType.MAP, seconds: float = 10.0):
    return TaskAttempt(
        task_id=task_id,
        task_type=task_type,
        phases=[Phase("work", seconds, PhaseKind.CPU)],
    )


class TestPhases:
    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            Phase("map", -1.0, PhaseKind.CPU)

    def test_nominal_duration_sums_phases(self):
        attempt = TaskAttempt(
            task_id="t", task_type=TaskType.MAP,
            phases=[Phase("a", 2.0, PhaseKind.CPU), Phase("b", 3.0, PhaseKind.DISK)],
        )
        assert attempt.nominal_duration == pytest.approx(5.0)

    def test_phase_seconds_by_name(self):
        attempt = TaskAttempt(
            task_id="t", task_type=TaskType.MAP,
            phases=[Phase("sort", 2.0, PhaseKind.CPU), Phase("sort", 1.0, PhaseKind.DISK)],
        )
        assert attempt.phase_seconds("sort") == pytest.approx(3.0)
        assert attempt.phase_seconds("missing") == 0.0

    def test_empty_phases_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskAttempt(task_id="t", task_type=TaskType.MAP, phases=[])

    def test_counters_as_dict_roundtrip(self):
        counters = TaskCounters(input_bytes=10, output_records=3)
        as_dict = counters.as_dict()
        assert as_dict["input_bytes"] == 10
        assert as_dict["output_records"] == 3
        assert set(as_dict) >= {"hdfs_bytes_read", "shuffle_bytes"}


class TestMergePasses:
    def test_single_segment_needs_no_pass(self):
        assert merge_passes(1, 10) == 0

    def test_fewer_segments_than_factor(self):
        assert merge_passes(5, 10) == 1

    def test_more_segments_than_factor(self):
        assert merge_passes(100, 10) == 2

    def test_exactly_factor(self):
        assert merge_passes(10, 10) == 1

    def test_invalid_factor(self):
        with pytest.raises(ConfigurationError):
            merge_passes(5, 1)


class TestSlotScheduler:
    def _scheduler(self, num_instances=2, num_maps=6, num_reduces=2, slowstart=1.0):
        cluster = ClusterSpec(num_instances=num_instances, background_model=None).provision(
            random.Random(0)
        )
        config = MapReduceConfig(num_reduce_tasks=num_reduces, reduce_slowstart=slowstart)
        maps = [make_task(f"m{i}") for i in range(num_maps)]
        reduces = [make_task(f"r{i}", TaskType.REDUCE) for i in range(num_reduces)]
        return cluster, config, SlotScheduler(cluster, config, maps, reduces)

    def test_first_wave_fills_all_map_slots(self):
        cluster, config, scheduler = self._scheduler(num_instances=2, num_maps=6)
        assignments = scheduler.next_assignments()
        assert len(assignments) == 4  # 2 instances x 2 map slots
        assert all(a.attempt.task_type is TaskType.MAP for a in assignments)

    def test_assignments_balanced_across_instances(self):
        cluster, config, scheduler = self._scheduler(num_instances=2, num_maps=4)
        assignments = scheduler.next_assignments()
        per_instance = {}
        for assignment in assignments:
            per_instance[assignment.instance.index] = (
                per_instance.get(assignment.instance.index, 0) + 1
            )
        assert set(per_instance.values()) == {2}

    def test_reducers_held_until_slowstart(self):
        cluster, config, scheduler = self._scheduler(num_maps=4, num_reduces=2)
        first_wave = scheduler.next_assignments()
        assert all(a.attempt.task_type is TaskType.MAP for a in first_wave)
        # Complete all maps; reducers become eligible.
        for assignment in first_wave:
            scheduler.release(assignment.instance, assignment.attempt, completed=True)
        second_wave = scheduler.next_assignments()
        assert any(a.attempt.task_type is TaskType.REDUCE for a in second_wave)

    def test_wave_numbers_increase(self):
        cluster, config, scheduler = self._scheduler(num_instances=1, num_maps=5, num_reduces=0)
        waves = []
        while scheduler.has_pending():
            assignments = scheduler.next_assignments()
            if not assignments:
                break
            for assignment in assignments:
                waves.append(assignment.wave)
                scheduler.release(assignment.instance, assignment.attempt, completed=True)
        assert waves == [0, 0, 1, 1, 2]

    def test_release_without_assignment_raises(self):
        cluster, config, scheduler = self._scheduler()
        with pytest.raises(SimulationError):
            scheduler.release(cluster[0], make_task("zzz"), completed=True)

    def test_requeued_task_is_scheduled_again(self):
        cluster, config, scheduler = self._scheduler(num_instances=1, num_maps=1, num_reduces=0)
        [assignment] = scheduler.next_assignments()
        scheduler.release(assignment.instance, assignment.attempt, completed=False)
        scheduler.requeue(assignment.attempt)
        assert scheduler.has_pending()
        [retry] = scheduler.next_assignments()
        assert retry.attempt.task_id == assignment.attempt.task_id

    def test_completed_counters(self):
        cluster, config, scheduler = self._scheduler(num_instances=1, num_maps=2, num_reduces=0)
        for assignment in scheduler.next_assignments():
            scheduler.release(assignment.instance, assignment.attempt, completed=True)
        assert scheduler.completed_maps == 2
        assert scheduler.completed_reduces == 0
