"""Pytest configuration for the repository root.

Ensures the ``src`` layout is importable even when the package has not been
installed (e.g. on a machine without network access where
``pip install -e .`` cannot fetch the ``wheel`` build dependency).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
