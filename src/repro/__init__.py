"""repro — a reproduction of PerfXplain (Khoussainova et al., VLDB 2012).

PerfXplain answers comparative performance questions about pairs of
MapReduce jobs or tasks ("why was this job slower than that one?") by
learning explanations — conjunctions of predicates over pair features —
from a log of past executions.

The package is organised as:

* :mod:`repro.cluster` — a discrete-event MapReduce cluster simulator (the
  substitute for the paper's EC2 + Hadoop testbed);
* :mod:`repro.monitoring` — a Ganglia-like metric sampler;
* :mod:`repro.workloads` — Pig-script cost models, the synthetic Excite
  query log, and the Table 2 experiment grid;
* :mod:`repro.logs` — job/task execution records, the execution-log store
  and a Hadoop-style history writer/parser;
* :mod:`repro.ml` — information gain, Relief and a small decision tree,
  implemented from scratch;
* :mod:`repro.core` — the PerfXplain contribution: PXQL, pair features,
  explanation metrics, Algorithm 1, the baselines, the pluggable explainer
  registry, the batch session, and the evaluation harness;
* :mod:`repro.service` — the long-running service layer: a catalog of
  named logs, the versioned request/response protocol, the concurrent
  query service, and the HTTP endpoint behind ``repro-perfxplain serve``.

Quick start::

    from repro import PerfXplain
    from repro.workloads import small_grid, build_experiment_log

    log = build_experiment_log(small_grid(), seed=7)
    px = PerfXplain(log)
    explanation = px.explain(\"\"\"
        FOR JOBS ?, ?
        DESPITE numinstances_isSame = T AND pig_script_isSame = T
        OBSERVED duration_compare = GT
        EXPECTED duration_compare = SIM
    \"\"\")
    print(explanation.format())        # human-readable
    print(explanation.to_json())       # machine-readable, round-trips

Answering many queries?  Use a session, which shares schema inference,
pair selection and training-example construction across calls::

    from repro import PerfXplainSession

    session = PerfXplainSession(log)
    report = session.explain_batch([query1, query2, query3])
    report.save("results.json")

Need a custom technique?  Register it once and it works through the
facade, the CLI ``--technique`` flag and the evaluation harness alike::

    from repro import register_explainer

    @register_explainer("always-blocksize")
    class BlocksizeExplainer:
        name = "AlwaysBlocksize"

        def explain(self, log, query, schema=None, width=None):
            ...
"""

from repro.core.api import DEFAULT_CACHE_CAPACITY, PerfXplain, PerfXplainSession
from repro.core.cache import CacheStats, LRUCache
from repro.core.explainer import PerfXplainConfig, PerfXplainExplainer
from repro.core.explanation import Explanation, ExplanationMetrics
from repro.core.features import FeatureLevel
from repro.core.pxql import BoundQuery, PXQLQuery, Predicate, parse_predicate, parse_query
from repro.core.registry import (
    Explainer,
    create_explainer,
    register_explainer,
    registered_explainers,
    unregister_explainer,
)
from repro.core.report import Report, ReportEntry
from repro.logs.records import JobRecord, TaskRecord
from repro.logs.store import ExecutionLog

__version__ = "1.2.0"

__all__ = [
    "PerfXplain",
    "PerfXplainSession",
    "DEFAULT_CACHE_CAPACITY",
    "CacheStats",
    "LRUCache",
    "PerfXplainConfig",
    "PerfXplainExplainer",
    "Explainer",
    "create_explainer",
    "register_explainer",
    "registered_explainers",
    "unregister_explainer",
    "Explanation",
    "ExplanationMetrics",
    "Report",
    "ReportEntry",
    "FeatureLevel",
    "BoundQuery",
    "PXQLQuery",
    "Predicate",
    "parse_predicate",
    "parse_query",
    "JobRecord",
    "TaskRecord",
    "ExecutionLog",
    "__version__",
]
