"""The PerfXplain service layer: catalog, protocol, executor, HTTP.

This package turns the library into what the paper describes — a
long-running debugging *service* users query interactively — and what the
roadmap asks for: one process serving heavy query traffic over a corpus of
past executions.

The layers, bottom to top:

* :mod:`repro.service.catalog` — :class:`LogCatalog`: named execution
  logs (in-memory or lazily loaded from disk, ``.jsonl.gz`` included),
  one shared :class:`~repro.core.api.PerfXplainSession` per log;
* :mod:`repro.service.protocol` — the versioned request/response wire
  protocol (``to_dict``/``from_dict``/JSON round-trip, stable error
  codes, protocol-version validation on every request);
* :mod:`repro.service.service` — :class:`PerfXplainService`: concurrent
  execution on a thread pool with per-log reader-writer locking — reads
  to one log overlap, appends are exclusive, and responses stay
  bit-identical to direct synchronous session calls — plus in-flight
  deduplication of identical queries and per-request-type latency
  metrics;
* :mod:`repro.service.http` — a stdlib ``http.server`` JSON endpoint
  (:class:`PerfXplainHTTPServer`) and the matching
  :class:`ServiceClient`, also available from the command line as
  ``repro-perfxplain serve``.

.. code-block:: python

    from repro.service import LogCatalog, PerfXplainService, QueryRequest

    catalog = LogCatalog()
    catalog.register_path("prod", "logs/prod.jsonl.gz")
    with PerfXplainService(catalog) as service:
        response = service.execute(QueryRequest(log="prod", query=pxql))
        print(response.entry.explanation.format())
"""

from repro.service.catalog import LogCatalog
from repro.service.http import PerfXplainHTTPServer, ServiceClient
from repro.service.protocol import (
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOL_VERSIONS,
    AppendRequest,
    AppendResponse,
    BatchRequest,
    BatchResponse,
    DiffRequest,
    DiffResponse,
    ErrorCode,
    ErrorResponse,
    EvaluateRequest,
    EvaluateResponse,
    QueryRequest,
    QueryResponse,
    ServiceRequest,
    ServiceResponse,
    check_protocol_version,
    error_code_for,
    parse_request,
    parse_request_json,
    parse_response,
    parse_response_json,
)
from repro.service.service import DEFAULT_MAX_WORKERS, PerfXplainService

__all__ = [
    "PROTOCOL_VERSION",
    "SUPPORTED_PROTOCOL_VERSIONS",
    "DEFAULT_MAX_WORKERS",
    "LogCatalog",
    "PerfXplainService",
    "PerfXplainHTTPServer",
    "ServiceClient",
    "QueryRequest",
    "QueryResponse",
    "AppendRequest",
    "AppendResponse",
    "BatchRequest",
    "BatchResponse",
    "DiffRequest",
    "DiffResponse",
    "EvaluateRequest",
    "EvaluateResponse",
    "ErrorResponse",
    "ErrorCode",
    "ServiceRequest",
    "ServiceResponse",
    "check_protocol_version",
    "error_code_for",
    "parse_request",
    "parse_request_json",
    "parse_response",
    "parse_response_json",
]
