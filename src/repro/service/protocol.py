"""The versioned request/response wire protocol of the PerfXplain service.

Every message that crosses the service boundary — programmatic calls into
:class:`repro.service.PerfXplainService`, CLI subcommands, and the HTTP
endpoint — is one of the dataclasses in this module.  Each one serialises
to a JSON-compatible dict (``to_dict``/``from_dict``/``to_json``/
``from_json`` round-trip exactly), carries a ``type`` tag for dispatch,
and declares the ``protocol_version`` it speaks.  The version is validated
on *every* request (:func:`check_protocol_version`), so a client built
against a future protocol fails loudly with a stable
:data:`ErrorCode.UNSUPPORTED_PROTOCOL` instead of being half-understood.

Failures are first-class wire objects too: an :class:`ErrorResponse` pairs
a human-readable message with a stable machine-readable code from
:class:`ErrorCode`, and :func:`error_code_for` maps the library's exception
hierarchy onto those codes in one place.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Union

from repro.core.report import ReportEntry
from repro.diff.report import DiffReport
from repro.exceptions import (
    CatalogError,
    DuplicateRecordError,
    EvaluationError,
    ExplanationError,
    LogFormatError,
    ProtocolError,
    PXQLSyntaxError,
    PXQLValidationError,
    ReproError,
    ServiceError,
    UnknownFeatureError,
)
from repro.logs.records import (
    ExecutionRecord,
    JobRecord,
    TaskRecord,
    record_from_dict,
    record_to_dict,
)

#: The protocol version this build speaks.  Version 2 added the append
#: request/response pair and the ``duplicate_record`` error code; version 3
#: added the cross-log diff pair and the ``diff_failed`` error code.
PROTOCOL_VERSION = 3

#: Versions the service accepts.  Older clients never send the message
#: types added later, so every older request is also a valid newer one.
SUPPORTED_PROTOCOL_VERSIONS = (1, 2, 3)


class ErrorCode:
    """Stable machine-readable error codes carried by :class:`ErrorResponse`.

    These strings are part of the wire protocol: clients may dispatch on
    them, so existing values never change meaning (new codes may be added
    under a protocol-version bump).
    """

    INVALID_REQUEST = "invalid_request"
    UNSUPPORTED_PROTOCOL = "unsupported_protocol"
    UNKNOWN_LOG = "unknown_log"
    LOG_LOAD_FAILED = "log_load_failed"
    DUPLICATE_RECORD = "duplicate_record"
    INVALID_QUERY = "invalid_query"
    UNKNOWN_TECHNIQUE = "unknown_technique"
    EXPLANATION_FAILED = "explanation_failed"
    EVALUATION_FAILED = "evaluation_failed"
    DIFF_FAILED = "diff_failed"
    INTERNAL_ERROR = "internal_error"

    #: Every code the current protocol version may emit.
    KNOWN = frozenset(
        {
            INVALID_REQUEST,
            UNSUPPORTED_PROTOCOL,
            UNKNOWN_LOG,
            LOG_LOAD_FAILED,
            DUPLICATE_RECORD,
            INVALID_QUERY,
            UNKNOWN_TECHNIQUE,
            EXPLANATION_FAILED,
            EVALUATION_FAILED,
            DIFF_FAILED,
            INTERNAL_ERROR,
        }
    )


def check_protocol_version(version: object) -> int:
    """Validate a protocol-version field; returns it as an ``int``.

    :raises ProtocolError: (code ``unsupported_protocol``) for missing,
        non-integer or unsupported versions.
    """
    if isinstance(version, bool) or not isinstance(version, int):
        raise ProtocolError(
            f"protocol_version must be an integer, got {version!r}",
            code=ErrorCode.UNSUPPORTED_PROTOCOL,
        )
    if version not in SUPPORTED_PROTOCOL_VERSIONS:
        supported = ", ".join(str(v) for v in SUPPORTED_PROTOCOL_VERSIONS)
        raise ProtocolError(
            f"unsupported protocol version {version} (supported: {supported})",
            code=ErrorCode.UNSUPPORTED_PROTOCOL,
        )
    return version


def error_code_for(error: Exception) -> str:
    """The stable wire code describing a library exception."""
    if isinstance(error, ServiceError):
        return error.code
    if isinstance(error, (PXQLSyntaxError, PXQLValidationError, UnknownFeatureError)):
        return ErrorCode.INVALID_QUERY
    if isinstance(error, ExplanationError):
        # The registry reports unknown technique names as ExplanationErrors;
        # distinguish them so clients can tell a bad name from a failed run.
        if "unknown technique" in str(error):
            return ErrorCode.UNKNOWN_TECHNIQUE
        return ErrorCode.EXPLANATION_FAILED
    if isinstance(error, EvaluationError):
        return ErrorCode.EVALUATION_FAILED
    if isinstance(error, DuplicateRecordError):
        # Before the LogFormatError branch: a duplicate id on append is a
        # conflict with the log's current contents, not a malformed log.
        return ErrorCode.DUPLICATE_RECORD
    if isinstance(error, LogFormatError):
        return ErrorCode.LOG_LOAD_FAILED
    if isinstance(error, ReproError):
        return ErrorCode.INVALID_REQUEST
    return ErrorCode.INTERNAL_ERROR


def _require_mapping(data: object, what: str) -> Mapping[str, Any]:
    if not isinstance(data, Mapping):
        raise ProtocolError(f"{what} must be a JSON object, got {type(data).__name__}")
    return data


def _check_type_tag(data: Mapping[str, Any], expected: str) -> None:
    tag = data.get("type", expected)
    if tag != expected:
        raise ProtocolError(f"expected a {expected!r} message, got type {tag!r}")


def _version_of(data: Mapping[str, Any], default: int | None) -> int:
    if "protocol_version" in data:
        return check_protocol_version(data["protocol_version"])
    if default is None:
        raise ProtocolError(
            "request is missing the protocol_version field",
            code=ErrorCode.UNSUPPORTED_PROTOCOL,
        )
    return default


def _require_str(data: Mapping[str, Any], key: str, what: str) -> str:
    value = data.get(key)
    if not isinstance(value, str) or not value.strip():
        raise ProtocolError(f"{what} requires a non-empty string {key!r} field")
    return value


# --------------------------------------------------------------------- #
# requests
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class QueryRequest:
    """Ask the service to explain one PXQL query against a named log.

    :param log: catalog name of the execution log to query.
    :param query: the PXQL query text.
    :param width: explanation width (``None`` = the session default).
    :param technique: registered technique name.
    :param auto_despite: let the technique extend the despite clause first.
    :param protocol_version: protocol this request speaks.
    """

    log: str
    query: str
    width: int | None = None
    technique: str = "perfxplain"
    auto_despite: bool = False
    protocol_version: int = PROTOCOL_VERSION

    def canonical_key(self) -> tuple:
        """A hashable identity for in-flight request deduplication.

        Whitespace-insensitive in the query text and case-insensitive in
        the technique name, because those differences cannot change the
        answer.
        """
        return (
            "query",
            self.log,
            " ".join(self.query.split()),
            self.width,
            self.technique.lower(),
            self.auto_despite,
        )

    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible form that round-trips via :meth:`from_dict`."""
        return {
            "type": "query",
            "protocol_version": self.protocol_version,
            "log": self.log,
            "query": self.query,
            "width": self.width,
            "technique": self.technique,
            "auto_despite": self.auto_despite,
        }

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], default_version: int | None = None
    ) -> "QueryRequest":
        """Parse and validate a wire-form query request.

        :param default_version: version inherited from an enclosing batch;
            top-level requests must carry their own ``protocol_version``.
        :raises ProtocolError: on any malformed field.
        """
        data = _require_mapping(data, "a query request")
        _check_type_tag(data, "query")
        version = _version_of(data, default_version)
        width = data.get("width")
        if width is not None and (
            isinstance(width, bool) or not isinstance(width, int)
        ):
            raise ProtocolError("width must be an integer or null")
        technique = data.get("technique", "perfxplain")
        if not isinstance(technique, str) or not technique:
            raise ProtocolError("technique must be a non-empty string")
        auto_despite = data.get("auto_despite", False)
        if not isinstance(auto_despite, bool):
            raise ProtocolError("auto_despite must be a boolean")
        return cls(
            log=_require_str(data, "log", "a query request"),
            query=_require_str(data, "query", "a query request"),
            width=width,
            technique=technique,
            auto_despite=auto_despite,
            protocol_version=version,
        )

    def to_json(self) -> str:
        """The :meth:`to_dict` form rendered as JSON."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "QueryRequest":
        """Rebuild a request from its :meth:`to_json` form."""
        return cls.from_dict(_loads(text, "a query request"))


@dataclass(frozen=True)
class BatchRequest:
    """A bundle of query requests answered concurrently by the service."""

    requests: tuple[QueryRequest, ...]
    protocol_version: int = PROTOCOL_VERSION

    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible form that round-trips via :meth:`from_dict`."""
        return {
            "type": "batch",
            "protocol_version": self.protocol_version,
            "requests": [request.to_dict() for request in self.requests],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BatchRequest":
        """Parse and validate a wire-form batch request.

        Sub-requests may omit ``protocol_version``; they inherit the
        batch's.
        """
        data = _require_mapping(data, "a batch request")
        _check_type_tag(data, "batch")
        version = _version_of(data, None)
        raw_requests = data.get("requests")
        if not isinstance(raw_requests, (list, tuple)):
            raise ProtocolError("a batch request requires a 'requests' array")
        return cls(
            requests=tuple(
                QueryRequest.from_dict(item, default_version=version)
                for item in raw_requests
            ),
            protocol_version=version,
        )

    def to_json(self) -> str:
        """The :meth:`to_dict` form rendered as JSON."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "BatchRequest":
        """Rebuild a request from its :meth:`to_json` form."""
        return cls.from_dict(_loads(text, "a batch request"))


@dataclass(frozen=True)
class EvaluateRequest:
    """Run the cross-validated precision-vs-width comparison on a log.

    :param log: catalog name of the execution log to evaluate on.
    :param query: the PXQL query text (pair identifiers may be ``?``).
    :param widths: explanation widths to sweep.
    :param repetitions: cross-validation repetitions.
    :param seed: base random seed for splits and pair selection.
    :param techniques: technique names to compare (``None`` = every
        registered technique).
    """

    log: str
    query: str
    widths: tuple[int, ...] = (0, 1, 2, 3)
    repetitions: int = 3
    seed: int = 0
    techniques: tuple[str, ...] | None = None
    protocol_version: int = PROTOCOL_VERSION

    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible form that round-trips via :meth:`from_dict`."""
        return {
            "type": "evaluate",
            "protocol_version": self.protocol_version,
            "log": self.log,
            "query": self.query,
            "widths": list(self.widths),
            "repetitions": self.repetitions,
            "seed": self.seed,
            "techniques": list(self.techniques) if self.techniques else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EvaluateRequest":
        """Parse and validate a wire-form evaluate request."""
        data = _require_mapping(data, "an evaluate request")
        _check_type_tag(data, "evaluate")
        version = _version_of(data, None)
        widths = data.get("widths", [0, 1, 2, 3])
        if not isinstance(widths, (list, tuple)) or not all(
            isinstance(w, int) and not isinstance(w, bool) for w in widths
        ):
            raise ProtocolError("widths must be an array of integers")
        repetitions = data.get("repetitions", 3)
        seed = data.get("seed", 0)
        for name, value in (("repetitions", repetitions), ("seed", seed)):
            if isinstance(value, bool) or not isinstance(value, int):
                raise ProtocolError(f"{name} must be an integer")
        techniques = data.get("techniques")
        if techniques is not None:
            if not isinstance(techniques, (list, tuple)) or not all(
                isinstance(t, str) and t for t in techniques
            ):
                raise ProtocolError("techniques must be an array of names or null")
            techniques = tuple(techniques)
        return cls(
            log=_require_str(data, "log", "an evaluate request"),
            query=_require_str(data, "query", "an evaluate request"),
            widths=tuple(widths),
            repetitions=repetitions,
            seed=seed,
            techniques=techniques,
            protocol_version=version,
        )

    def to_json(self) -> str:
        """The :meth:`to_dict` form rendered as JSON."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "EvaluateRequest":
        """Rebuild a request from its :meth:`to_json` form."""
        return cls.from_dict(_loads(text, "an evaluate request"))


def _parse_records(
    data: Mapping[str, Any], key: str, expected_kind: str
) -> tuple[ExecutionRecord, ...]:
    """Parse one record array of a wire-form append request.

    Entries may omit the redundant ``kind`` tag (the array they sit in
    already says it); an explicit tag must match the array.
    """
    raw = data.get(key, [])
    if not isinstance(raw, (list, tuple)):
        raise ProtocolError(f"an append request's {key!r} must be an array")
    records = []
    for index, item in enumerate(raw):
        item = _require_mapping(item, f"{key}[{index}]")
        kind = item.get("kind", expected_kind)
        if kind != expected_kind:
            raise ProtocolError(
                f"{key}[{index}] carries kind {kind!r}, expected {expected_kind!r}"
            )
        try:
            records.append(record_from_dict({**item, "kind": expected_kind}))
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"{key}[{index}] is not a valid record: {exc}") from exc
    return tuple(records)


@dataclass(frozen=True)
class AppendRequest:
    """Append new job/task records to a served log (protocol 2+).

    Appends are *not* idempotent — retrying a successful append fails
    with :data:`ErrorCode.DUPLICATE_RECORD` — so unlike queries they are
    never deduplicated in flight.

    :param log: catalog name of the execution log to grow.
    :param jobs: job records to append, in log order.
    :param tasks: task records to append, in log order.
    """

    log: str
    jobs: tuple[JobRecord, ...] = ()
    tasks: tuple[TaskRecord, ...] = ()
    protocol_version: int = PROTOCOL_VERSION

    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible form that round-trips via :meth:`from_dict`."""
        return {
            "type": "append",
            "protocol_version": self.protocol_version,
            "log": self.log,
            "jobs": [record_to_dict(job) for job in self.jobs],
            "tasks": [record_to_dict(task) for task in self.tasks],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AppendRequest":
        """Parse and validate a wire-form append request."""
        data = _require_mapping(data, "an append request")
        _check_type_tag(data, "append")
        version = _version_of(data, None)
        if version < 2:
            raise ProtocolError(
                "append requests require protocol version 2 or newer",
                code=ErrorCode.UNSUPPORTED_PROTOCOL,
            )
        return cls(
            log=_require_str(data, "log", "an append request"),
            jobs=_parse_records(data, "jobs", "job"),
            tasks=_parse_records(data, "tasks", "task"),
            protocol_version=version,
        )

    def to_json(self) -> str:
        """The :meth:`to_dict` form rendered as JSON."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "AppendRequest":
        """Rebuild a request from its :meth:`to_json` form."""
        return cls.from_dict(_loads(text, "an append request"))


# --------------------------------------------------------------------- #
# responses
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class QueryResponse:
    """A successfully answered query: the log it ran on and the result."""

    log: str
    entry: ReportEntry
    protocol_version: int = PROTOCOL_VERSION

    @property
    def ok(self) -> bool:
        """Whether the entry carries an explanation."""
        return self.entry.ok

    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible form that round-trips via :meth:`from_dict`."""
        return {
            "type": "query_result",
            "protocol_version": self.protocol_version,
            "log": self.log,
            "entry": self.entry.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QueryResponse":
        """Rebuild a response from its :meth:`to_dict` form."""
        data = _require_mapping(data, "a query response")
        _check_type_tag(data, "query_result")
        entry = data.get("entry")
        if not isinstance(entry, Mapping):
            raise ProtocolError("a query response requires an 'entry' object")
        return cls(
            log=_require_str(data, "log", "a query response"),
            entry=ReportEntry.from_dict(entry),
            protocol_version=_version_of(data, None),
        )

    def to_json(self) -> str:
        """The :meth:`to_dict` form rendered as JSON."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "QueryResponse":
        """Rebuild a response from its :meth:`to_json` form."""
        return cls.from_dict(_loads(text, "a query response"))


@dataclass(frozen=True)
class ErrorResponse:
    """A failed request: a stable code plus a human-readable message."""

    code: str
    message: str
    protocol_version: int = PROTOCOL_VERSION

    @property
    def ok(self) -> bool:
        """Always ``False`` (mirrors :attr:`QueryResponse.ok`)."""
        return False

    @classmethod
    def for_error(cls, error: Exception) -> "ErrorResponse":
        """Wrap a library exception using :func:`error_code_for`."""
        return cls(code=error_code_for(error), message=str(error))

    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible form that round-trips via :meth:`from_dict`."""
        return {
            "type": "error",
            "protocol_version": self.protocol_version,
            "code": self.code,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ErrorResponse":
        """Rebuild a response from its :meth:`to_dict` form."""
        data = _require_mapping(data, "an error response")
        _check_type_tag(data, "error")
        return cls(
            code=_require_str(data, "code", "an error response"),
            message=str(data.get("message", "")),
            protocol_version=_version_of(data, None),
        )

    def to_json(self) -> str:
        """The :meth:`to_dict` form rendered as JSON."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ErrorResponse":
        """Rebuild a response from its :meth:`to_json` form."""
        return cls.from_dict(_loads(text, "an error response"))


@dataclass(frozen=True)
class BatchResponse:
    """Per-request responses of a batch, in request order."""

    responses: tuple[Union[QueryResponse, ErrorResponse], ...]
    protocol_version: int = PROTOCOL_VERSION

    @property
    def ok(self) -> bool:
        """Whether every response carries an explanation."""
        return all(response.ok for response in self.responses)

    @property
    def failures(self) -> "tuple[ErrorResponse, ...]":
        """The error responses, in request order."""
        return tuple(r for r in self.responses if isinstance(r, ErrorResponse))

    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible form that round-trips via :meth:`from_dict`."""
        return {
            "type": "batch_result",
            "protocol_version": self.protocol_version,
            "responses": [response.to_dict() for response in self.responses],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BatchResponse":
        """Rebuild a response from its :meth:`to_dict` form."""
        data = _require_mapping(data, "a batch response")
        _check_type_tag(data, "batch_result")
        version = _version_of(data, None)
        raw = data.get("responses")
        if not isinstance(raw, (list, tuple)):
            raise ProtocolError("a batch response requires a 'responses' array")
        return cls(
            responses=tuple(parse_response(item) for item in raw),
            protocol_version=version,
        )

    def to_json(self) -> str:
        """The :meth:`to_dict` form rendered as JSON."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "BatchResponse":
        """Rebuild a response from its :meth:`to_json` form."""
        return cls.from_dict(_loads(text, "a batch response"))


@dataclass(frozen=True)
class EvaluateResponse:
    """The outcome of an evaluate request.

    :param log: catalog name the evaluation ran on.
    :param query: the resolved (pair-bound) query in PXQL text form.
    :param first_id: first execution of the resolved pair of interest.
    :param second_id: second execution of the resolved pair of interest.
    :param results: ``technique -> width -> metric`` summary (the
        :func:`repro.core.reporting.sweep_to_dict` form).
    """

    log: str
    query: str
    first_id: str
    second_id: str
    results: dict[str, Any] = field(default_factory=dict)
    protocol_version: int = PROTOCOL_VERSION

    @property
    def ok(self) -> bool:
        """Always ``True`` (failures arrive as :class:`ErrorResponse`)."""
        return True

    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible form that round-trips via :meth:`from_dict`."""
        return {
            "type": "evaluate_result",
            "protocol_version": self.protocol_version,
            "log": self.log,
            "query": self.query,
            "pair": [self.first_id, self.second_id],
            "results": self.results,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EvaluateResponse":
        """Rebuild a response from its :meth:`to_dict` form."""
        data = _require_mapping(data, "an evaluate response")
        _check_type_tag(data, "evaluate_result")
        pair = data.get("pair")
        if not isinstance(pair, (list, tuple)) or len(pair) != 2:
            raise ProtocolError("an evaluate response requires a 2-element 'pair'")
        results = data.get("results")
        if not isinstance(results, Mapping):
            raise ProtocolError("an evaluate response requires a 'results' object")
        return cls(
            log=_require_str(data, "log", "an evaluate response"),
            query=_require_str(data, "query", "an evaluate response"),
            first_id=str(pair[0]),
            second_id=str(pair[1]),
            results=dict(results),
            protocol_version=_version_of(data, None),
        )

    def to_json(self) -> str:
        """The :meth:`to_dict` form rendered as JSON."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "EvaluateResponse":
        """Rebuild a response from its :meth:`to_json` form."""
        return cls.from_dict(_loads(text, "an evaluate response"))


@dataclass(frozen=True)
class AppendResponse:
    """The outcome of a successful append: the log's new size and versions.

    :param log: catalog name the append ran on.
    :param appended_jobs: job records added by this request.
    :param appended_tasks: task records added by this request.
    :param num_jobs: total jobs in the log after the append.
    :param num_tasks: total tasks in the log after the append.
    :param versions: the log's post-append counters
        (:meth:`~repro.logs.store.ExecutionLog.append_stats`).
    """

    log: str
    appended_jobs: int
    appended_tasks: int
    num_jobs: int
    num_tasks: int
    versions: dict[str, int] = field(default_factory=dict)
    protocol_version: int = PROTOCOL_VERSION

    @property
    def ok(self) -> bool:
        """Always ``True`` (failures arrive as :class:`ErrorResponse`)."""
        return True

    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible form that round-trips via :meth:`from_dict`."""
        return {
            "type": "append_result",
            "protocol_version": self.protocol_version,
            "log": self.log,
            "appended_jobs": self.appended_jobs,
            "appended_tasks": self.appended_tasks,
            "num_jobs": self.num_jobs,
            "num_tasks": self.num_tasks,
            "versions": dict(self.versions),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AppendResponse":
        """Rebuild a response from its :meth:`to_dict` form."""
        data = _require_mapping(data, "an append response")
        _check_type_tag(data, "append_result")
        counts = {}
        for name in ("appended_jobs", "appended_tasks", "num_jobs", "num_tasks"):
            value = data.get(name)
            if isinstance(value, bool) or not isinstance(value, int):
                raise ProtocolError(f"an append response requires an integer {name!r}")
            counts[name] = value
        versions = data.get("versions", {})
        if not isinstance(versions, Mapping):
            raise ProtocolError("an append response's 'versions' must be an object")
        return cls(
            log=_require_str(data, "log", "an append response"),
            versions=dict(versions),
            protocol_version=_version_of(data, None),
            **counts,
        )

    def to_json(self) -> str:
        """The :meth:`to_dict` form rendered as JSON."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "AppendResponse":
        """Rebuild a response from its :meth:`to_json` form."""
        return cls.from_dict(_loads(text, "an append response"))


@dataclass(frozen=True)
class DiffRequest:
    """Compare two served logs and explain the difference (protocol 3+).

    :param before: catalog name of the baseline log.
    :param after: catalog name of the log under suspicion.
    :param width: explanation width for the learned explainer.
    :param technique: registered learned technique name.
    """

    before: str
    after: str
    width: int | None = None
    technique: str = "perfxplain"
    protocol_version: int = PROTOCOL_VERSION

    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible form that round-trips via :meth:`from_dict`."""
        return {
            "type": "diff",
            "protocol_version": self.protocol_version,
            "before": self.before,
            "after": self.after,
            "width": self.width,
            "technique": self.technique,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DiffRequest":
        """Parse and validate a wire-form diff request."""
        data = _require_mapping(data, "a diff request")
        _check_type_tag(data, "diff")
        version = _version_of(data, None)
        if version < 3:
            raise ProtocolError(
                "diff requests require protocol version 3 or newer",
                code=ErrorCode.UNSUPPORTED_PROTOCOL,
            )
        width = data.get("width")
        if width is not None and (
            isinstance(width, bool) or not isinstance(width, int)
        ):
            raise ProtocolError("width must be an integer or null")
        technique = data.get("technique", "perfxplain")
        if not isinstance(technique, str) or not technique:
            raise ProtocolError("technique must be a non-empty string")
        return cls(
            before=_require_str(data, "before", "a diff request"),
            after=_require_str(data, "after", "a diff request"),
            width=width,
            technique=technique,
            protocol_version=version,
        )

    def to_json(self) -> str:
        """The :meth:`to_dict` form rendered as JSON."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DiffRequest":
        """Rebuild a request from its :meth:`to_json` form."""
        return cls.from_dict(_loads(text, "a diff request"))


@dataclass(frozen=True)
class DiffResponse:
    """A successfully computed cross-log diff.

    :param before: catalog name of the baseline log.
    :param after: catalog name of the log under suspicion.
    :param report: the structured :class:`~repro.diff.report.DiffReport`.
    """

    before: str
    after: str
    report: DiffReport
    protocol_version: int = PROTOCOL_VERSION

    @property
    def ok(self) -> bool:
        """Always ``True`` (failures arrive as :class:`ErrorResponse`)."""
        return True

    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible form that round-trips via :meth:`from_dict`."""
        return {
            "type": "diff_result",
            "protocol_version": self.protocol_version,
            "before": self.before,
            "after": self.after,
            "report": self.report.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DiffResponse":
        """Rebuild a response from its :meth:`to_dict` form."""
        data = _require_mapping(data, "a diff response")
        _check_type_tag(data, "diff_result")
        report = data.get("report")
        if not isinstance(report, Mapping):
            raise ProtocolError("a diff response requires a 'report' object")
        return cls(
            before=_require_str(data, "before", "a diff response"),
            after=_require_str(data, "after", "a diff response"),
            report=DiffReport.from_dict(report),
            protocol_version=_version_of(data, None),
        )

    def to_json(self) -> str:
        """The :meth:`to_dict` form rendered as JSON."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DiffResponse":
        """Rebuild a response from its :meth:`to_json` form."""
        return cls.from_dict(_loads(text, "a diff response"))


#: Any parsed request.
ServiceRequest = Union[
    QueryRequest, BatchRequest, EvaluateRequest, AppendRequest, DiffRequest
]

#: Any parsed response.
ServiceResponse = Union[
    QueryResponse,
    BatchResponse,
    EvaluateResponse,
    AppendResponse,
    DiffResponse,
    ErrorResponse,
]

_REQUEST_TYPES: dict[str, Any] = {
    "query": QueryRequest,
    "batch": BatchRequest,
    "evaluate": EvaluateRequest,
    "append": AppendRequest,
    "diff": DiffRequest,
}

_RESPONSE_TYPES: dict[str, Any] = {
    "query_result": QueryResponse,
    "batch_result": BatchResponse,
    "evaluate_result": EvaluateResponse,
    "append_result": AppendResponse,
    "diff_result": DiffResponse,
    "error": ErrorResponse,
}


def _loads(text: str, what: str) -> Any:
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"{what} is not valid JSON: {exc}") from exc


def parse_request(data: object) -> ServiceRequest:
    """Parse any wire-form request, dispatching on its ``type`` tag."""
    data = _require_mapping(data, "a service request")
    tag = data.get("type")
    if tag not in _REQUEST_TYPES:
        known = ", ".join(sorted(_REQUEST_TYPES))
        raise ProtocolError(f"unknown request type {tag!r} (known: {known})")
    return _REQUEST_TYPES[tag].from_dict(data)


def parse_request_json(text: str) -> ServiceRequest:
    """Parse a JSON request body (:func:`parse_request` on the document)."""
    return parse_request(_loads(text, "a service request"))


def parse_response(data: object) -> ServiceResponse:
    """Parse any wire-form response, dispatching on its ``type`` tag."""
    data = _require_mapping(data, "a service response")
    tag = data.get("type")
    if tag not in _RESPONSE_TYPES:
        known = ", ".join(sorted(_RESPONSE_TYPES))
        raise ProtocolError(f"unknown response type {tag!r} (known: {known})")
    return _RESPONSE_TYPES[tag].from_dict(data)


def parse_response_json(text: str) -> ServiceResponse:
    """Parse a JSON response body (:func:`parse_response` on the document)."""
    return parse_response(_loads(text, "a service response"))
