"""A stdlib HTTP JSON endpoint for the service, plus a tiny client.

The server is deliberately boring: :class:`http.server.ThreadingHTTPServer`
(one thread per connection, no third-party dependencies) fronting a
:class:`~repro.service.service.PerfXplainService`.  Bodies on the wire are
exactly the versioned protocol documents of
:mod:`repro.service.protocol` — the HTTP layer adds nothing but routing
and status codes, so anything expressible programmatically is expressible
over HTTP and vice versa.

Routes:

* ``POST /v1/query`` — one :class:`~repro.service.protocol.QueryRequest`;
* ``POST /v1/batch`` — a :class:`~repro.service.protocol.BatchRequest`
  (per-item failures come back embedded in the batch, status 200);
* ``POST /v1/evaluate`` — an
  :class:`~repro.service.protocol.EvaluateRequest`;
* ``POST /v1/diff`` — a :class:`~repro.service.protocol.DiffRequest`
  comparing two served logs (the cross-log regression report; a diff the
  engine cannot compute answers 422 with code ``diff_failed``);
* ``POST /v1/logs/{name}/append`` — an
  :class:`~repro.service.protocol.AppendRequest` growing the named log in
  place (duplicate ids answer 409);
* ``GET /v1/logs`` — service stats: catalog snapshot with per-log session
  cache counters, append/version counters, executed/deduplicated totals
  (lock-free: answers even while explanations or appends are in flight);
* ``GET /v1/metrics`` — operational metrics: p50/p95/p99 latency per
  request type, shard-pool fork/reuse counters, per-log cache,
  invalidation and compute-once counters;
* ``GET /v1/health`` — liveness probe (reports the worker-pool size).

The ``type`` tag may be omitted from POST bodies — the route implies it —
but when present it must match the route.  :class:`ServiceClient` is the
matching :mod:`urllib`-based client used by the CLI examples and tests.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.parse
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Iterable, Mapping

from repro.core.report import ReportEntry
from repro.exceptions import ProtocolError, ServiceError
from repro.logs.records import JobRecord, TaskRecord
from repro.service.protocol import (
    PROTOCOL_VERSION,
    AppendRequest,
    BatchRequest,
    DiffRequest,
    ErrorCode,
    ErrorResponse,
    EvaluateRequest,
    QueryRequest,
    QueryResponse,
    ServiceResponse,
    parse_request,
    parse_response_json,
)
from repro.service.service import PerfXplainService

#: HTTP status for each stable error code.
_STATUS_FOR_CODE = {
    ErrorCode.INVALID_REQUEST: 400,
    ErrorCode.UNSUPPORTED_PROTOCOL: 400,
    ErrorCode.INVALID_QUERY: 400,
    ErrorCode.UNKNOWN_TECHNIQUE: 400,
    ErrorCode.UNKNOWN_LOG: 404,
    ErrorCode.DUPLICATE_RECORD: 409,
    ErrorCode.EXPLANATION_FAILED: 422,
    ErrorCode.EVALUATION_FAILED: 422,
    ErrorCode.DIFF_FAILED: 422,
    ErrorCode.LOG_LOAD_FAILED: 500,
    ErrorCode.INTERNAL_ERROR: 500,
}

_POST_ROUTES = {
    "/v1/query": "query",
    "/v1/batch": "batch",
    "/v1/evaluate": "evaluate",
    "/v1/diff": "diff",
}


def _append_route(path: str) -> str | None:
    """The log name of a ``/v1/logs/{name}/append`` path, else ``None``.

    The name segment is percent-decoded; names that decode to something
    containing ``/`` are rejected (they cannot round-trip as one path
    segment).
    """
    parts = path.split("/")
    if len(parts) != 5 or parts[:2] != ["", "v1"] or parts[2] != "logs":
        return None
    if parts[4] != "append" or not parts[3]:
        return None
    name = urllib.parse.unquote(parts[3])
    return None if "/" in name else name


def _status_of(response: ServiceResponse) -> int:
    if isinstance(response, ErrorResponse):
        return _STATUS_FOR_CODE.get(response.code, 500)
    return 200


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the wrapped service."""

    server_version = "PerfXplainHTTP/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> PerfXplainService:
        return self.server.service  # type: ignore[attr-defined]

    def _send_json(self, status: int, payload: Mapping[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_response(self, status: int, code: str, message: str) -> None:
        self._send_json(status, ErrorResponse(code=code, message=message).to_dict())

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path in ("/v1/health", "/health"):
            self._send_json(
                200,
                {
                    "status": "ok",
                    "protocol_version": PROTOCOL_VERSION,
                    "workers": self.service.max_workers,
                },
            )
            return
        if self.path == "/v1/logs":
            payload = self.service.stats()
            payload["protocol_version"] = PROTOCOL_VERSION
            self._send_json(200, payload)
            return
        if self.path == "/v1/metrics":
            payload = self.service.metrics()
            payload["protocol_version"] = PROTOCOL_VERSION
            self._send_json(200, payload)
            return
        self._send_error_response(
            404, ErrorCode.INVALID_REQUEST, f"unknown path {self.path!r}"
        )

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        expected = _POST_ROUTES.get(self.path)
        append_log = _append_route(self.path) if expected is None else None
        if append_log is not None:
            expected = "append"
        if expected is None:
            self._send_error_response(
                404, ErrorCode.INVALID_REQUEST, f"unknown path {self.path!r}"
            )
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length) if length > 0 else b""
            data = json.loads(raw.decode("utf-8"))
            if isinstance(data, dict) and "type" not in data:
                data = {**data, "type": expected}
            if isinstance(data, dict) and data.get("type") != expected:
                raise ProtocolError(
                    f"endpoint {self.path} expects a {expected!r} request"
                )
            if append_log is not None and isinstance(data, dict):
                # The path names the log; a body 'log' field must agree.
                body_log = data.get("log", append_log)
                if body_log != append_log:
                    raise ProtocolError(
                        f"path names log {append_log!r} but the body says {body_log!r}"
                    )
                data = {**data, "log": append_log}
            request = parse_request(data)
        except ProtocolError as error:
            response = ErrorResponse.for_error(error)
            self._send_json(_status_of(response), response.to_dict())
            return
        except (ValueError, UnicodeDecodeError) as error:
            self._send_error_response(
                400, ErrorCode.INVALID_REQUEST, f"invalid JSON body: {error}"
            )
            return
        response = self.service.execute(request)
        self._send_json(_status_of(response), response.to_dict())

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)


class PerfXplainHTTPServer:
    """The service bound to a host/port, ready to serve JSON over HTTP.

    :param service: the concurrent executor to expose.
    :param host: interface to bind (default loopback).
    :param port: TCP port; ``0`` picks a free ephemeral port.
    :param verbose: log one line per handled request to stderr.
    """

    def __init__(
        self,
        service: PerfXplainService,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self._http = ThreadingHTTPServer((host, port), _ServiceRequestHandler)
        self._http.service = service  # type: ignore[attr-defined]
        self._http.verbose = verbose  # type: ignore[attr-defined]
        self._http.daemon_threads = True
        self._thread: threading.Thread | None = None
        self._active = False

    @property
    def host(self) -> str:
        """The bound interface."""
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        """The bound TCP port (resolved when ``port=0`` was requested)."""
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should talk to."""
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` (blocking)."""
        self._active = True
        try:
            self._http.serve_forever()
        finally:
            self._active = False

    def start(self) -> "PerfXplainHTTPServer":
        """Serve on a background daemon thread; returns ``self``."""
        if self._thread is not None:
            raise RuntimeError("the server is already running")
        self._active = True
        self._thread = threading.Thread(
            target=self._http.serve_forever, name="perfxplain-http", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the socket (idempotent).

        ``BaseServer.shutdown`` blocks forever when the serve loop never
        ran, so it is only issued while the server is active.
        """
        if self._active:
            self._http.shutdown()
            self._active = False
        self._http.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "PerfXplainHTTPServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


class ServiceClient:
    """A tiny JSON-over-HTTP client for the service endpoint.

    Speaks the same versioned protocol objects as the programmatic API:
    request dataclasses go out, parsed response dataclasses come back.

    .. code-block:: python

        client = ServiceClient("http://127.0.0.1:8000")
        entry = client.explain("prod", "FOR JOBS ?, ? ... EXPECTED ...")
        print(entry.explanation.format())
    """

    def __init__(self, base_url: str, timeout: float = 300.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    # protocol-level calls
    # ------------------------------------------------------------------ #

    def query(
        self,
        log: str,
        query: str,
        width: int | None = None,
        technique: str = "perfxplain",
        auto_despite: bool = False,
    ) -> ServiceResponse:
        """POST one query; service-level failures come back as responses.

        :raises ServiceError: only for transport failures (unreachable
            server, timeout); everything the service itself rejects
            arrives as a parsed :class:`ErrorResponse`.
        """
        request = QueryRequest(
            log=log,
            query=query,
            width=width,
            technique=technique,
            auto_despite=auto_despite,
        )
        return self._post("/v1/query", request.to_json())

    def batch(self, requests: Iterable[QueryRequest]) -> ServiceResponse:
        """POST a batch of queries; returns the parsed batch response."""
        request = BatchRequest(requests=tuple(requests))
        return self._post("/v1/batch", request.to_json())

    def evaluate(
        self,
        log: str,
        query: str,
        widths: Iterable[int] = (0, 1, 2, 3),
        repetitions: int = 3,
        seed: int = 0,
        techniques: Iterable[str] | None = None,
    ) -> ServiceResponse:
        """POST an evaluate request; returns the parsed response."""
        request = EvaluateRequest(
            log=log,
            query=query,
            widths=tuple(widths),
            repetitions=repetitions,
            seed=seed,
            techniques=tuple(techniques) if techniques is not None else None,
        )
        return self._post("/v1/evaluate", request.to_json())

    def diff(
        self,
        before: str,
        after: str,
        width: int | None = None,
        technique: str = "perfxplain",
    ) -> ServiceResponse:
        """POST a cross-log diff of two served logs; returns the response.

        A successful diff arrives as a
        :class:`~repro.service.protocol.DiffResponse` whose ``report`` is
        the structured :class:`~repro.diff.report.DiffReport`.
        """
        request = DiffRequest(
            before=before, after=after, width=width, technique=technique
        )
        return self._post("/v1/diff", request.to_json())

    def append(
        self,
        log: str,
        jobs: Iterable[JobRecord] = (),
        tasks: Iterable[TaskRecord] = (),
    ) -> ServiceResponse:
        """POST new records to a served log; returns the parsed response.

        A duplicate id rejects the whole batch (the server answers 409,
        parsed here as an :class:`ErrorResponse` with code
        ``duplicate_record``) — appends are not idempotent, so do not
        blindly retry a batch whose response was lost.
        """
        request = AppendRequest(log=log, jobs=tuple(jobs), tasks=tuple(tasks))
        path = f"/v1/logs/{urllib.parse.quote(log, safe='')}/append"
        return self._post(path, request.to_json())

    # ------------------------------------------------------------------ #
    # convenience wrappers
    # ------------------------------------------------------------------ #

    def explain(
        self,
        log: str,
        query: str,
        width: int | None = None,
        technique: str = "perfxplain",
        auto_despite: bool = False,
    ) -> ReportEntry:
        """Answer one query; returns the report entry or raises.

        :raises ServiceError: with the response's stable ``code`` when the
            service answered with an :class:`ErrorResponse`.
        """
        response = self.query(
            log, query, width=width, technique=technique, auto_despite=auto_despite
        )
        if isinstance(response, ErrorResponse):
            raise ServiceError(response.message, code=response.code)
        assert isinstance(response, QueryResponse)
        return response.entry

    def logs(self) -> dict[str, Any]:
        """Service stats: the catalog snapshot plus request counters."""
        return self._get("/v1/logs")

    def metrics(self) -> dict[str, Any]:
        """Operational metrics: latency percentiles plus counter families."""
        return self._get("/v1/metrics")

    def health(self) -> dict[str, Any]:
        """The liveness document (``{"status": "ok", ...}``)."""
        return self._get("/v1/health")

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #

    def _post(self, path: str, body: str) -> ServiceResponse:
        request = urllib.request.Request(
            self.base_url + path,
            data=body.encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                return parse_response_json(reply.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            # Non-200 bodies are still protocol documents (ErrorResponse).
            text = error.read().decode("utf-8", errors="replace")
            try:
                return parse_response_json(text)
            except ProtocolError:
                raise ServiceError(
                    f"HTTP {error.code} from {path}: {text[:200]}"
                ) from error
        except (urllib.error.URLError, TimeoutError, OSError) as error:
            raise ServiceError(
                f"cannot reach the service at {self.base_url}: {error}"
            ) from error

    def _get(self, path: str) -> dict[str, Any]:
        request = urllib.request.Request(self.base_url + path, method="GET")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                payload = json.loads(reply.read().decode("utf-8"))
        except urllib.error.HTTPError:
            raise
        except (urllib.error.URLError, TimeoutError, OSError) as error:
            raise ServiceError(
                f"cannot reach the service at {self.base_url}: {error}"
            ) from error
        if not isinstance(payload, dict):
            raise ServiceError(f"unexpected response document from {path}")
        return payload
