"""A catalog of named execution logs with per-log session reuse.

The paper frames PerfXplain as a debugging *service*: a long-lived process
fronting a corpus of past executions that users query interactively.  The
:class:`LogCatalog` is that corpus: execution logs are registered under
names — either as in-memory :class:`~repro.logs.store.ExecutionLog`
objects or as file paths loaded lazily on first query (any format
:func:`~repro.ingest.load_execution_log` accepts — native ``.jsonl`` /
``.jsonl.gz`` logs plus real Hadoop JobHistory and Spark event-log files,
sniffed automatically) — and every log gets exactly one long-lived
:class:`~repro.core.api.PerfXplainSession`, so the expensive intermediates
(record blocks, training matrices, whole explanations) are shared across
all traffic to that log.

The catalog is thread-safe: registration, lazy loading and session
creation are serialised internally, and :meth:`LogCatalog.lock` hands out
the per-log **reader-writer lock** (:class:`~repro.core.locks.RWLock`).
Read traffic — queries, batches, evaluations — holds the read side and
runs concurrently against one log (the session and log layers are safe
under concurrent readers); appends and first-load hold the write side, so
the epoch/version cache-invalidation machinery stays strictly
single-writer.  ``with catalog.lock(name)`` still acquires exclusively
(the write side), so existing mutex-style callers keep their semantics.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from repro.core.api import DEFAULT_CACHE_CAPACITY, PerfXplainSession
from repro.core.locks import RWLock
from repro.exceptions import CatalogError, ReproError
from repro.ingest import load_execution_log
from repro.logs.records import JobRecord, TaskRecord
from repro.logs.store import ExecutionLog
from repro.service.protocol import ErrorCode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.explainer import PerfXplainConfig


@dataclass
class _CatalogEntry:
    """One named log: its source, lazily-created state and its lock.

    The lock is a reader-writer lock; ``with entry.lock`` (used by lazy
    loading, session creation and :meth:`LogCatalog.append`) takes the
    exclusive write side, while query traffic opts into the shared read
    side via ``entry.lock.read_locked()``.
    """

    name: str
    path: Path | None = None
    log: ExecutionLog | None = None
    session: PerfXplainSession | None = None
    source_format: str | None = None
    appends: int = 0
    lock: RWLock = field(default_factory=RWLock)


class LogCatalog:
    """Named execution logs, lazily loaded, one shared session per log.

    :param config: explanation configuration applied to every session.
    :param seed: seed every session is created with; fixing it is what
        makes service responses bit-identical to direct session calls.
    :param cache_capacity: per-session LRU cache bound
        (:class:`~repro.core.api.PerfXplainSession`; ``None`` = unlimited).
    """

    def __init__(
        self,
        config: "PerfXplainConfig | None" = None,
        seed: int = 0,
        cache_capacity: int | None = DEFAULT_CACHE_CAPACITY,
    ) -> None:
        self._config = config
        self._seed = seed
        self._cache_capacity = cache_capacity
        self._registry_lock = threading.Lock()
        self._entries: dict[str, _CatalogEntry] = {}

    @property
    def config(self) -> "PerfXplainConfig | None":
        """The explanation configuration every session is created with."""
        return self._config

    @property
    def seed(self) -> int:
        """The seed every session is created with."""
        return self._seed

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #

    def register(self, name: str, log: ExecutionLog) -> None:
        """Register an in-memory execution log under a name."""
        entry = _CatalogEntry(name=self._check_name(name), log=log)
        self._add(entry)

    def register_path(self, name: str, path: str | Path) -> None:
        """Register a log file to be loaded lazily on first query.

        The file's format (native JSONL, Hadoop JobHistory, Spark event
        log) is sniffed when the log is first loaded; the detected format
        shows up in :meth:`describe` as ``source_format``.  The file need
        not exist yet at registration time; a missing or malformed file
        surfaces as a :class:`~repro.exceptions.CatalogError` (code
        ``log_load_failed``) when the log is first needed.
        """
        entry = _CatalogEntry(name=self._check_name(name), path=Path(path))
        self._add(entry)

    def unregister(self, name: str) -> None:
        """Drop a log (and its session) from the catalog."""
        with self._registry_lock:
            if name not in self._entries:
                raise CatalogError(f"unknown log {name!r}")
            del self._entries[name]

    @staticmethod
    def _check_name(name: str) -> str:
        if not isinstance(name, str) or not name.strip():
            raise CatalogError(
                "log names must be non-empty strings",
                code=ErrorCode.INVALID_REQUEST,
            )
        return name

    def _add(self, entry: _CatalogEntry) -> None:
        with self._registry_lock:
            if entry.name in self._entries:
                raise CatalogError(
                    f"log {entry.name!r} is already registered",
                    code=ErrorCode.INVALID_REQUEST,
                )
            self._entries[entry.name] = entry

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #

    def names(self) -> tuple[str, ...]:
        """Every registered log name, sorted."""
        with self._registry_lock:
            return tuple(sorted(self._entries))

    def __contains__(self, name: str) -> bool:
        with self._registry_lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._registry_lock:
            return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def _entry(self, name: str) -> _CatalogEntry:
        with self._registry_lock:
            entry = self._entries.get(name)
        if entry is None:
            known = ", ".join(self.names()) or "(none)"
            raise CatalogError(f"unknown log {name!r}; registered logs: {known}")
        return entry

    def is_loaded(self, name: str) -> bool:
        """Whether a registered log has been materialised in memory yet."""
        return self._entry(name).log is not None

    def lock(self, name: str) -> RWLock:
        """The per-log reader-writer lock coordinating access to one log.

        ``with catalog.lock(name)`` acquires the exclusive write side
        (drop-in for the old mutex); concurrent readers use
        ``catalog.lock(name).read_locked()``.
        """
        return self._entry(name).lock

    def log(self, name: str) -> ExecutionLog:
        """The execution log behind a name, loading it on first use."""
        entry = self._entry(name)
        if entry.log is None:
            with entry.lock:
                if entry.log is None:
                    entry.log = self._load(entry)
        return entry.log

    def session(self, name: str) -> PerfXplainSession:
        """The shared long-lived session for a log (created on first use)."""
        entry = self._entry(name)
        if entry.session is None:
            log = self.log(name)
            with entry.lock:
                if entry.session is None:
                    entry.session = PerfXplainSession(
                        log,
                        config=self._config,
                        seed=self._seed,
                        cache_capacity=self._cache_capacity,
                    )
        return entry.session

    # ------------------------------------------------------------------ #
    # live growth
    # ------------------------------------------------------------------ #

    def append(
        self,
        name: str,
        jobs: Sequence[JobRecord] = (),
        tasks: Sequence[TaskRecord] = (),
    ) -> dict[str, Any]:
        """Append records to a served log under its per-log lock.

        The append is atomic against the log's other traffic: it holds
        the same mutex the service holds while a session answers a
        query, extends the log (duplicate ids reject the whole batch
        with nothing applied), and eagerly refreshes the cached record
        blocks (:meth:`~repro.logs.store.ExecutionLog.flush_appends`) so
        the O(delta) encoding work happens here, on the write path, not
        on the next query.

        :returns: a post-append snapshot — ``num_jobs``, ``num_tasks``
            and the log's ``versions`` counters.
        """
        entry = self._entry(name)
        log = self.log(name)
        with entry.lock:
            log.extend(jobs=jobs, tasks=tasks)
            log.flush_appends()
            entry.appends += 1
            return {
                "num_jobs": log.num_jobs,
                "num_tasks": log.num_tasks,
                "versions": log.append_stats(),
            }

    def _load(self, entry: _CatalogEntry) -> ExecutionLog:
        assert entry.path is not None
        try:
            log, entry.source_format = load_execution_log(entry.path)
            return log
        except ReproError as exc:
            raise CatalogError(
                f"cannot load log {entry.name!r} from {entry.path}: {exc}",
                code=ErrorCode.LOG_LOAD_FAILED,
            ) from exc
        except OSError as exc:
            raise CatalogError(
                f"cannot read log {entry.name!r} from {entry.path}: {exc}",
                code=ErrorCode.LOG_LOAD_FAILED,
            ) from exc

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def describe(self) -> dict[str, dict[str, Any]]:
        """A JSON-compatible snapshot of every log's state and cache stats.

        Describing is passive *and lock-free*: it never triggers a lazy
        load and it takes no per-log lock, so ``GET /v1/logs`` answers
        immediately even while a slow explanation or an append holds a
        log's lock — every field it reads is either immutable after
        registration or a counter snapshot that tolerates concurrent
        updates.
        """
        snapshot: dict[str, dict[str, Any]] = {}
        for name in self.names():
            try:
                entry = self._entry(name)
            except CatalogError:
                # The log was unregistered between the snapshot and here.
                continue
            log, session = entry.log, entry.session
            snapshot[name] = {
                "path": str(entry.path) if entry.path is not None else None,
                "loaded": log is not None,
                "source_format": entry.source_format,
                "num_jobs": log.num_jobs if log is not None else None,
                "num_tasks": log.num_tasks if log is not None else None,
                "appends": entry.appends,
                "versions": log.append_stats() if log is not None else None,
                "cache_stats": (
                    {
                        key: stats.to_dict()
                        for key, stats in session.cache_stats().items()
                    }
                    if session is not None
                    else None
                ),
                "invalidations": (
                    session.invalidation_stats() if session is not None else None
                ),
                "concurrency": (
                    session.concurrency_stats() if session is not None else None
                ),
            }
        return snapshot
