"""The concurrent query service: the executor behind every entry point.

:class:`PerfXplainService` turns a :class:`~repro.service.catalog.LogCatalog`
into a long-running query-answering service.  Requests — the versioned
dataclasses of :mod:`repro.service.protocol` — are executed on a thread
pool, with two guarantees:

* **Determinism.**  All traffic to one log is serialised on that log's
  mutex, so its shared :class:`~repro.core.api.PerfXplainSession` sees a
  strictly sequential access pattern and every response is bit-identical
  to what a direct synchronous session call would return (the concurrency
  tests and the service benchmark assert this).  Concurrency comes from
  interleaving traffic *across* logs and from the protocol work around
  the per-log critical sections.
* **Deduplication.**  Identical in-flight queries (same log, query text
  modulo whitespace, width, technique, flags) share one execution: the
  second submitter gets the first one's future.  Combined with the
  session's explanation memoisation, a burst of identical questions —
  the common case for heavy query traffic — costs one computation.

Failures never escape as exceptions: every error is folded into a wire
:class:`~repro.service.protocol.ErrorResponse` with a stable code, so one
code path serves programmatic callers, the CLI and the HTTP endpoint.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any

from repro.core.api import PerfXplain
from repro.core.evaluation import evaluate_precision_vs_width
from repro.core.report import ReportEntry
from repro.core.reporting import sweep_to_dict
from repro.exceptions import ReproError
from repro.service.catalog import LogCatalog
from repro.service.protocol import (
    AppendRequest,
    AppendResponse,
    BatchRequest,
    BatchResponse,
    ErrorCode,
    ErrorResponse,
    EvaluateRequest,
    EvaluateResponse,
    ProtocolError,
    QueryRequest,
    QueryResponse,
    ServiceRequest,
    ServiceResponse,
    check_protocol_version,
)

#: Default worker-thread count for the request pool.
DEFAULT_MAX_WORKERS = 4


class PerfXplainService:
    """Execute protocol requests concurrently against a log catalog.

    :param catalog: the named logs (and their shared sessions) to serve.
    :param max_workers: thread-pool size for query execution.
    """

    def __init__(
        self, catalog: LogCatalog, max_workers: int = DEFAULT_MAX_WORKERS
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.catalog = catalog
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="perfxplain"
        )
        self._inflight_lock = threading.Lock()
        self._inflight: dict[tuple, Future] = {}
        self._executed = 0
        self._deduplicated = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def execute(self, request: ServiceRequest) -> ServiceResponse:
        """Execute any protocol request synchronously; never raises.

        Query requests still flow through the pool (and its dedup map), so
        a synchronous caller and a concurrent batch racing on the same
        question share one execution.
        """
        if isinstance(request, QueryRequest):
            return self.submit(request).result()
        if isinstance(request, BatchRequest):
            return self.execute_batch(request)
        if isinstance(request, EvaluateRequest):
            return self._execute_evaluate(request)
        if isinstance(request, AppendRequest):
            return self._execute_append(request)
        return ErrorResponse(
            code=ErrorCode.INVALID_REQUEST,
            message=f"unsupported request type {type(request).__name__}",
        )

    def submit(self, request: QueryRequest) -> "Future[ServiceResponse]":
        """Schedule one query; identical in-flight queries share a future."""
        try:
            self._check_open()
            check_protocol_version(request.protocol_version)
        except ProtocolError as error:
            return _completed(ErrorResponse.for_error(error))
        key = request.canonical_key()
        with self._inflight_lock:
            existing = self._inflight.get(key)
            if existing is not None:
                self._deduplicated += 1
                return existing
            try:
                future: "Future[ServiceResponse]" = self._pool.submit(
                    self._run_query, key, request
                )
            except RuntimeError:
                # close() raced this submission and shut the pool down.
                return _completed(
                    ErrorResponse(
                        code=ErrorCode.INVALID_REQUEST,
                        message="the service is closed",
                    )
                )
            self._inflight[key] = future
            return future

    def execute_batch(self, batch: BatchRequest) -> BatchResponse | ErrorResponse:
        """Execute a batch concurrently; responses come in request order."""
        try:
            self._check_open()
            check_protocol_version(batch.protocol_version)
        except ProtocolError as error:
            return ErrorResponse.for_error(error)
        futures = [self.submit(request) for request in batch.requests]
        return BatchResponse(responses=tuple(future.result() for future in futures))

    # ------------------------------------------------------------------ #
    # request handlers
    # ------------------------------------------------------------------ #

    def _run_query(self, key: tuple, request: QueryRequest) -> ServiceResponse:
        try:
            return self._execute_query(request)
        finally:
            with self._inflight_lock:
                self._inflight.pop(key, None)

    def _execute_query(self, request: QueryRequest) -> ServiceResponse:
        try:
            session = self.catalog.session(request.log)
            start = time.perf_counter()
            # One query at a time per log: the shared session's caches are
            # not thread-safe, and serialising here is exactly what makes
            # concurrent responses bit-identical to sequential ones.
            with self.catalog.lock(request.log):
                resolved = session.resolve(request.query)
                explanation = session.explain(
                    resolved,
                    width=request.width,
                    technique=request.technique,
                    auto_despite=request.auto_despite,
                )
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            entry = ReportEntry.for_query(resolved, explanation, elapsed_ms=elapsed_ms)
            response: ServiceResponse = QueryResponse(log=request.log, entry=entry)
        except ReproError as error:
            response = ErrorResponse.for_error(error)
        except Exception as error:  # defensive: plugins may raise anything
            response = ErrorResponse(
                code=ErrorCode.INTERNAL_ERROR,
                message=f"{type(error).__name__}: {error}",
            )
        with self._inflight_lock:
            self._executed += 1
        return response

    def _execute_evaluate(self, request: EvaluateRequest) -> ServiceResponse:
        try:
            check_protocol_version(request.protocol_version)
            log = self.catalog.log(request.log)
            with self.catalog.lock(request.log):
                # Evaluation builds its own facade: the sweep re-splits the
                # log per repetition, which must not pollute (or race with)
                # the shared query session's caches.
                facade = PerfXplain(log, seed=request.seed)
                query = facade.resolve(request.query)
                if request.techniques:
                    techniques = [
                        facade.technique(name) for name in request.techniques
                    ]
                else:
                    techniques = list(facade.techniques().values())
                sweep = evaluate_precision_vs_width(
                    log,
                    query,
                    techniques,
                    widths=request.widths,
                    repetitions=request.repetitions,
                    seed=request.seed,
                )
            with self._inflight_lock:
                self._executed += 1
            assert query.first_id is not None and query.second_id is not None
            return EvaluateResponse(
                log=request.log,
                query=str(query),
                first_id=query.first_id,
                second_id=query.second_id,
                results=sweep_to_dict(sweep),
            )
        except ReproError as error:
            return ErrorResponse.for_error(error)
        except Exception as error:  # defensive: plugins may raise anything
            return ErrorResponse(
                code=ErrorCode.INTERNAL_ERROR,
                message=f"{type(error).__name__}: {error}",
            )

    def _execute_append(self, request: AppendRequest) -> ServiceResponse:
        """Grow a served log in place.

        Appends are mutations, not queries: they are never deduplicated
        (retrying a successful append is a ``duplicate_record`` error by
        design) and run synchronously under the log's mutex via
        :meth:`LogCatalog.append`, interleaving atomically with query
        traffic.
        """
        try:
            self._check_open()
            check_protocol_version(request.protocol_version)
            snapshot = self.catalog.append(
                request.log, jobs=request.jobs, tasks=request.tasks
            )
            with self._inflight_lock:
                self._executed += 1
            return AppendResponse(
                log=request.log,
                appended_jobs=len(request.jobs),
                appended_tasks=len(request.tasks),
                num_jobs=snapshot["num_jobs"],
                num_tasks=snapshot["num_tasks"],
                versions=snapshot["versions"],
            )
        except ReproError as error:
            return ErrorResponse.for_error(error)
        except Exception as error:  # defensive: plugins may raise anything
            return ErrorResponse(
                code=ErrorCode.INTERNAL_ERROR,
                message=f"{type(error).__name__}: {error}",
            )

    # ------------------------------------------------------------------ #
    # introspection and lifecycle
    # ------------------------------------------------------------------ #

    def stats(self) -> dict[str, Any]:
        """Service counters plus the per-log catalog snapshot.

        ``executed`` counts requests that actually ran; ``deduplicated``
        counts submissions that piggybacked on an identical in-flight
        query; ``logs`` is :meth:`LogCatalog.describe`, whose per-log
        ``cache_stats`` expose each session's hit/miss/eviction counters.
        """
        with self._inflight_lock:
            executed, deduplicated = self._executed, self._deduplicated
            in_flight = len(self._inflight)
        return {
            "executed": executed,
            "deduplicated": deduplicated,
            "in_flight": in_flight,
            "logs": self.catalog.describe(),
        }

    def _check_open(self) -> None:
        if self._closed:
            raise ProtocolError(
                "the service is closed", code=ErrorCode.INVALID_REQUEST
            )

    def close(self) -> None:
        """Stop accepting work and wait for in-flight queries to finish."""
        self._closed = True
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "PerfXplainService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _completed(response: ServiceResponse) -> "Future[ServiceResponse]":
    future: "Future[ServiceResponse]" = Future()
    future.set_result(response)
    return future
