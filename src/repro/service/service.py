"""The concurrent query service: the executor behind every entry point.

:class:`PerfXplainService` turns a :class:`~repro.service.catalog.LogCatalog`
into a long-running query-answering service.  Requests — the versioned
dataclasses of :mod:`repro.service.protocol` — are executed on a thread
pool, with two guarantees:

* **Determinism.**  Read traffic to one log — queries, batches,
  evaluations — runs *concurrently* under the log's reader-writer lock,
  and every response is still bit-identical to what a direct synchronous
  session call would return (the concurrency tests and the service
  benchmark assert this).  The session layer makes that possible: locked
  caches, compute-once-per-key de-duplication and per-technique
  serialisation for the one stateful step (see ``docs/concurrency.md``).
  Appends and first-load take the write side, so mutations remain
  strictly single-writer.
* **Deduplication.**  Identical in-flight queries (same log, query text
  modulo whitespace, width, technique, flags) share one execution: the
  second submitter gets the first one's future.  Combined with the
  session's explanation memoisation, a burst of identical questions —
  the common case for heavy query traffic — costs one computation.

Failures never escape as exceptions: every error is folded into a wire
:class:`~repro.service.protocol.ErrorResponse` with a stable code, so one
code path serves programmatic callers, the CLI and the HTTP endpoint.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import AbstractContextManager, ExitStack
from typing import Any

from repro.core.api import PerfXplain
from repro.core.pairshard import default_shard_pool
from repro.core.evaluation import evaluate_precision_vs_width
from repro.core.report import ReportEntry
from repro.core.reporting import sweep_to_dict
from repro.diff.engine import DiffEngine
from repro.exceptions import ReproError
from repro.service.catalog import LogCatalog
from repro.service.protocol import (
    AppendRequest,
    AppendResponse,
    BatchRequest,
    BatchResponse,
    DiffRequest,
    DiffResponse,
    ErrorCode,
    ErrorResponse,
    EvaluateRequest,
    EvaluateResponse,
    ProtocolError,
    QueryRequest,
    QueryResponse,
    ServiceRequest,
    ServiceResponse,
    check_protocol_version,
)
from repro.service.metrics import LatencyRecorder

#: Request types the latency recorder pre-seeds, so ``/v1/metrics`` lists
#: every kind the service can execute even before its first sample.
REQUEST_KINDS = ("append", "batch", "diff", "evaluate", "query")


def _derive_max_workers() -> int:
    """Thread-pool size matched to the machine: cpu_count clamped to 2..16.

    The floor of 2 keeps read concurrency observable even on one-core
    containers; the ceiling of 16 stops a large host from spawning more
    request threads than the per-log work can usefully overlap.
    """
    return max(2, min(16, os.cpu_count() or 2))


#: Default worker-thread count for the request pool (machine-derived).
DEFAULT_MAX_WORKERS = _derive_max_workers()


class PerfXplainService:
    """Execute protocol requests concurrently against a log catalog.

    :param catalog: the named logs (and their shared sessions) to serve.
    :param max_workers: thread-pool size for query execution; ``None``
        uses :data:`DEFAULT_MAX_WORKERS` (derived from ``os.cpu_count()``).
    :param serialize_reads: compatibility/baseline mode — take the
        exclusive write side of the per-log lock for read requests too,
        restoring the old one-query-at-a-time-per-log behaviour.  The
        concurrent-read benchmark uses it as its sequential baseline.
    """

    def __init__(
        self,
        catalog: LogCatalog,
        max_workers: int | None = None,
        serialize_reads: bool = False,
    ) -> None:
        if max_workers is None:
            max_workers = DEFAULT_MAX_WORKERS
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.catalog = catalog
        self.max_workers = max_workers
        self.serialize_reads = serialize_reads
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="perfxplain"
        )
        self._inflight_lock = threading.Lock()
        self._inflight: dict[tuple, Future] = {}
        self._executed = 0
        self._deduplicated = 0
        self._closed = False
        self._latency = LatencyRecorder(kinds=REQUEST_KINDS)

    def _read_side(self, name: str) -> AbstractContextManager[None]:
        """The lock context a read request holds for one log.

        The shared read side normally; the exclusive write side when the
        service was built with ``serialize_reads=True``.
        """
        lock = self.catalog.lock(name)
        return lock.write_locked() if self.serialize_reads else lock.read_locked()

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def execute(self, request: ServiceRequest) -> ServiceResponse:
        """Execute any protocol request synchronously; never raises.

        Query requests still flow through the pool (and its dedup map), so
        a synchronous caller and a concurrent batch racing on the same
        question share one execution.
        """
        if isinstance(request, QueryRequest):
            return self.submit(request).result()
        if isinstance(request, BatchRequest):
            return self.execute_batch(request)
        if isinstance(request, EvaluateRequest):
            return self._execute_evaluate(request)
        if isinstance(request, AppendRequest):
            return self._execute_append(request)
        if isinstance(request, DiffRequest):
            return self._execute_diff(request)
        return ErrorResponse(
            code=ErrorCode.INVALID_REQUEST,
            message=f"unsupported request type {type(request).__name__}",
        )

    def submit(self, request: QueryRequest) -> "Future[ServiceResponse]":
        """Schedule one query; identical in-flight queries share a future."""
        try:
            self._check_open()
            check_protocol_version(request.protocol_version)
        except ProtocolError as error:
            return _completed(ErrorResponse.for_error(error))
        key = request.canonical_key()
        with self._inflight_lock:
            existing = self._inflight.get(key)
            if existing is not None:
                self._deduplicated += 1
                return existing
            try:
                future: "Future[ServiceResponse]" = self._pool.submit(
                    self._run_query, key, request
                )
            except RuntimeError:
                # close() raced this submission and shut the pool down.
                return _completed(
                    ErrorResponse(
                        code=ErrorCode.INVALID_REQUEST,
                        message="the service is closed",
                    )
                )
            self._inflight[key] = future
            return future

    def execute_batch(self, batch: BatchRequest) -> BatchResponse | ErrorResponse:
        """Execute a batch concurrently; responses come in request order."""
        try:
            self._check_open()
            check_protocol_version(batch.protocol_version)
        except ProtocolError as error:
            return ErrorResponse.for_error(error)
        start = time.perf_counter()
        futures = [self.submit(request) for request in batch.requests]
        responses = tuple(future.result() for future in futures)
        self._latency.record("batch", (time.perf_counter() - start) * 1000.0)
        return BatchResponse(responses=responses)

    # ------------------------------------------------------------------ #
    # request handlers
    # ------------------------------------------------------------------ #

    def _run_query(self, key: tuple, request: QueryRequest) -> ServiceResponse:
        try:
            return self._execute_query(request)
        finally:
            with self._inflight_lock:
                self._inflight.pop(key, None)

    def _execute_query(self, request: QueryRequest) -> ServiceResponse:
        overall = time.perf_counter()
        try:
            session = self.catalog.session(request.log)
            start = time.perf_counter()
            # Read side of the per-log lock: queries to one log overlap
            # with each other but never with an append or first load.  The
            # session keeps concurrent readers bit-identical to sequential
            # ones (locked caches + compute-once-per-key de-duplication).
            with self._read_side(request.log):
                resolved = session.resolve(request.query)
                explanation = session.explain(
                    resolved,
                    width=request.width,
                    technique=request.technique,
                    auto_despite=request.auto_despite,
                )
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            entry = ReportEntry.for_query(resolved, explanation, elapsed_ms=elapsed_ms)
            response: ServiceResponse = QueryResponse(log=request.log, entry=entry)
        except ReproError as error:
            response = ErrorResponse.for_error(error)
        except Exception as error:  # defensive: plugins may raise anything
            response = ErrorResponse(
                code=ErrorCode.INTERNAL_ERROR,
                message=f"{type(error).__name__}: {error}",
            )
        with self._inflight_lock:
            self._executed += 1
        self._latency.record("query", (time.perf_counter() - overall) * 1000.0)
        return response

    def _execute_evaluate(self, request: EvaluateRequest) -> ServiceResponse:
        start = time.perf_counter()
        try:
            check_protocol_version(request.protocol_version)
            log = self.catalog.log(request.log)
            with self._read_side(request.log):
                # Evaluation builds its own facade: the sweep re-splits the
                # log per repetition, which must not pollute (or race with)
                # the shared query session's caches.  It only reads the
                # served log, so it holds the read side like any query.
                facade = PerfXplain(log, seed=request.seed)
                query = facade.resolve(request.query)
                if request.techniques:
                    techniques = [
                        facade.technique(name) for name in request.techniques
                    ]
                else:
                    techniques = list(facade.techniques().values())
                sweep = evaluate_precision_vs_width(
                    log,
                    query,
                    techniques,
                    widths=request.widths,
                    repetitions=request.repetitions,
                    seed=request.seed,
                )
            with self._inflight_lock:
                self._executed += 1
            self._latency.record("evaluate", (time.perf_counter() - start) * 1000.0)
            assert query.first_id is not None and query.second_id is not None
            return EvaluateResponse(
                log=request.log,
                query=str(query),
                first_id=query.first_id,
                second_id=query.second_id,
                results=sweep_to_dict(sweep),
            )
        except ReproError as error:
            return ErrorResponse.for_error(error)
        except Exception as error:  # defensive: plugins may raise anything
            return ErrorResponse(
                code=ErrorCode.INTERNAL_ERROR,
                message=f"{type(error).__name__}: {error}",
            )

    def _execute_append(self, request: AppendRequest) -> ServiceResponse:
        """Grow a served log in place.

        Appends are mutations, not queries: they are never deduplicated
        (retrying a successful append is a ``duplicate_record`` error by
        design) and run synchronously under the write side of the log's
        reader-writer lock via :meth:`LogCatalog.append` — concurrent
        readers drain first, and no reader observes a half-applied batch.
        """
        start = time.perf_counter()
        try:
            self._check_open()
            check_protocol_version(request.protocol_version)
            snapshot = self.catalog.append(
                request.log, jobs=request.jobs, tasks=request.tasks
            )
            with self._inflight_lock:
                self._executed += 1
            self._latency.record("append", (time.perf_counter() - start) * 1000.0)
            return AppendResponse(
                log=request.log,
                appended_jobs=len(request.jobs),
                appended_tasks=len(request.tasks),
                num_jobs=snapshot["num_jobs"],
                num_tasks=snapshot["num_tasks"],
                versions=snapshot["versions"],
            )
        except ReproError as error:
            return ErrorResponse.for_error(error)
        except Exception as error:  # defensive: plugins may raise anything
            return ErrorResponse(
                code=ErrorCode.INTERNAL_ERROR,
                message=f"{type(error).__name__}: {error}",
            )

    def diff(
        self,
        before: str,
        after: str,
        width: int | None = None,
        technique: str = "perfxplain",
    ) -> ServiceResponse:
        """Compare two served logs; convenience wrapper over :meth:`execute`."""
        return self.execute(
            DiffRequest(before=before, after=after, width=width, technique=technique)
        )

    def _execute_diff(self, request: DiffRequest) -> ServiceResponse:
        """Run a cross-log diff over two served logs.

        The diff reads *both* logs, so it holds both read sides at once.
        Deadlock discipline: the two locks are acquired in sorted-name
        order (two concurrent diffs can never hold each other's first lock
        while waiting on the second), and a self-diff (``before == after``)
        takes the log's lock exactly once — the per-log RWLock is
        writer-preferring, so a queued append between two read acquisitions
        of the same lock would deadlock a re-entrant reader.
        """
        start = time.perf_counter()
        try:
            self._check_open()
            check_protocol_version(request.protocol_version)
            # Resolve (and lazily load) both logs before taking the read
            # sides: first load takes the entry's write side internally.
            before_log = self.catalog.log(request.before)
            after_log = self.catalog.log(request.after)
            with ExitStack() as stack:
                for name in sorted({request.before, request.after}):
                    stack.enter_context(self._read_side(name))
                engine = DiffEngine(
                    before_log,
                    after_log,
                    config=self.catalog.config,
                    seed=self.catalog.seed,
                    technique=request.technique,
                    width=request.width,
                )
                report = engine.report()
            with self._inflight_lock:
                self._executed += 1
            self._latency.record("diff", (time.perf_counter() - start) * 1000.0)
            return DiffResponse(
                before=request.before, after=request.after, report=report
            )
        except ReproError as error:
            return ErrorResponse.for_error(error)
        except Exception as error:  # defensive: plugins may raise anything
            return ErrorResponse(
                code=ErrorCode.INTERNAL_ERROR,
                message=f"{type(error).__name__}: {error}",
            )

    # ------------------------------------------------------------------ #
    # introspection and lifecycle
    # ------------------------------------------------------------------ #

    def stats(self) -> dict[str, Any]:
        """Service counters plus the per-log catalog snapshot.

        ``executed`` counts requests that actually ran; ``deduplicated``
        counts submissions that piggybacked on an identical in-flight
        query; ``logs`` is :meth:`LogCatalog.describe`, whose per-log
        ``cache_stats`` expose each session's hit/miss/eviction counters.
        """
        with self._inflight_lock:
            executed, deduplicated = self._executed, self._deduplicated
            in_flight = len(self._inflight)
        return {
            "executed": executed,
            "deduplicated": deduplicated,
            "in_flight": in_flight,
            "logs": self.catalog.describe(),
        }

    def metrics(self) -> dict[str, Any]:
        """Latency percentiles per request type plus every counter family.

        ``latency_ms`` maps request type (``query``/``batch``/``evaluate``/
        ``append``/``diff``) to nearest-rank p50/p95/p99 over a ring of
        recent samples (every kind in :data:`REQUEST_KINDS` is listed even
        before its first request, with ``count: 0`` and null percentiles);
        ``shard_pool`` exposes the persistent pair-shard pool's
        fork/reuse counters; ``logs`` carries each session's cache,
        invalidation and compute-once (de-duplication) counters.
        """
        report = self.stats()
        report["max_workers"] = self.max_workers
        report["serialize_reads"] = self.serialize_reads
        report["latency_ms"] = self._latency.snapshot()
        report["shard_pool"] = default_shard_pool().stats()
        return report

    def _check_open(self) -> None:
        if self._closed:
            raise ProtocolError(
                "the service is closed", code=ErrorCode.INVALID_REQUEST
            )

    def close(self) -> None:
        """Stop accepting work and wait for in-flight queries to finish."""
        self._closed = True
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "PerfXplainService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _completed(response: ServiceResponse) -> "Future[ServiceResponse]":
    future: "Future[ServiceResponse]" = Future()
    future.set_result(response)
    return future
