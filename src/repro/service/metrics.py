"""Per-request-type latency recording for the query service.

The service records one wall-clock sample (monotonic clock) per executed
request into a :class:`LatencyRecorder` — a small, thread-safe set of ring
buffers, one per request type.  Recording is O(1) and allocation-free on
the hot path (``deque(maxlen=...)`` drops the oldest sample for us);
percentiles are computed only when a snapshot is asked for, so idle
recorders cost nothing.

Percentiles use the nearest-rank definition: for *n* sorted samples the
p-th percentile is the sample at index ``ceil(p/100 * n) - 1``.  It is
exact for the windows involved (no interpolation), which keeps the numbers
stable across platforms and easy to assert in tests.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Any, Iterable

#: Samples retained per request type; old samples fall off the ring.
DEFAULT_WINDOW = 1024

#: Percentiles reported by :meth:`LatencyRecorder.snapshot`.
PERCENTILES = (50, 95, 99)


def nearest_rank(sorted_samples: list[float], percentile: float) -> float:
    """The nearest-rank percentile of an already-sorted, non-empty list."""
    if not sorted_samples:
        raise ValueError("percentile of an empty sample set is undefined")
    rank = math.ceil(percentile / 100.0 * len(sorted_samples))
    return sorted_samples[max(rank, 1) - 1]


class LatencyRecorder:
    """Thread-safe per-kind latency ring buffers with percentile snapshots.

    :param window: samples retained per request type; the percentile
        snapshot describes the last ``window`` requests of each kind.
    :param kinds: request types to pre-seed with empty rings, so they show
        up in :meth:`snapshot` (with ``count: 0`` and null percentiles)
        before their first sample arrives.  The default pre-seeds nothing —
        an unused recorder snapshots to ``{}``.

    Kinds are otherwise fully dynamic: :meth:`record` creates a ring for a
    never-seen request type on the fly, so callers recording a new or
    unknown kind never raise.
    """

    __slots__ = ("_window", "_lock", "_samples", "_counts")

    def __init__(
        self, window: int = DEFAULT_WINDOW, kinds: Iterable[str] = ()
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self._window = window
        self._lock = threading.Lock()
        self._samples: dict[str, deque[float]] = {}
        self._counts: dict[str, int] = {}
        for kind in kinds:
            self._samples[str(kind)] = deque(maxlen=window)
            self._counts[str(kind)] = 0

    def record(self, kind: str, elapsed_ms: float) -> None:
        """Record one sample (milliseconds) for a request type."""
        with self._lock:
            ring = self._samples.get(kind)
            if ring is None:
                ring = self._samples[kind] = deque(maxlen=self._window)
                self._counts[kind] = 0
            ring.append(float(elapsed_ms))
            self._counts[kind] += 1

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Percentiles per request type over each kind's current window.

        ``count`` is the all-time number of samples recorded for the kind;
        ``window`` is how many of those back the percentiles below.  A
        pre-seeded kind that has not seen a sample yet reports ``count: 0``
        with null percentiles.
        """
        with self._lock:
            frozen = {
                kind: (self._counts[kind], list(ring))
                for kind, ring in self._samples.items()
            }
        report: dict[str, dict[str, Any]] = {}
        for kind, (count, samples) in sorted(frozen.items()):
            samples.sort()
            entry: dict[str, Any] = {"count": count, "window": len(samples)}
            for percentile in PERCENTILES:
                entry[f"p{percentile}_ms"] = (
                    nearest_rank(samples, percentile) if samples else None
                )
            entry["max_ms"] = samples[-1] if samples else None
            report[kind] = entry
        return report
