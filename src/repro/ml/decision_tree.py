"""A small C4.5-flavoured decision tree.

PerfXplain is *not* a decision tree (Section 4.2 discusses the differences:
the pair of interest must always be classified as "observed", and the output
must be a single readable conjunction scored by precision *and* generality),
but it borrows the information-gain criterion.  This classifier exists so
tests and ablation benchmarks can contrast the two: a tree reaches similar
accuracy but produces path-shaped rules that need not apply to the pair of
interest at all.

Training runs on the columnar pipeline of :mod:`repro.ml.matrix`: ``fit``
encodes the rows into a :class:`~repro.ml.matrix.FeatureMatrix` once, and
every node operates on an index subset (a
:class:`~repro.ml.matrix.MatrixView`) of that encoding.  Numeric columns
are sorted once globally; each split filters the parent's order stably
instead of re-extracting and re-sorting — the split search is a
prefix-count sweep.  Split ties are broken explicitly by
:func:`repro.ml.splits.prefer_candidate` (gain, then feature name, then
operator), never by iteration accidents.

The frozen row-oriented reference implementation lives in
:mod:`repro.ml.rowpath`; the differential suite asserts both produce
identical trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.ml.matrix import FeatureMatrix, MatrixView
from repro.ml.splits import CandidatePredicate, prefer_candidate


@dataclass
class DecisionTreeNode:
    """One node of the tree: either a leaf or an internal split."""

    prediction: bool | None = None
    probability: float = 0.5
    split: CandidatePredicate | None = None
    left: "DecisionTreeNode | None" = None   # split satisfied
    right: "DecisionTreeNode | None" = None  # split not satisfied

    @property
    def is_leaf(self) -> bool:
        """Whether the node is a leaf."""
        return self.split is None


@dataclass
class DecisionTree:
    """Binary classifier over feature dictionaries.

    :param max_depth: maximum tree depth.
    :param min_samples_split: do not split nodes smaller than this.
    :param min_gain: minimum information gain required to split.
    """

    max_depth: int = 6
    min_samples_split: int = 10
    min_gain: float = 1e-6
    numeric: Mapping[str, bool] = field(default_factory=dict)
    root: DecisionTreeNode | None = None

    def fit(
        self,
        rows: Sequence[Mapping[str, Any]],
        labels: Sequence[bool],
        numeric: Mapping[str, bool] | None = None,
    ) -> "DecisionTree":
        """Fit the tree; returns ``self`` for chaining."""
        if len(rows) != len(labels):
            raise ValueError("rows and labels must have the same length")
        if not rows:
            raise ValueError("cannot fit a tree on zero examples")
        if numeric is not None:
            self.numeric = dict(numeric)
        matrix = FeatureMatrix.from_rows(rows, numeric=self.numeric)
        label_bits = bytearray(1 if label else 0 for label in labels)
        self.root = self._build(matrix.view(), label_bits, depth=0)
        return self

    def _build(
        self,
        view: MatrixView,
        labels: bytearray,
        depth: int,
    ) -> DecisionTreeNode:
        indices = view.indices
        positives = sum(map(labels.__getitem__, indices))
        probability = positives / len(indices)
        leaf = DecisionTreeNode(prediction=probability >= 0.5, probability=probability)
        if (
            depth >= self.max_depth
            or len(indices) < self.min_samples_split
            or positives == 0
            or positives == len(indices)
        ):
            return leaf

        best: CandidatePredicate | None = None
        for feature in view.matrix.features:
            candidate = view.best_predicate(feature, labels, positives=positives)
            if candidate is not None and prefer_candidate(candidate, best):
                best = candidate
        if best is None or best.gain < self.min_gain:
            return leaf

        raw = view.matrix.column(best.feature).raw
        satisfied = bytearray(view.matrix.n_rows)
        n_left = 0
        for index in indices:
            if best.satisfied_by(raw[index]):
                satisfied[index] = 1
                n_left += 1
        if n_left == 0 or n_left == len(indices):
            return leaf

        left_view, right_view = view.split(satisfied)
        node = DecisionTreeNode(probability=probability, split=best)
        node.left = self._build(left_view, labels, depth + 1)
        node.right = self._build(right_view, labels, depth + 1)
        return node

    def predict_proba(self, row: Mapping[str, Any]) -> float:
        """Probability that the row belongs to the positive class."""
        if self.root is None:
            raise ValueError("the tree has not been fitted")
        node = self.root
        while not node.is_leaf:
            assert node.split is not None
            if node.split.satisfied_by(row.get(node.split.feature)):
                node = node.left  # type: ignore[assignment]
            else:
                node = node.right  # type: ignore[assignment]
        return node.probability

    def predict(self, row: Mapping[str, Any]) -> bool:
        """Predicted class for one row."""
        return self.predict_proba(row) >= 0.5

    def depth(self) -> int:
        """Actual depth of the fitted tree (0 for a single leaf)."""
        def walk(node: DecisionTreeNode | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))
        return walk(self.root)
