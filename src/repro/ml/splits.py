"""Best-predicate search per feature (the C4.5-style building block).

Given one feature column (with possible missing values), binary labels and
optionally a *required value* (the value the pair of interest has — any
predicate that the pair of interest does not satisfy is useless for an
explanation), this module finds the atomic predicate ``feature op constant``
with the highest information gain.

* nominal features: only equality predicates are considered (as in the
  paper);
* numeric features: equality plus threshold predicates (``<=`` and ``>``)
  over midpoints between consecutive distinct values;
* missing values never satisfy a predicate (the same semantics the PXQL
  evaluator uses), so they always fall in the "outside" partition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Sequence

from repro.ml.entropy import binary_entropy

#: Sentinel meaning "no required value constraint".
_UNCONSTRAINED = object()

#: Operators candidate predicates may use.
NOMINAL_OPERATORS = ("==",)
NUMERIC_OPERATORS = ("==", "<=", ">")


@dataclass(frozen=True)
class CandidatePredicate:
    """An atomic predicate over one feature, with its information gain."""

    feature: str
    operator: str
    value: Any
    gain: float

    def satisfied_by(self, value: Any) -> bool:
        """Whether a feature value satisfies this predicate (missing -> False)."""
        return _satisfies(value, self.operator, self.value)


def _satisfies(value: Any, operator: str, constant: Any) -> bool:
    if value is None:
        return False
    if operator == "==":
        return value == constant
    if operator == "!=":
        return value != constant
    try:
        if operator == "<=":
            return value <= constant
        if operator == "<":
            return value < constant
        if operator == ">=":
            return value >= constant
        if operator == ">":
            return value > constant
    except TypeError:
        return False
    raise ValueError(f"unknown operator: {operator!r}")


def _partition_entropy(pos_in: int, n_in: int, pos_total: int, n_total: int) -> float:
    """Weighted entropy of the two partitions (inside / outside)."""
    n_out = n_total - n_in
    pos_out = pos_total - pos_in
    result = 0.0
    if n_in:
        result += n_in / n_total * binary_entropy(pos_in / n_in)
    if n_out:
        result += n_out / n_total * binary_entropy(pos_out / n_out)
    return result


def best_predicate_for_feature(
    feature: str,
    values: Sequence[Any],
    labels: Sequence[bool],
    numeric: bool,
    required_value: Any = _UNCONSTRAINED,
) -> CandidatePredicate | None:
    """The highest-information-gain predicate for one feature.

    :param feature: feature name (copied into the result).
    :param values: feature value per example (``None`` = missing).
    :param labels: ``True`` for positive examples.
    :param numeric: whether the feature is numeric (enables thresholds).
    :param required_value: if given, only predicates satisfied by this value
        are considered (and a missing required value rules out the feature
        entirely).
    :returns: the best candidate, or ``None`` when no valid predicate exists
        (e.g. all values missing, or the required value is missing).
    """
    if len(values) != len(labels):
        raise ValueError("values and labels must have the same length")
    constrained = required_value is not _UNCONSTRAINED
    if constrained and required_value is None:
        return None

    n_total = len(values)
    if n_total == 0:
        return None
    pos_total = sum(1 for label in labels if label)
    parent_entropy = binary_entropy(pos_total / n_total)

    best: CandidatePredicate | None = None

    def consider(operator: str, constant: Any, pos_in: int, n_in: int) -> None:
        nonlocal best
        if n_in == 0 or n_in == n_total:
            return
        if constrained and not _satisfies(required_value, operator, constant):
            return
        gain = parent_entropy - _partition_entropy(pos_in, n_in, pos_total, n_total)
        gain = max(0.0, gain)
        if best is None or gain > best.gain + 1e-12:
            best = CandidatePredicate(feature, operator, constant, gain)

    # Equality candidates (both nominal and numeric features).
    counts: dict[Any, list[int]] = {}
    for value, label in zip(values, labels):
        if value is None:
            continue
        bucket = counts.setdefault(value, [0, 0])
        bucket[0] += 1
        if label:
            bucket[1] += 1
    if constrained:
        # Only the pair of interest's own value can appear in an equality
        # predicate that the pair satisfies.
        equality_values = [required_value] if required_value in counts else []
        if required_value not in counts and not numeric:
            # The pair's value never occurs in the examples: an equality
            # predicate would create a degenerate partition, so skip it.
            equality_values = []
    else:
        equality_values = list(counts)
    for constant in equality_values:
        n_in, pos_in = counts[constant][0], counts[constant][1]
        consider("==", constant, pos_in, n_in)

    if not numeric:
        return best

    # Threshold candidates over midpoints between distinct numeric values.
    present = [
        (float(value), bool(label))
        for value, label in zip(values, labels)
        if value is not None and isinstance(value, (int, float)) and not isinstance(value, bool)
        and not math.isnan(float(value))
    ]
    if len(present) < 2:
        return best
    present.sort(key=lambda item: item[0])
    distinct: list[tuple[float, int, int]] = []  # (value, count, positives)
    for value, label in present:
        if distinct and distinct[-1][0] == value:
            _, count, positives = distinct[-1]
            distinct[-1] = (value, count + 1, positives + (1 if label else 0))
        else:
            distinct.append((value, 1, 1 if label else 0))
    if len(distinct) < 2:
        return best

    cumulative_n = 0
    cumulative_pos = 0
    for index in range(len(distinct) - 1):
        value, count, positives = distinct[index]
        cumulative_n += count
        cumulative_pos += positives
        threshold = (value + distinct[index + 1][0]) / 2.0
        # ``<= threshold``: the inside partition is the prefix.
        consider("<=", threshold, cumulative_pos, cumulative_n)
        # ``> threshold``: the same bipartition, but the predicate is
        # satisfied by the suffix — this matters when a required value
        # constrains which side the pair of interest must be on.
        consider(">", threshold, pos_total - cumulative_pos, n_total - cumulative_n)

    return best
