"""Best-predicate search per feature (the C4.5-style building block).

Given one feature column (with possible missing values), binary labels and
optionally a *required value* (the value the pair of interest has — any
predicate that the pair of interest does not satisfy is useless for an
explanation), this module finds the atomic predicate ``feature op constant``
with the highest information gain.

* nominal features: only equality predicates are considered (as in the
  paper);
* numeric features: equality plus threshold predicates (``<=`` and ``>``)
  over midpoints between consecutive distinct values;
* missing values never satisfy a predicate (the same semantics the PXQL
  evaluator uses), so they always fall in the "outside" partition.

:func:`best_predicate_for_feature` is a thin row-oriented adapter kept for
callers that hold plain value lists; the search itself runs on the columnar
encoding of :mod:`repro.ml.matrix`, which pre-sorts every numeric column
once and sweeps thresholds with prefix counts over index subsets.

Tie-breaking is explicit and deterministic.  Candidates are always
considered in a canonical order — equality predicates first (constants in
:func:`canonical_value_key` order), then thresholds in ascending midpoint
order with ``<=`` before ``>`` — and a candidate only replaces the
incumbent when its gain exceeds it by more than :data:`GAIN_TIE_TOLERANCE`.
Within a gain tie the earliest candidate in canonical order therefore wins,
independent of row order.  :func:`prefer_candidate` applies the same policy
across features: gain first, then feature name, then operator rank.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Sequence

#: Sentinel meaning "no required value constraint".
_UNCONSTRAINED = object()

#: Operators candidate predicates may use.
NOMINAL_OPERATORS = ("==",)
NUMERIC_OPERATORS = ("==", "<=", ">")

#: Gains closer than this are considered tied and broken deterministically.
GAIN_TIE_TOLERANCE = 1e-12

#: Deterministic preference order between operators on a gain tie:
#: equality is the most readable, then the two threshold directions.
OPERATOR_RANK = {"==": 0, "<=": 1, ">": 2, "!=": 3, "<": 4, ">=": 5}


@dataclass(frozen=True)
class CandidatePredicate:
    """An atomic predicate over one feature, with its information gain."""

    feature: str
    operator: str
    value: Any
    gain: float

    def satisfied_by(self, value: Any) -> bool:
        """Whether a feature value satisfies this predicate (missing -> False)."""
        return _satisfies(value, self.operator, self.value)


def _satisfies(value: Any, operator: str, constant: Any) -> bool:
    if value is None:
        return False
    if operator == "==":
        return value == constant
    if operator == "!=":
        return value != constant
    try:
        if operator == "<=":
            return value <= constant
        if operator == "<":
            return value < constant
        if operator == ">=":
            return value >= constant
        if operator == ">":
            return value > constant
    except TypeError:
        return False
    raise ValueError(f"unknown operator: {operator!r}")


def xlog2(count: int) -> float:
    """``k * log2(k)`` (0 for ``k <= 0``): the gain formula's building block.

    All information gains are computed as
    ``(parts(n, pos) - parts(n_in, pos_in) - parts(n_out, pos_out)) / n``
    with ``parts(n, p) = xlog2(n) - xlog2(p) - xlog2(n - p)`` — an exact
    rewrite of "parent entropy minus size-weighted partition entropies"
    whose terms depend only on integer counts.  The columnar fast path
    tabulates ``xlog2`` once per fit and turns every candidate's gain into
    a handful of table lookups; because both paths evaluate the identical
    expression tree, their gains agree bit for bit.
    """
    if count <= 0:
        return 0.0
    return count * math.log2(count)


def build_xlog2_table(n: int) -> list[float]:
    """``[xlog2(0), ..., xlog2(n)]`` — entry ``k`` equals ``xlog2(k)`` exactly."""
    table = [0.0] * (n + 1)
    log2 = math.log2
    for count in range(1, n + 1):
        table[count] = count * log2(count)
    return table


def group_parts(n: int, positives: int) -> float:
    """``xlog2(n) - xlog2(pos) - xlog2(n - pos)``: one group's entropy times n."""
    return xlog2(n) - xlog2(positives) - xlog2(n - positives)


def canonical_value_key(value: Any):
    """A total, row-order-independent sort key over mixed feature values.

    Numbers (including bools — ``True == 1``) are keyed by their float
    value, so values that compare equal across types share one key no
    matter which representative was seen first.  Everything else is grouped
    by type name, so incomparable types never meet; within a type ``repr``
    gives a stable order.  Only *determinism* matters here — the key fixes
    which equality constant wins a gain tie, regardless of the order rows
    arrived in.
    """
    if isinstance(value, (bool, int, float)):
        as_float = float(value)
        if not math.isnan(as_float):
            return ("0num", as_float)
        return ("0nan", repr(value))
    return (type(value).__name__, repr(value))


def prefer_candidate(
    candidate: CandidatePredicate, incumbent: CandidatePredicate | None
) -> bool:
    """Whether ``candidate`` should replace ``incumbent`` across features.

    The explicit tie-break policy: higher gain wins; gains within
    :data:`GAIN_TIE_TOLERANCE` are broken by feature name, then operator
    rank.  Keeping this in one place makes the tree's split selection
    deterministic instead of an accident of iteration order.
    """
    if incumbent is None:
        return True
    if candidate.gain > incumbent.gain + GAIN_TIE_TOLERANCE:
        return True
    if incumbent.gain > candidate.gain + GAIN_TIE_TOLERANCE:
        return False
    if candidate.feature != incumbent.feature:
        return candidate.feature < incumbent.feature
    return OPERATOR_RANK.get(candidate.operator, 99) < OPERATOR_RANK.get(
        incumbent.operator, 99
    )


class CandidateSelector:
    """Accumulates candidate predicates for one feature, keeping the best.

    Candidates must be offered in canonical order (equality constants in
    :func:`canonical_value_key` order, then thresholds ascending with ``<=``
    before ``>``); the first candidate within a gain tie then wins, which
    makes the result invariant under row permutation.
    """

    __slots__ = ("feature", "n_total", "pos_total", "parent_parts",
                 "constrained", "required_value", "best")

    def __init__(
        self,
        feature: str,
        n_total: int,
        pos_total: int,
        constrained: bool,
        required_value: Any,
    ) -> None:
        self.feature = feature
        self.n_total = n_total
        self.pos_total = pos_total
        self.parent_parts = group_parts(n_total, pos_total)
        self.constrained = constrained
        self.required_value = required_value
        self.best: CandidatePredicate | None = None

    def consider(self, operator: str, constant: Any, pos_in: int, n_in: int) -> None:
        """Offer one candidate; degenerate or constraint-violating ones are skipped."""
        if n_in == 0 or n_in == self.n_total:
            return
        if self.constrained and not _satisfies(self.required_value, operator, constant):
            return
        n_out = self.n_total - n_in
        pos_out = self.pos_total - pos_in
        # ``parent - (in + out)``: the commutative inner sum keeps the gain
        # of a ``>`` threshold bitwise equal to its ``<=`` twin's.
        parts = self.parent_parts - (
            group_parts(n_in, pos_in) + group_parts(n_out, pos_out)
        )
        gain = parts / self.n_total if parts > 0.0 else 0.0
        if self.best is None or gain > self.best.gain + GAIN_TIE_TOLERANCE:
            self.best = CandidatePredicate(self.feature, operator, constant, gain)


def best_predicate_for_feature(
    feature: str,
    values: Sequence[Any],
    labels: Sequence[bool],
    numeric: bool,
    required_value: Any = _UNCONSTRAINED,
) -> CandidatePredicate | None:
    """The highest-information-gain predicate for one feature.

    This is the row-oriented adapter: it encodes the column once (via
    :class:`repro.ml.matrix.FeatureColumn`) and delegates to the columnar
    search, so callers holding plain value lists get identical results to
    callers operating on a :class:`~repro.ml.matrix.FeatureMatrix`.

    :param feature: feature name (copied into the result).
    :param values: feature value per example (``None`` = missing).
    :param labels: ``True`` for positive examples.
    :param numeric: whether the feature is numeric (enables thresholds).
    :param required_value: if given, only predicates satisfied by this value
        are considered (and a missing required value rules out the feature
        entirely).
    :returns: the best candidate, or ``None`` when no valid predicate exists
        (e.g. all values missing, or the required value is missing).
    """
    from repro.ml.matrix import FeatureColumn, search_column

    if len(values) != len(labels):
        raise ValueError("values and labels must have the same length")
    if required_value is not _UNCONSTRAINED and required_value is None:
        return None
    if not values:
        return None

    column = FeatureColumn.from_values(feature, values, numeric)
    label_bits = bytearray(1 if label else 0 for label in labels)
    return search_column(
        column,
        indices=range(len(values)),
        order=column.order,
        labels=label_bits,
        required_value=required_value,
    )


#: Re-exported for the columnar module (kept private-by-convention here).
__all__ = [
    "CandidatePredicate",
    "CandidateSelector",
    "GAIN_TIE_TOLERANCE",
    "NOMINAL_OPERATORS",
    "NUMERIC_OPERATORS",
    "OPERATOR_RANK",
    "best_predicate_for_feature",
    "canonical_value_key",
    "prefer_candidate",
]
