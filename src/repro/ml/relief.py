"""RReliefF: Relief feature importance for a numeric target.

The RuleOfThumb baseline (Section 5.1) ranks job features by their global
impact on runtime using the Relief technique, citing Robnik-Sikonja and
Kononenko's adaptation of Relief for regression (RReliefF).  This module
implements that algorithm for mixed numeric/nominal features with missing
values, which is exactly why the paper chose Relief.

Instances are encoded once into a :class:`~repro.ml.matrix.FeatureMatrix`;
the O(sample x instances x features) distance loop then runs on integer
codes and float arrays instead of repeated dict lookups and ``isinstance``
checks.  Per-feature differences are unchanged: numeric values differ by
their range-normalised distance, nominal (or non-numeric) values by
equality, and a missing value on either side contributes the uninformative
prior of 0.5.
"""

from __future__ import annotations

import random
from typing import Any, Mapping, Sequence

from repro.exceptions import ReproError
from repro.ml.matrix import FeatureColumn, FeatureMatrix


def _column_range(column: FeatureColumn) -> float:
    """The value span used to normalise a numeric column's differences."""
    values = [column.floats[i] for i in range(len(column)) if column.numeric_ok[i]]
    if len(values) >= 2:
        span = max(values) - min(values)
        return span if span > 0 else 1.0
    return 1.0


def _column_diff(column: FeatureColumn, a: int, b: int, value_range: float) -> float:
    """Normalised difference of one feature between two instances (0..1)."""
    if column.numeric and column.numeric_ok[a] and column.numeric_ok[b]:
        return min(1.0, abs(column.floats[a] - column.floats[b]) / value_range)
    code_a = column.codes[a]
    code_b = column.codes[b]
    if code_a < 0 or code_b < 0:
        # With a missing value the difference is unknown; 0.5 is the
        # expected difference under an uninformative prior.
        return 0.5
    return 0.0 if code_a == code_b else 1.0


def relieff_importance(
    rows: Sequence[Mapping[str, Any]],
    targets: Sequence[float],
    numeric: Mapping[str, bool],
    features: Sequence[str] | None = None,
    num_neighbors: int = 10,
    sample_size: int | None = None,
    rng: random.Random | None = None,
) -> dict[str, float]:
    """RReliefF importance weight of every feature.

    :param rows: instance feature dictionaries (missing values allowed).
    :param targets: numeric target per instance (job duration).
    :param numeric: whether each feature is numeric.
    :param features: feature names to score (defaults to the union of keys).
    :param num_neighbors: number of nearest neighbours per sampled instance.
    :param sample_size: number of instances to sample (defaults to all).
    :param rng: random generator for sampling.
    :returns: mapping from feature name to importance (higher = more
        influential on the target); features that never vary get weight 0.
    """
    if len(rows) != len(targets):
        raise ReproError("rows and targets must have the same length")
    if len(rows) < 2:
        return {feature: 0.0 for feature in (features or [])}
    rng = rng if rng is not None else random.Random(0)
    if features is None:
        names: set[str] = set()
        for row in rows:
            names.update(row)
        features = sorted(names)

    matrix = FeatureMatrix.from_rows(rows, numeric=numeric, features=features)
    columns = [matrix.column(feature) for feature in features]
    ranges = [
        _column_range(column) if column.numeric else 1.0 for column in columns
    ]
    target_values = [float(t) for t in targets]
    target_span = max(target_values) - min(target_values)
    target_span = target_span if target_span > 0 else 1.0

    count = len(rows)
    if sample_size is None or sample_size >= count:
        sampled = list(range(count))
    else:
        sampled = rng.sample(range(count), sample_size)

    n_features = len(features)
    n_dc = 0.0
    n_da = [0.0] * n_features
    n_dcda = [0.0] * n_features

    for index in sampled:
        distances = []
        for other in range(count):
            if other == index:
                continue
            distance = 0.0
            for position in range(n_features):
                distance += _column_diff(
                    columns[position], index, other, ranges[position]
                )
            distances.append((distance, other))
        distances.sort(key=lambda item: item[0])
        neighbors = distances[:num_neighbors]
        if not neighbors:
            continue
        # Rank-based neighbour weights that sum to 1.
        raw_weights = [1.0 / (rank + 1) for rank in range(len(neighbors))]
        weight_sum = sum(raw_weights)
        for (dist, other), raw in zip(neighbors, raw_weights):
            weight = raw / weight_sum
            target_diff = abs(target_values[index] - target_values[other]) / target_span
            n_dc += target_diff * weight
            for position in range(n_features):
                feature_diff = _column_diff(
                    columns[position], index, other, ranges[position]
                )
                n_da[position] += feature_diff * weight
                n_dcda[position] += target_diff * feature_diff * weight

    m = float(len(sampled))
    importance: dict[str, float] = {}
    for position, feature in enumerate(features):
        if n_dc <= 0 or m - n_dc <= 0:
            importance[feature] = 0.0
            continue
        importance[feature] = n_dcda[position] / n_dc - (
            (n_da[position] - n_dcda[position]) / (m - n_dc)
        )
    return importance
