"""RReliefF: Relief feature importance for a numeric target.

The RuleOfThumb baseline (Section 5.1) ranks job features by their global
impact on runtime using the Relief technique, citing Robnik-Sikonja and
Kononenko's adaptation of Relief for regression (RReliefF).  This module
implements that algorithm for mixed numeric/nominal features with missing
values, which is exactly why the paper chose Relief.
"""

from __future__ import annotations

import random
from typing import Any, Mapping, Sequence

from repro.exceptions import ReproError


def _feature_ranges(
    rows: Sequence[Mapping[str, Any]], features: Sequence[str], numeric: Mapping[str, bool]
) -> dict[str, float]:
    ranges: dict[str, float] = {}
    for feature in features:
        if not numeric.get(feature, False):
            continue
        values = [
            float(row[feature])
            for row in rows
            if row.get(feature) is not None and isinstance(row[feature], (int, float))
            and not isinstance(row[feature], bool)
        ]
        if len(values) >= 2:
            span = max(values) - min(values)
            ranges[feature] = span if span > 0 else 1.0
        else:
            ranges[feature] = 1.0
    return ranges


def _diff(
    feature: str,
    a: Mapping[str, Any],
    b: Mapping[str, Any],
    numeric: Mapping[str, bool],
    ranges: Mapping[str, float],
) -> float:
    """Normalised difference of one feature between two instances (0..1)."""
    va, vb = a.get(feature), b.get(feature)
    if va is None or vb is None:
        # With a missing value the difference is unknown; 0.5 is the
        # expected difference under an uninformative prior.
        return 0.5
    if numeric.get(feature, False) and isinstance(va, (int, float)) and isinstance(vb, (int, float)) \
            and not isinstance(va, bool) and not isinstance(vb, bool):
        return min(1.0, abs(float(va) - float(vb)) / ranges.get(feature, 1.0))
    return 0.0 if va == vb else 1.0


def relieff_importance(
    rows: Sequence[Mapping[str, Any]],
    targets: Sequence[float],
    numeric: Mapping[str, bool],
    features: Sequence[str] | None = None,
    num_neighbors: int = 10,
    sample_size: int | None = None,
    rng: random.Random | None = None,
) -> dict[str, float]:
    """RReliefF importance weight of every feature.

    :param rows: instance feature dictionaries (missing values allowed).
    :param targets: numeric target per instance (job duration).
    :param numeric: whether each feature is numeric.
    :param features: feature names to score (defaults to the union of keys).
    :param num_neighbors: number of nearest neighbours per sampled instance.
    :param sample_size: number of instances to sample (defaults to all).
    :param rng: random generator for sampling.
    :returns: mapping from feature name to importance (higher = more
        influential on the target); features that never vary get weight 0.
    """
    if len(rows) != len(targets):
        raise ReproError("rows and targets must have the same length")
    if len(rows) < 2:
        return {feature: 0.0 for feature in (features or [])}
    rng = rng if rng is not None else random.Random(0)
    if features is None:
        names: set[str] = set()
        for row in rows:
            names.update(row)
        features = sorted(names)

    ranges = _feature_ranges(rows, features, numeric)
    target_values = [float(t) for t in targets]
    target_span = max(target_values) - min(target_values)
    target_span = target_span if target_span > 0 else 1.0

    count = len(rows)
    if sample_size is None or sample_size >= count:
        sampled = list(range(count))
    else:
        sampled = rng.sample(range(count), sample_size)

    n_dc = 0.0
    n_da = {feature: 0.0 for feature in features}
    n_dcda = {feature: 0.0 for feature in features}

    for index in sampled:
        anchor = rows[index]
        distances = []
        for other in range(count):
            if other == index:
                continue
            distance = sum(_diff(f, anchor, rows[other], numeric, ranges) for f in features)
            distances.append((distance, other))
        distances.sort(key=lambda item: item[0])
        neighbors = distances[:num_neighbors]
        if not neighbors:
            continue
        # Rank-based neighbour weights that sum to 1.
        raw_weights = [1.0 / (rank + 1) for rank in range(len(neighbors))]
        weight_sum = sum(raw_weights)
        for (dist, other), raw in zip(neighbors, raw_weights):
            weight = raw / weight_sum
            target_diff = abs(target_values[index] - target_values[other]) / target_span
            n_dc += target_diff * weight
            for feature in features:
                feature_diff = _diff(feature, anchor, rows[other], numeric, ranges)
                n_da[feature] += feature_diff * weight
                n_dcda[feature] += target_diff * feature_diff * weight

    m = float(len(sampled))
    importance: dict[str, float] = {}
    for feature in features:
        if n_dc <= 0 or m - n_dc <= 0:
            importance[feature] = 0.0
            continue
        importance[feature] = n_dcda[feature] / n_dc - (
            (n_da[feature] - n_dcda[feature]) / (m - n_dc)
        )
    return importance
