"""Frozen row-oriented training path (reference implementation).

This module preserves the pre-columnar training algorithm: split search
re-extracts the feature column from dict rows and re-sorts every numeric
column at **every call**, and the reference decision tree re-runs that
search per node — O(nodes x features x n log n) overall.  It exists for two
reasons:

* the differential suite (``tests/ml/test_columnar_equivalence.py``)
  asserts the columnar pipeline of :mod:`repro.ml.matrix` produces
  *identical* predicates, trees and probabilities;
* the throughput benchmark (``benchmarks/test_tree_fit_throughput.py``)
  measures the columnar speedup against this baseline.

Do not "optimise" this module — it is the fixed point the fast path is
proven against.  It shares the candidate-selection primitives
(:class:`~repro.ml.splits.CandidateSelector`,
:func:`~repro.ml.splits.prefer_candidate`) with the live path so both
apply the same explicit tie-breaking policy and bit-identical gain
arithmetic; only the *data layout and per-node work* differ.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.ml.splits import (
    CandidatePredicate,
    CandidateSelector,
    _UNCONSTRAINED,
    canonical_value_key,
    prefer_candidate,
)


def rowpath_best_predicate_for_feature(
    feature: str,
    values: Sequence[Any],
    labels: Sequence[bool],
    numeric: bool,
    required_value: Any = _UNCONSTRAINED,
) -> CandidatePredicate | None:
    """The row-oriented best-predicate search (frozen reference).

    Semantically identical to
    :func:`repro.ml.splits.best_predicate_for_feature`; the implementation
    is the original per-call extract-count-sort algorithm.
    """
    if len(values) != len(labels):
        raise ValueError("values and labels must have the same length")
    constrained = required_value is not _UNCONSTRAINED
    if constrained and required_value is None:
        return None

    n_total = len(values)
    if n_total == 0:
        return None
    pos_total = sum(1 for label in labels if label)
    selector = CandidateSelector(feature, n_total, pos_total, constrained,
                                 required_value)

    # Equality candidates (both nominal and numeric features), counted from
    # scratch and offered in canonical value order.
    counts: dict[Any, list[int]] = {}
    for value, label in zip(values, labels):
        if value is None:
            continue
        bucket = counts.setdefault(value, [0, 0])
        bucket[0] += 1
        if label:
            bucket[1] += 1
    if constrained:
        # Only the pair of interest's own value can appear in an equality
        # predicate that the pair satisfies.
        equality_values = [required_value] if required_value in counts else []
    else:
        equality_values = sorted(counts, key=canonical_value_key)
    for constant in equality_values:
        n_in, pos_in = counts[constant][0], counts[constant][1]
        selector.consider("==", constant, pos_in, n_in)

    if not numeric:
        return selector.best

    # Threshold candidates over midpoints between distinct numeric values —
    # re-sorted on every call.
    present = [
        (float(value), bool(label))
        for value, label in zip(values, labels)
        if value is not None and isinstance(value, (int, float))
        and not isinstance(value, bool) and not math.isnan(float(value))
    ]
    if len(present) < 2:
        return selector.best
    present.sort(key=lambda item: item[0])
    distinct: list[tuple[float, int, int]] = []  # (value, count, positives)
    for value, label in present:
        if distinct and distinct[-1][0] == value:
            _, count, positives = distinct[-1]
            distinct[-1] = (value, count + 1, positives + (1 if label else 0))
        else:
            distinct.append((value, 1, 1 if label else 0))
    if len(distinct) < 2:
        return selector.best

    cumulative_n = 0
    cumulative_pos = 0
    for index in range(len(distinct) - 1):
        value, count, positives = distinct[index]
        cumulative_n += count
        cumulative_pos += positives
        threshold = (value + distinct[index + 1][0]) / 2.0
        selector.consider("<=", threshold, cumulative_pos, cumulative_n)
        selector.consider(">", threshold, pos_total - cumulative_pos,
                          n_total - cumulative_n)

    return selector.best


@dataclass
class RowPathDecisionTree:
    """The pre-columnar decision tree (frozen reference).

    Mirrors :class:`repro.ml.decision_tree.DecisionTree` exactly — same
    stopping rules, same explicit tie-breaking — but trains the original
    way: filtered row lists per node, per-node column extraction and
    re-sorting.
    """

    max_depth: int = 6
    min_samples_split: int = 10
    min_gain: float = 1e-6
    numeric: Mapping[str, bool] = field(default_factory=dict)
    root: Any = None

    def fit(
        self,
        rows: Sequence[Mapping[str, Any]],
        labels: Sequence[bool],
        numeric: Mapping[str, bool] | None = None,
    ) -> "RowPathDecisionTree":
        """Fit the tree; returns ``self`` for chaining."""
        from repro.ml.decision_tree import DecisionTreeNode  # shared node type

        if len(rows) != len(labels):
            raise ValueError("rows and labels must have the same length")
        if not rows:
            raise ValueError("cannot fit a tree on zero examples")
        if numeric is not None:
            self.numeric = dict(numeric)
        features: set[str] = set()
        for row in rows:
            features.update(row)
        self._node_type = DecisionTreeNode
        self.root = self._build(list(rows), list(labels), sorted(features), depth=0)
        return self

    def _build(self, rows, labels, features, depth):
        node_type = self._node_type
        positives = sum(1 for label in labels if label)
        probability = positives / len(labels)
        leaf = node_type(prediction=probability >= 0.5, probability=probability)
        if (
            depth >= self.max_depth
            or len(rows) < self.min_samples_split
            or positives == 0
            or positives == len(labels)
        ):
            return leaf

        best: CandidatePredicate | None = None
        for feature in features:
            values = [row.get(feature) for row in rows]
            candidate = rowpath_best_predicate_for_feature(
                feature, values, labels, numeric=self.numeric.get(feature, False)
            )
            if candidate is not None and prefer_candidate(candidate, best):
                best = candidate
        if best is None or best.gain < self.min_gain:
            return leaf

        left_rows, left_labels, right_rows, right_labels = [], [], [], []
        for row, label in zip(rows, labels):
            if best.satisfied_by(row.get(best.feature)):
                left_rows.append(row)
                left_labels.append(label)
            else:
                right_rows.append(row)
                right_labels.append(label)
        if not left_rows or not right_rows:
            return leaf

        node = node_type(probability=probability, split=best)
        node.left = self._build(left_rows, left_labels, features, depth + 1)
        node.right = self._build(right_rows, right_labels, features, depth + 1)
        return node

    def predict_proba(self, row: Mapping[str, Any]) -> float:
        """Probability that the row belongs to the positive class."""
        if self.root is None:
            raise ValueError("the tree has not been fitted")
        node = self.root
        while not node.is_leaf:
            if node.split.satisfied_by(row.get(node.split.feature)):
                node = node.left
            else:
                node = node.right
        return node.probability

    def predict(self, row: Mapping[str, Any]) -> bool:
        """Predicted class for one row."""
        return self.predict_proba(row) >= 0.5
