"""Columnar training-data encoding for the ML layer.

The row-oriented training path re-extracted every feature column from dict
rows and re-sorted every numeric column *at every tree node*, making split
search O(nodes x features x n log n).  This module encodes a training set
once and lets every consumer (the decision tree, the explainer's greedy
clause growth, RReliefF) operate on **index subsets** of that encoding:

* :class:`FeatureColumn` — one feature's values encoded as integer codes
  (for equality counting), a ``float`` array plus validity mask (for
  threshold sweeps) and **one global stable sort of the numeric order**;
* :class:`FeatureMatrix` — the per-feature columns of a dataset plus row
  count;
* :class:`MatrixView` — an index subset of a matrix.  Narrowing a view
  filters each cached numeric order *stably*, so the global sort is reused
  at every node instead of re-sorting;
* :func:`search_column` — the best-predicate search over one column and one
  index subset: equality candidates from code counts, threshold candidates
  from a prefix-count sweep over the presorted order.

Missing values (``None``) carry code ``-1`` and are excluded from the
numeric order; at evaluation time they never *satisfy* any predicate,
matching the PXQL semantics.  (One accounting quirk is inherited from the
row path for exact equivalence: a constrained ``>`` threshold's gain
counts the suffix as the complement of the ``<=`` prefix, so rows with
missing or non-numeric values are tallied on the ``>`` side there even
though ``satisfied_by`` later rejects them.)  Booleans are valid equality
constants but never yield threshold candidates (mirroring the
``isinstance(..., bool)`` guard the row path used), and ``NaN`` never
enters the numeric order.

Arrays come from the stdlib :mod:`array` module; no third-party numerics
are required.
"""

from __future__ import annotations

import math
from array import array
from itertools import accumulate, compress, islice
from operator import ne
from typing import Any, Iterable, Mapping, Sequence

from repro.ml.splits import (
    CandidatePredicate,
    GAIN_TIE_TOLERANCE,
    _UNCONSTRAINED,
    build_xlog2_table,
    canonical_value_key,
)

#: Shared empty order for nominal columns.
_EMPTY_ORDER: array = array("l")


class FeatureColumn:
    """One feature's values, encoded once for repeated subset searches."""

    __slots__ = ("name", "numeric", "raw", "floats", "numeric_ok", "order",
                 "clean", "_codes", "_code_of", "_eq_values", "_eq_rank",
                 "_canonical_codes")

    def __init__(self, name: str, numeric: bool) -> None:
        self.name = name
        self.numeric = numeric
        self.raw: list[Any] = []
        #: Per-row float value (0.0 where not threshold-eligible).
        self.floats: array = array("d")
        #: Per-row flag: value participates in threshold candidates.
        self.numeric_ok: bytearray = bytearray()
        #: Row indices with ``numeric_ok`` set, stably sorted by value.
        self.order: array = array("l")
        #: A numeric column is *clean* when every present value is
        #: threshold-eligible: equality buckets then coincide with the
        #: sorted order's runs, enabling the fused fast path (which never
        #: touches the lazily-built code tables below).
        self.clean: bool = False
        self._codes: array | None = None
        self._code_of: dict[Any, int] | None = None
        self._eq_values: list[Any] | None = None
        self._eq_rank: list[int] | None = None
        self._canonical_codes: list[int] | None = None

    @classmethod
    def from_values(cls, name: str, values: Sequence[Any], numeric: bool) -> "FeatureColumn":
        """Encode one column of raw values (``None`` = missing)."""
        column = cls(name, numeric)
        raw = values if isinstance(values, list) else list(values)
        column.raw = raw
        if numeric:
            n = len(raw)
            floats = array("d", bytes(8 * n))
            ok = bytearray(n)
            missing = 0
            for index, value in enumerate(raw):
                # Exact-type fast paths for the overwhelmingly common cases;
                # the fallback preserves the isinstance/bool/NaN semantics
                # for exotic numeric subclasses.
                kind = type(value)
                if kind is float:
                    if value == value:  # not NaN
                        floats[index] = value
                        ok[index] = 1
                elif kind is int:
                    floats[index] = float(value)
                    ok[index] = 1
                elif value is None:
                    missing += 1
                elif isinstance(value, (int, float)) and not isinstance(value, bool):
                    as_float = float(value)
                    if not math.isnan(as_float):
                        floats[index] = as_float
                        ok[index] = 1
            column.floats = floats
            column.numeric_ok = ok
            column.order = array(
                "l", sorted(compress(range(n), ok), key=floats.__getitem__)
            )
            column.clean = len(column.order) == n - missing
        return column

    def _encode_values(self) -> None:
        codes: array = array("l")
        code_of: dict[Any, int] = {}
        eq_values: list[Any] = []
        append = codes.append
        for value in self.raw:
            if value is None:
                append(-1)
                continue
            code = code_of.get(value, -1)
            if code < 0:
                code = len(eq_values)
                code_of[value] = code
                eq_values.append(value)
            append(code)
        self._codes = codes
        self._code_of = code_of
        self._eq_values = eq_values

    @property
    def codes(self) -> array:
        """Per-row value code (``-1`` = missing); built on first use."""
        if self._codes is None:
            self._encode_values()
        return self._codes

    @property
    def code_of(self) -> dict[Any, int]:
        """Value -> code (dict equality, so ``1``/``1.0`` share a code)."""
        if self._code_of is None:
            self._encode_values()
        return self._code_of

    @property
    def eq_values(self) -> list[Any]:
        """Code -> representative value (first seen)."""
        if self._eq_values is None:
            self._encode_values()
        return self._eq_values

    @property
    def eq_rank(self) -> list[int]:
        """Code -> canonical rank, fixing equality tie-breaks deterministically."""
        if self._eq_rank is None:
            eq_values = self.eq_values
            by_key = sorted(
                range(len(eq_values)),
                key=lambda code: canonical_value_key(eq_values[code]),
            )
            rank = [0] * len(by_key)
            for position, code in enumerate(by_key):
                rank[code] = position
            self._eq_rank = rank
        return self._eq_rank

    @property
    def canonical_codes(self) -> list[int]:
        """All codes in canonical value order (the equality candidate order)."""
        if self._canonical_codes is None:
            rank = self.eq_rank
            ordered = [0] * len(rank)
            for code, position in enumerate(rank):
                ordered[position] = code
            self._canonical_codes = ordered
        return self._canonical_codes

    def __len__(self) -> int:
        return len(self.raw)


class FeatureMatrix:
    """A dataset encoded column-by-column for index-subset training."""

    __slots__ = ("columns", "n_rows", "_gain_table")

    def __init__(self, columns: dict[str, FeatureColumn], n_rows: int) -> None:
        self.columns = columns
        self.n_rows = n_rows
        self._gain_table: list[float] | None = None

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Mapping[str, Any]],
        numeric: Mapping[str, bool] | None = None,
        features: Sequence[str] | None = None,
    ) -> "FeatureMatrix":
        """Encode dict rows; features default to the sorted union of keys."""
        numeric = numeric if numeric is not None else {}
        if features is None:
            names: set[str] = set()
            for row in rows:
                names.update(row)
            features = sorted(names)
        columns = {
            name: FeatureColumn.from_values(
                name, [row.get(name) for row in rows], bool(numeric.get(name, False))
            )
            for name in features
        }
        return cls(columns, len(rows))

    @classmethod
    def from_columns(
        cls,
        values_by_feature: Mapping[str, Sequence[Any]],
        numeric: Mapping[str, bool],
        n_rows: int | None = None,
    ) -> "FeatureMatrix":
        """Encode pre-extracted columns (all must share one row count)."""
        columns: dict[str, FeatureColumn] = {}
        for name, values in values_by_feature.items():
            column = FeatureColumn.from_values(name, values, bool(numeric.get(name, False)))
            if n_rows is None:
                n_rows = len(column)
            elif len(column) != n_rows:
                raise ValueError(
                    f"column {name!r} has {len(column)} rows, expected {n_rows}"
                )
            columns[name] = column
        return cls(columns, n_rows if n_rows is not None else 0)

    @property
    def features(self) -> tuple[str, ...]:
        """Feature names in encoding order."""
        return tuple(self.columns)

    def is_numeric(self, feature: str) -> bool:
        """Whether a feature's column carries threshold candidates."""
        return self.columns[feature].numeric

    def column(self, feature: str) -> FeatureColumn:
        """The encoded column for one feature."""
        return self.columns[feature]

    @property
    def gain_table(self) -> list[float]:
        """The shared ``xlog2`` table covering every possible subset count."""
        if self._gain_table is None:
            self._gain_table = build_xlog2_table(self.n_rows)
        return self._gain_table

    def view(self, indices: Iterable[int] | None = None) -> "MatrixView":
        """A view over a subset of rows (all rows when ``indices`` is None)."""
        if indices is None:
            return MatrixView(self, array("l", range(self.n_rows)), full=True)
        return MatrixView(self, array("l", indices))


class MatrixView:
    """An index subset of a :class:`FeatureMatrix`.

    Views cache, per numeric feature, the subset's row order — produced by
    stably filtering either the parent view's order (when narrowing) or the
    column's global order.  No per-node sorting ever happens.
    """

    __slots__ = ("matrix", "indices", "_orders", "_member", "_full")

    def __init__(
        self,
        matrix: FeatureMatrix,
        indices: array,
        orders: dict[str, array] | None = None,
        full: bool = False,
    ) -> None:
        self.matrix = matrix
        self.indices = indices
        self._orders: dict[str, array] = orders if orders is not None else {}
        self._member: bytearray | None = None
        self._full = full

    def __len__(self) -> int:
        return len(self.indices)

    def _membership(self) -> bytearray:
        if self._member is None:
            member = bytearray(self.matrix.n_rows)
            for index in self.indices:
                member[index] = 1
            self._member = member
        return self._member

    def order_for(self, feature: str) -> array:
        """The subset's rows in ascending numeric order (stable)."""
        cached = self._orders.get(feature)
        if cached is None:
            column = self.matrix.column(feature)
            if self._full:
                cached = column.order
            else:
                member = self._membership()
                cached = array(
                    "l",
                    compress(column.order, map(member.__getitem__, column.order)),
                )
            self._orders[feature] = cached
        return cached

    def best_predicate(
        self,
        feature: str,
        labels: bytearray,
        required_value: Any = _UNCONSTRAINED,
        positives: int | None = None,
    ) -> CandidatePredicate | None:
        """Best predicate for one feature over this view's rows.

        ``positives`` (the view's positive-label count) is the same for
        every feature — callers sweeping many features should compute it
        once and pass it in.
        """
        column = self.matrix.column(feature)
        order = self.order_for(feature) if column.numeric else _EMPTY_ORDER
        return search_column(column, self.indices, order, labels, required_value,
                             table=self.matrix.gain_table, positives=positives)

    def narrow(self, keep: bytearray) -> "MatrixView":
        """The sub-view of rows flagged in ``keep`` (orders filtered stably)."""
        keep_of = keep.__getitem__
        indices = array("l", compress(self.indices, map(keep_of, self.indices)))
        orders = {
            feature: array("l", compress(order, map(keep_of, order)))
            for feature, order in self._orders.items()
        }
        return MatrixView(self.matrix, indices, orders)

    def split(self, keep: bytearray) -> "tuple[MatrixView, MatrixView]":
        """Partition into (flagged, unflagged) sub-views, stably."""
        keep_of = keep.__getitem__

        def partition(rows: Sequence[int]) -> tuple[array, array]:
            flags = bytes(map(keep_of, rows))
            inside = array("l", compress(rows, flags))
            outside = array("l", compress(rows, map((1).__sub__, flags)))
            return inside, outside

        left, right = partition(self.indices)
        left_orders: dict[str, array] = {}
        right_orders: dict[str, array] = {}
        for feature, order in self._orders.items():
            left_orders[feature], right_orders[feature] = partition(order)
        return (
            MatrixView(self.matrix, left, left_orders),
            MatrixView(self.matrix, right, right_orders),
        )


def search_column(
    column: FeatureColumn,
    indices: Sequence[int],
    order: Sequence[int],
    labels: bytearray,
    required_value: Any = _UNCONSTRAINED,
    table: Sequence[float] | None = None,
    positives: int | None = None,
) -> CandidatePredicate | None:
    """Best-predicate search over one column restricted to ``indices``.

    The hot path of tree fitting and clause growing: candidate gains are
    computed inline (the arithmetic mirrors
    :meth:`~repro.ml.splits.CandidateSelector.consider` expression by
    expression, so results are bit-identical to the row path), and in the
    unconstrained case ``>`` thresholds are skipped entirely — a ``>``
    candidate induces the same bipartition as its ``<=`` twin at the same
    midpoint, their gains are exactly equal (IEEE addition is commutative),
    and the first-wins tie rule always keeps ``<=``.  With a required value
    the satisfied side is decided per midpoint instead, preserving the row
    path's candidate sequence exactly.

    :param column: the encoded feature column.
    :param indices: row indices of the current subset (any order).
    :param order: the subset's threshold-eligible rows in ascending value
        order (ignored for nominal columns).
    :param labels: full-length positive-label bitmap (indexed by row id).
    :param required_value: optional constraint — only predicates satisfied
        by this value are considered.
    :param table: a ``xlog2`` lookup table covering ``0..n_total`` (built
        locally when omitted — callers fitting many subsets should share
        one, e.g. :attr:`FeatureMatrix.gain_table`).
    :returns: the best candidate, or ``None`` when no valid predicate exists.
    """
    n_total = len(indices)
    if n_total == 0:
        return None
    constrained = required_value is not _UNCONSTRAINED
    if constrained and required_value is None:
        return None
    if table is None:
        table = build_xlog2_table(n_total)

    if column.clean and not constrained:
        # Clean numeric column: equality buckets coincide with the sorted
        # order's runs, so one fused pass yields both candidate families.
        return _search_clean_numeric(column, indices, order, labels, n_total,
                                     table, positives)

    codes = column.codes
    n_codes = len(column.eq_values)
    pos_total = 0
    # Per-code (count, positives), packed as ``positives << 32 | count`` so
    # the counting pass costs one update per present row.  Small
    # cardinalities use a flat list (no hashing, no per-node sort);
    # high-cardinality columns fall back to a dict over present codes.
    flat = n_codes <= 512 or n_codes <= n_total
    counts: Any = [0] * n_codes if flat else {}
    if flat:
        for index in indices:
            code = codes[index]
            if labels[index]:
                pos_total += 1
                if code >= 0:
                    counts[code] += _PACKED_POSITIVE
            elif code >= 0:
                counts[code] += 1
    else:
        counts_get = counts.get
        for index in indices:
            code = codes[index]
            if labels[index]:
                pos_total += 1
                if code >= 0:
                    counts[code] = counts_get(code, 0) + _PACKED_POSITIVE
            elif code >= 0:
                counts[code] = counts_get(code, 0) + 1

    parent_parts = table[n_total] - table[pos_total] - table[n_total - pos_total]
    tolerance = GAIN_TIE_TOLERANCE
    best_gain = -1.0
    best_operator: str | None = None
    best_constant: Any = None

    # Equality candidates, in canonical value order (deterministic ties).
    if constrained:
        # Only the required value itself can appear in an equality predicate
        # the pair of interest satisfies; an absent value would create a
        # degenerate partition and is skipped.  ``required == required``
        # filters NaN, which satisfies no equality.
        try:
            code = column.code_of.get(required_value, -1)
        except TypeError:  # unhashable required value: never stored
            code = -1
        if code < 0:
            packed = 0
        elif flat:
            packed = counts[code]
        else:
            packed = counts.get(code, 0)
        if packed and required_value == required_value:
            equality_candidates = [(code, required_value)]
        else:
            equality_candidates = []
    else:
        eq_values = column.eq_values
        if flat:
            ordered = column.canonical_codes
        else:
            rank = column.eq_rank
            ordered = sorted(counts, key=rank.__getitem__)
        equality_candidates = [(code, eq_values[code]) for code in ordered]
    for code, constant in equality_candidates:
        packed = counts[code] if flat else counts.get(code, 0)
        if not packed:
            continue
        n_in = packed & _PACKED_COUNT_MASK
        if n_in == n_total:
            continue
        pos_in = packed >> 32
        # Inline gain: same expression tree as CandidateSelector.consider.
        n_out = n_total - n_in
        pos_out = pos_total - pos_in
        parts = parent_parts - (
            (table[n_in] - table[pos_in] - table[n_in - pos_in])
            + (table[n_out] - table[pos_out] - table[n_out - pos_out])
        )
        gain = parts / n_total if parts > 0.0 else 0.0
        if best_operator is None or gain > best_gain + tolerance:
            best_gain = gain
            best_operator = "=="
            best_constant = constant

    if not column.numeric or len(order) < 2:
        return _finalize(column.name, best_operator, best_constant, best_gain)

    # Threshold candidates over midpoints between consecutive distinct
    # values of the presorted subset (prefix counts, no re-sorting).
    if constrained:
        # The required value fixes which side of every midpoint is usable.
        # Non-numeric (and NaN) required values satisfy no threshold at all
        # — mirroring ``_satisfies`` returning False on TypeError.
        if not isinstance(required_value, (int, float)) or required_value != required_value:
            return _finalize(column.name, best_operator, best_constant, best_gain)

    floats = column.floats
    iterator = iter(order)
    first = next(iterator)
    previous = floats[first]
    cumulative_n = 1
    cumulative_pos = labels[first]
    for index in iterator:
        value = floats[index]
        if value != previous:
            threshold = (previous + value) / 2.0
            previous = value
            # ``<= threshold``: the inside partition is the prefix;
            # ``> threshold`` is the same bipartition from the suffix side.
            if not constrained:
                n_in = cumulative_n
                pos_in = cumulative_pos
                operator = "<="
            elif required_value <= threshold:
                n_in = cumulative_n
                pos_in = cumulative_pos
                operator = "<="
            else:
                n_in = n_total - cumulative_n
                pos_in = pos_total - cumulative_pos
                operator = ">"
            # Inline gain: same expression tree as CandidateSelector.consider.
            n_out = n_total - n_in
            pos_out = pos_total - pos_in
            parts = parent_parts - (
                (table[n_in] - table[pos_in] - table[n_in - pos_in])
                + (table[n_out] - table[pos_out] - table[n_out - pos_out])
            )
            gain = parts / n_total if parts > 0.0 else 0.0
            if best_operator is None or gain > best_gain + tolerance:
                best_gain = gain
                best_operator = operator
                best_constant = threshold
        if labels[index]:
            cumulative_pos += 1
        cumulative_n += 1

    return _finalize(column.name, best_operator, best_constant, best_gain)


#: Packed per-code counters: positives in the high bits, count in the low.
_PACKED_POSITIVE = (1 << 32) + 1
_PACKED_COUNT_MASK = (1 << 32) - 1


def _search_clean_numeric(
    column: FeatureColumn,
    indices: Sequence[int],
    order: Sequence[int],
    labels: bytearray,
    n_total: int,
    table: Sequence[float],
    positives: int | None = None,
) -> CandidatePredicate | None:
    """Fused unconstrained search over a clean numeric column.

    Every present value is threshold-eligible, so the presorted subset
    order enumerates the equality buckets as runs of equal values — in
    ascending order, which for numbers *is* the canonical candidate order.
    One C-level pass builds the value and prefix-positive lists; a C-level
    adjacent compare finds the run boundaries; equality candidates then
    thresholds are evaluated from the prefix sums via ``xlog2`` table
    lookups, preserving the general path's candidate sequence (and
    bit-identical gains) exactly.
    """
    label_of = labels.__getitem__
    pos_total = sum(map(label_of, indices)) if positives is None else positives
    n_present = len(order)
    if n_present == 0:
        return None
    parent_parts = table[n_total] - table[pos_total] - table[n_total - pos_total]
    tolerance = GAIN_TIE_TOLERANCE
    best_gain = -1.0
    best_operator: str | None = None
    best_constant: Any = None

    values = list(map(column.floats.__getitem__, order))
    prefix = list(accumulate(map(label_of, order)))
    # Positions where a new run of equal values starts (C-level adjacent
    # compare: values[i] != values[i+1] marks position i+1 as a boundary).
    bounds = list(
        compress(range(1, n_present), map(ne, values, islice(values, 1, None)))
    )

    # Equality candidates: one per run, ascending (canonical) order.  The
    # constant is the run's *raw* value (not its float image), so an
    # integer column yields ``== 3`` here just like the general path.
    raw = column.raw
    start = 0
    for end in bounds + [n_present]:
        n_in = end - start
        if n_in != n_total:
            pos_in = prefix[end - 1] - (prefix[start - 1] if start else 0)
            # Inline gain: same expression tree as CandidateSelector.consider.
            n_out = n_total - n_in
            pos_out = pos_total - pos_in
            parts = parent_parts - (
                (table[n_in] - table[pos_in] - table[n_in - pos_in])
                + (table[n_out] - table[pos_out] - table[n_out - pos_out])
            )
            gain = parts / n_total if parts > 0.0 else 0.0
            if best_operator is None or gain > best_gain + tolerance:
                best_gain = gain
                best_operator = "=="
                best_constant = raw[order[start]]
        start = end

    # Threshold candidates at every run boundary, ascending.  ``>`` twins
    # are skipped: same bipartition, exactly equal gain, ``<=`` wins the
    # first-wins tie (see search_column).
    for bound in bounds:
        n_in = bound
        pos_in = prefix[bound - 1]
        threshold = (values[bound - 1] + values[bound]) / 2.0
        # Inline gain: same expression tree as CandidateSelector.consider.
        n_out = n_total - n_in
        pos_out = pos_total - pos_in
        parts = parent_parts - (
            (table[n_in] - table[pos_in] - table[n_in - pos_in])
            + (table[n_out] - table[pos_out] - table[n_out - pos_out])
        )
        gain = parts / n_total if parts > 0.0 else 0.0
        if best_operator is None or gain > best_gain + tolerance:
            best_gain = gain
            best_operator = "<="
            best_constant = threshold

    return _finalize(column.name, best_operator, best_constant, best_gain)


def _finalize(
    feature: str, operator: str | None, constant: Any, gain: float
) -> CandidatePredicate | None:
    if operator is None:
        return None
    return CandidatePredicate(feature, operator, constant, gain)
