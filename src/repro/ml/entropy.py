"""Entropy and information gain.

These follow the definitions in Section 4.2 of the paper: for a set of
examples ``P`` with a fraction ``p`` of positives,
``H(P) = -p log2 p - (1-p) log2 (1-p)``, and the information gain of a
predicate ``phi`` is ``H(P) - H(P | phi)`` where the conditional entropy is
the size-weighted average of the entropies of the two partitions ``phi``
induces.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Hashable, Iterable, Sequence


def binary_entropy(positive_fraction: float) -> float:
    """Entropy of a binary distribution with the given positive fraction."""
    p = positive_fraction
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -p * math.log2(p) - (1.0 - p) * math.log2(1.0 - p)


def entropy(labels: Iterable[Hashable]) -> float:
    """Shannon entropy (bits) of an arbitrary label multiset."""
    counts = Counter(labels)
    total = sum(counts.values())
    if total == 0:
        return 0.0
    result = 0.0
    for count in counts.values():
        if count == 0:
            continue
        p = count / total
        result -= p * math.log2(p)
    return result


def information_gain(labels: Sequence[Hashable], satisfies: Sequence[bool]) -> float:
    """Information gain of the partition induced by a predicate.

    :param labels: example labels.
    :param satisfies: for each example, whether it satisfies the predicate.
    :returns: ``H(labels) - H(labels | partition)``; 0 if the partition is
        degenerate (everything on one side) or the input is empty.
    """
    if len(labels) != len(satisfies):
        raise ValueError("labels and satisfies must have the same length")
    total = len(labels)
    if total == 0:
        return 0.0
    inside = [label for label, flag in zip(labels, satisfies) if flag]
    outside = [label for label, flag in zip(labels, satisfies) if not flag]
    if not inside or not outside:
        return 0.0
    parent = entropy(labels)
    conditional = (
        len(inside) / total * entropy(inside)
        + len(outside) / total * entropy(outside)
    )
    gain = parent - conditional
    return max(0.0, gain)
