"""Machine-learning primitives implemented from scratch.

The paper reuses two standard algorithms: C4.5-style information-gain split
selection (for picking the best predicate per feature) and Relief (for the
RuleOfThumb baseline's global feature ranking).  Neither scikit-learn nor
Weka is available offline, so this package provides:

* :mod:`repro.ml.entropy` — entropy and information gain;
* :mod:`repro.ml.matrix` — the columnar training pipeline: datasets are
  encoded once (integer value codes, float arrays, one global sort per
  numeric column) and searched over index subsets;
* :mod:`repro.ml.splits` — best predicate search per feature over numeric
  and nominal values with missing-value handling and explicit,
  deterministic tie-breaking;
* :mod:`repro.ml.relief` — RReliefF feature importance for a numeric target
  (the adaptation of Relief for regression the paper cites);
* :mod:`repro.ml.decision_tree` — a small C4.5-flavoured decision tree used
  in tests and ablations to contrast plain classification with PerfXplain's
  explanation objective;
* :mod:`repro.ml.rowpath` — the frozen pre-columnar reference
  implementation, kept for differential testing and benchmarking;
* :mod:`repro.ml.ranking` — percentile-rank normalisation used when
  combining precision and generality scores.
"""

from repro.ml.entropy import binary_entropy, entropy, information_gain
from repro.ml.matrix import FeatureColumn, FeatureMatrix, MatrixView, search_column
from repro.ml.splits import (
    CandidatePredicate,
    best_predicate_for_feature,
    prefer_candidate,
)
from repro.ml.relief import relieff_importance
from repro.ml.decision_tree import DecisionTree, DecisionTreeNode
from repro.ml.ranking import percentile_ranks

__all__ = [
    "binary_entropy",
    "entropy",
    "information_gain",
    "FeatureColumn",
    "FeatureMatrix",
    "MatrixView",
    "search_column",
    "CandidatePredicate",
    "best_predicate_for_feature",
    "prefer_candidate",
    "relieff_importance",
    "DecisionTree",
    "DecisionTreeNode",
    "percentile_ranks",
]
