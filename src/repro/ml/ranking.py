"""Percentile-rank normalisation.

The paper normalises precision and generality scores before combining them:
"PerfXplain computes the precisions of all the predicates, ranks them, and
replaces the precision values with the percentile ranks" (Section 4.2).
Without this step, generality scores (which shrink quickly as explanations
grow) would be dwarfed by precision scores.
"""

from __future__ import annotations

from typing import Sequence


def percentile_ranks(values: Sequence[float]) -> list[float]:
    """Percentile rank of each value within the list, in [0, 1].

    Ties receive the same (mid) rank.  An empty list yields an empty list; a
    single value gets rank 1.0.

    >>> percentile_ranks([0.2, 0.9, 0.5])
    [0.3333333333333333, 1.0, 0.6666666666666666]
    """
    n = len(values)
    if n == 0:
        return []
    if n == 1:
        return [1.0]
    ranks = [0.0] * n
    order = sorted(range(n), key=lambda index: values[index])
    position = 0
    while position < n:
        tied_end = position
        while tied_end + 1 < n and values[order[tied_end + 1]] == values[order[position]]:
            tied_end += 1
        # Mid-rank for ties; rank counted as "number of values <= v".
        mid = (position + tied_end) / 2.0 + 1.0
        for index in order[position : tied_end + 1]:
            ranks[index] = mid / n
        position = tied_end + 1
    return ranks
