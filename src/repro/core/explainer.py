"""Algorithm 1: PerfXplain explanation generation.

The because clause is grown greedily, one atomic predicate per iteration:

1. for every candidate pair feature, find the predicate with the highest
   information gain over the current example set — restricted to predicates
   the *pair of interest* satisfies, so the explanation stays applicable;
2. compute each candidate's precision ``P(obs | p, X)`` and generality
   ``P(p | X)`` over the current set, replace both with their percentile
   ranks, and score ``w * precision_rank + (1 - w) * generality_rank``
   (``w = 0.8`` in the paper);
3. append the best-scoring predicate to the explanation and keep only the
   examples that satisfy it.

The despite clause uses the identical procedure with relevance
``P(exp | p, X)`` in place of precision (Section 4.2, "Generating the des'
clause").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from operator import and_

from repro.core.examples import (
    Label,
    TrainingExample,
    TrainingMatrix,
    construct_training_matrix,
    encode_training_examples,
    find_record,
)
from repro.core.explanation import (
    Explanation,
    evaluate_explanation,
)
from repro.core.features import FeatureLevel, FeatureSchema, infer_schema
from repro.core.pairs import PairFeatureConfig, compute_pair_features
from repro.core.pxql.ast import Comparison, Operator, Predicate, TRUE_PREDICATE
from repro.core.pxql.query import PXQLQuery
from repro.core.registry import register_explainer
from repro.exceptions import ConfigurationError, ExplanationError
from repro.logs.records import FeatureValue
from repro.logs.store import ExecutionLog
from repro.ml.ranking import percentile_ranks
from repro.ml.splits import CandidatePredicate

#: Operator symbols produced by the split search, mapped to PXQL operators.
_SPLIT_OPERATORS = {
    "==": Operator.EQ,
    "!=": Operator.NE,
    "<=": Operator.LE,
    "<": Operator.LT,
    ">=": Operator.GE,
    ">": Operator.GT,
}


@dataclass(frozen=True)
class PerfXplainConfig:
    """Tunables of the explanation-generation algorithm.

    :param width: number of atomic predicates in a clause.
    :param score_weight: weight of the precision (or relevance) percentile
        rank versus the generality rank (the paper uses 0.8).
    :param sample_size: balanced-sample size for training examples.
    :param feature_level: which pair features may appear in explanations.
    :param pair_config: pair-feature encoding parameters.
    :param min_examples: stop growing a clause when fewer related examples
        than this remain.
    :param pair_workers: processes the candidate-pair filtering is sharded
        across (``1`` = serial in-process).  Results are bit-identical for
        every worker count; this is purely a throughput knob for large
        (task-level) logs.
    """

    width: int = 3
    score_weight: float = 0.8
    sample_size: int = 2000
    feature_level: FeatureLevel = FeatureLevel.FULL
    pair_config: PairFeatureConfig = field(default_factory=PairFeatureConfig)
    min_examples: int = 4
    pair_workers: int = 1

    def __post_init__(self) -> None:
        if self.width < 0:
            raise ConfigurationError("width must be >= 0")
        if not 0.0 <= self.score_weight <= 1.0:
            raise ConfigurationError("score_weight must be in [0, 1]")
        if self.sample_size < 1:
            raise ConfigurationError("sample_size must be >= 1")
        if self.min_examples < 2:
            raise ConfigurationError("min_examples must be >= 2")
        if self.pair_workers < 1:
            raise ConfigurationError("pair_workers must be >= 1")


@register_explainer("perfxplain", override=True)
class PerfXplainExplainer:
    """Generates PerfXplain explanations for PXQL queries."""

    name = "PerfXplain"

    def __init__(self, config: PerfXplainConfig | None = None,
                 rng: random.Random | None = None) -> None:
        self.config = config if config is not None else PerfXplainConfig()
        self._rng = rng if rng is not None else random.Random(0)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def explain(
        self,
        log: ExecutionLog,
        query: PXQLQuery,
        schema: FeatureSchema | None = None,
        width: int | None = None,
        auto_despite: bool = False,
        despite_width: int | None = None,
        examples: "list[TrainingExample] | TrainingMatrix | None" = None,
    ) -> Explanation:
        """Generate an explanation for a query bound to a pair of interest.

        :param log: the log of past executions to learn from.
        :param query: a PXQL query with both pair identifiers set.
        :param schema: raw-feature schema (inferred from the log if omitted).
        :param width: because-clause width (defaults to the config's).
        :param auto_despite: also generate a ``des'`` clause (Section 4.2)
            and use it as additional context for the because clause.
        :param despite_width: width of the generated despite clause.
        :param examples: precomputed training examples for the query's
            clauses — a plain list or an already-encoded
            :class:`~repro.core.examples.TrainingMatrix` (the session layer
            shares one construction *and* one encoding across many calls).
            With ``auto_despite`` they are re-filtered by the generated
            ``des'`` extension.
        """
        if not query.has_pair:
            raise ExplanationError("the query must be bound to a pair of interest")
        schema = schema if schema is not None else self._infer_schema(log, query)
        width = width if width is not None else self.config.width
        pair_values = self._pair_values(log, query, schema)
        query.validate_against_pair(pair_values, strict=True)

        if examples is not None:
            # Encode once up front: generate_despite and the clause growth
            # below share the same columnar encoding.
            examples = self._encode(examples, schema)
        working_query = query
        despite_extension = TRUE_PREDICATE
        if auto_despite:
            despite_extension = self.generate_despite(
                log, query, schema,
                width=despite_width if despite_width is not None else width,
                pair_values=pair_values,
                examples=examples,
            )
            working_query = query.with_despite(query.despite.and_then(despite_extension))

        precomputed = examples is not None
        if examples is None:
            # Fresh construction runs the columnar pipeline end to end:
            # the TrainingMatrix is built directly from kernel output
            # columns, so _encode below is a pass-through.
            examples = construct_training_matrix(
                log, working_query, schema,
                config=self.config.pair_config,
                sample_size=self.config.sample_size,
                rng=self._rng,
                feature_level=self.config.feature_level,
                workers=self.config.pair_workers,
            )
        encoded = self._encode(examples, schema)
        if precomputed and not despite_extension.is_true:
            # Freshly constructed examples already satisfy the extension
            # (it is part of ``working_query``); shared ones must be
            # narrowed to the generated ``des'`` context.
            indices = [
                index for index, example in enumerate(encoded.examples)
                if despite_extension.evaluate(example.values)
            ]
        else:
            indices = list(range(len(encoded)))
        if not indices:
            raise ExplanationError(
                "no pair of executions in the log is related to the query; "
                "cannot generate an explanation"
            )
        because = self._grow_clause(
            encoded, indices, pair_values, width, positive_label=Label.OBSERVED
        )
        explanation = Explanation(
            because=because,
            despite=despite_extension,
            technique=self.name,
        )
        in_context = [encoded.examples[index] for index in indices]
        return explanation.with_metrics(evaluate_explanation(explanation, in_context))

    def generate_despite(
        self,
        log: ExecutionLog,
        query: PXQLQuery,
        schema: FeatureSchema | None = None,
        width: int | None = None,
        pair_values: dict[str, FeatureValue] | None = None,
        examples: "list[TrainingExample] | TrainingMatrix | None" = None,
    ) -> Predicate:
        """Generate a ``des'`` clause for an (under-specified) query.

        The despite clause is grown with the same greedy algorithm as the
        because clause but scores candidates by *relevance* — the fraction
        of matching pairs that performed as expected.
        """
        if not query.has_pair:
            raise ExplanationError("the query must be bound to a pair of interest")
        schema = schema if schema is not None else self._infer_schema(log, query)
        width = width if width is not None else self.config.width
        if pair_values is None:
            pair_values = self._pair_values(log, query, schema)

        if examples is None:
            examples = construct_training_matrix(
                log, query, schema,
                config=self.config.pair_config,
                sample_size=self.config.sample_size,
                rng=self._rng,
                feature_level=self.config.feature_level,
                workers=self.config.pair_workers,
            )
        if not examples:
            raise ExplanationError(
                "no pair of executions in the log is related to the query; "
                "cannot generate a despite clause"
            )
        encoded = self._encode(examples, schema)
        return self._grow_clause(
            encoded, list(range(len(encoded))), pair_values, width,
            positive_label=Label.EXPECTED,
            exclude_features=set(query.despite.features()),
        )

    # ------------------------------------------------------------------ #
    # the greedy clause-growing loop
    # ------------------------------------------------------------------ #

    def _encode(
        self,
        examples: "list[TrainingExample] | TrainingMatrix",
        schema: FeatureSchema,
    ) -> TrainingMatrix:
        """The columnar encoding of a training set under this config.

        Precomputed matrices are reused only when their encoding parameters
        match (:func:`~repro.core.examples.encode_training_examples`
        re-encodes otherwise).
        """
        return encode_training_examples(
            examples, schema,
            config=self.config.pair_config,
            feature_level=self.config.feature_level,
        )

    def _grow_clause(
        self,
        encoded: TrainingMatrix,
        indices: list[int],
        pair_values: dict[str, FeatureValue],
        width: int,
        positive_label: Label,
        exclude_features: set[str] | None = None,
    ) -> Predicate:
        matrix = encoded.matrix
        positive = encoded.positive_labels(positive_label)
        used: set[str] = set(exclude_features or ())
        clause = TRUE_PREDICATE
        remaining = list(indices)
        view = matrix.view(remaining)

        for _ in range(width):
            if len(remaining) < self.config.min_examples:
                break
            positives = sum(positive[index] for index in remaining)
            if positives == 0 or positives == len(remaining):
                break
            candidates = self._best_predicates(view, positive, pair_values, used,
                                               positives)
            if not candidates:
                break
            best = self._select_candidate(candidates, encoded, remaining, positive)
            if best is None:
                break
            atom = Comparison(
                feature=best.feature,
                operator=_SPLIT_OPERATORS[best.operator],
                value=best.value,
            )
            clause = clause.extended(atom)
            used.add(best.feature)
            # The atom's column holds exactly the values the examples carry
            # for that feature, so scalar evaluation over the gathered
            # column replaces the per-example dict probing.
            raw = matrix.column(best.feature).raw
            satisfied = map(atom.evaluate_value, map(raw.__getitem__, remaining))
            keep = bytearray(matrix.n_rows)
            survivors = []
            for index, keep_row in zip(remaining, satisfied):
                if keep_row:
                    keep[index] = 1
                    survivors.append(index)
            remaining = survivors
            view = view.narrow(keep)
        return clause

    def _best_predicates(
        self,
        view,
        positive: bytearray,
        pair_values: dict[str, FeatureValue],
        used: set[str],
        positives: int | None = None,
    ) -> list[CandidatePredicate]:
        candidates: list[CandidatePredicate] = []
        for feature in view.matrix.features:
            if feature in used:
                continue
            required = pair_values.get(feature)
            if required is None:
                continue
            candidate = view.best_predicate(feature, positive,
                                            required_value=required,
                                            positives=positives)
            if candidate is not None:
                candidates.append(candidate)
        return candidates

    def _select_candidate(
        self,
        candidates: list[CandidatePredicate],
        encoded: TrainingMatrix,
        remaining: list[int],
        positive: bytearray,
    ) -> CandidatePredicate | None:
        """Score candidates by percentile-ranked precision and generality.

        Per-candidate match counting runs over the columnar encoding:
        equality candidates compare value codes (assigned under dict
        equality — the same relation ``satisfied_by`` uses) and threshold
        candidates sweep the float image of clean numeric columns; only
        mixed-type columns fall back to scalar ``satisfied_by`` probing.
        """
        precisions: list[float] = []
        generalities: list[float] = []
        positive_flags = list(map(positive.__getitem__, remaining))
        for candidate in candidates:
            column = encoded.matrix.column(candidate.feature)
            satisfied = self._satisfied_flags(candidate, column, remaining)
            if satisfied is None:
                raw = column.raw
                satisfied = [
                    1 if candidate.satisfied_by(raw[index]) else 0
                    for index in remaining
                ]
            matching = sum(satisfied)
            matching_positive = sum(map(and_, satisfied, positive_flags))
            precisions.append(matching_positive / matching if matching else 0.0)
            generalities.append(matching / len(remaining) if remaining else 0.0)

        precision_ranks = percentile_ranks(precisions)
        generality_ranks = percentile_ranks(generalities)
        weight = self.config.score_weight
        best_index: int | None = None
        best_score = float("-inf")
        for index in range(len(candidates)):
            score = weight * precision_ranks[index] + (1.0 - weight) * generality_ranks[index]
            if score > best_score + 1e-12 or (
                abs(score - best_score) <= 1e-12
                and best_index is not None
                and precisions[index] > precisions[best_index]
            ):
                best_score = score
                best_index = index
        if best_index is None:
            return None
        if precisions[best_index] == 0.0:
            # A predicate matching only negative examples cannot explain the
            # observed behaviour.
            positive_indices = [i for i, p in enumerate(precisions) if p > 0.0]
            if not positive_indices:
                return None
            best_index = max(
                positive_indices,
                key=lambda i: weight * precision_ranks[i] + (1 - weight) * generality_ranks[i],
            )
        return candidates[best_index]

    @staticmethod
    def _satisfied_flags(
        candidate: CandidatePredicate, column, remaining: list[int]
    ) -> "list[int] | None":
        """Vectorised ``satisfied_by`` over one column's remaining rows.

        Returns ``None`` when no exact vector path applies (the caller then
        probes values one by one).  Semantics are identical to
        :meth:`~repro.ml.splits.CandidatePredicate.satisfied_by`:

        * ``==`` — value codes are assigned under dict equality, which is
          the same relation ``value == constant`` evaluates for the hashable
          constants the search emits; a NaN constant satisfies nothing.
        * ``<=`` / ``>`` — exact only on *clean* numeric columns (every
          present value threshold-eligible: no bools, NaN or mixed types),
          where the float image ordering is the ordering ``satisfied_by``
          sees; missing rows are excluded by the eligibility mask.
        """
        operator = candidate.operator
        if operator == "==":
            constant = candidate.value
            if constant != constant:
                return [0] * len(remaining)
            code = column.code_of.get(constant, -1)
            if code < 0:
                # Not a stored value (candidates always are; be safe): the
                # -1 sentinel must not match missing rows' -1 codes.
                return [0] * len(remaining)
            return list(map(code.__eq__, map(column.codes.__getitem__, remaining)))
        if operator in ("<=", ">") and column.numeric and column.clean:
            threshold = candidate.value
            # value <= t  <=>  t >= value (and mirrored for >), giving a
            # bound method mappable at C level over the float image.
            compare = threshold.__ge__ if operator == "<=" else threshold.__lt__
            return list(
                map(
                    and_,
                    map(column.numeric_ok.__getitem__, remaining),
                    map(compare, map(column.floats.__getitem__, remaining)),
                )
            )
        return None

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _infer_schema(self, log: ExecutionLog, query: PXQLQuery) -> FeatureSchema:
        from repro.core.examples import records_for_query

        records = records_for_query(log, query)
        if not records:
            raise ExplanationError("the log has no records of the queried entity kind")
        return infer_schema(records)

    def _pair_values(
        self, log: ExecutionLog, query: PXQLQuery, schema: FeatureSchema
    ) -> dict[str, FeatureValue]:
        assert query.first_id is not None and query.second_id is not None
        first = find_record(log, query, query.first_id)
        second = find_record(log, query, query.second_id)
        full_config = PairFeatureConfig(
            sim_threshold=self.config.pair_config.sim_threshold,
            is_same_tolerance=self.config.pair_config.is_same_tolerance,
            level=FeatureLevel.FULL,
        )
        return compute_pair_features(first, second, schema, full_config)
