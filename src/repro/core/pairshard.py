"""Process-sharded pair-kernel batch evaluation with a deterministic merge.

One candidate batch is an independent unit of work: the despite /
observed / expected masks of a batch depend only on the kernel (block +
config), the query and the batch's index pairs.  This module fans those
batches out across a persistent forked worker pool and merges results
**in submission order**, reusing the bit-identical-parallel pattern the
simulation sweep executor proved (:mod:`repro.workloads.grid`): because the
candidate enumeration order and the order-independent CRC32 sampling rule
(:func:`~repro.core.pairkernel.pair_is_kept`) are both worker-count
invariant, the concatenated output is byte-for-byte identical to the serial
path for every worker count — the differential suite asserts it.

Workers are forked (zero-copy: the kernel's record block, including a
chunked block's resident working set, is inherited through fork) **once**
and then shared by every thread and every query: a :class:`ShardPool`
keeps a registry of fork-shipped kernels keyed by :func:`shard_token`, so
a repeat query against an unchanged log reuses the live workers instead of
paying a pool spin-up, and two service threads can shard concurrently —
each generation gets its own submission window onto the shared pool.  The
pool re-forks only when a generation needs state its workers never
inherited (a new log, a replaced block after an epoch move, or a block
grown in place by the append path); the previous pool finishes its
in-flight generations and is then torn down.  The batch stream is
submitted through a bounded window so a million-task candidate space never
materialises more than ``window`` batches at once.  Platforms without the
``fork`` start method (Windows) fall back to the serial path — same
results, one process.
"""

from __future__ import annotations

import atexit
import multiprocessing
import threading
from collections import OrderedDict, deque
from itertools import compress
from operator import or_
from typing import Iterator, Sequence

from repro.core.pairkernel import (
    CANDIDATE_BATCH,
    PairContext,
    PairKernel,
    iter_candidate_batches,
)
from repro.core.pxql.query import PXQLQuery

#: Batches in flight per worker: enough to keep the pool busy, small
#: enough to bound the memory of undelivered results.
_WINDOW_PER_WORKER = 4

#: Kernels (hence record blocks) a pool keeps strongly referenced for
#: reuse.  Beyond this, the least recently sharded kernels are dropped
#: from the registry and their next query re-forks.
MAX_POOL_TOKENS = 8

#: The kernel registry the *next* fork ships to its workers.  Assigned —
#: never mutated — under :data:`_FORK_LOCK` immediately before the fork,
#: so every worker of one pool inherits the same consistent snapshot;
#: forked workers read their inherited copy without any lock.
_POOL_STATE: dict[tuple, PairKernel] = {}

#: Serialises the (assign :data:`_POOL_STATE`, fork) critical section
#: across :class:`ShardPool` instances, which share the module global.
_FORK_LOCK = threading.Lock()


def shard_token(kernel: PairKernel) -> tuple:
    """The identity of one kernel's fork-shipped state.

    ``id(block)`` names the block object — valid only while the block is
    strongly referenced, which the pool registry guarantees for every live
    token, so an id can never be recycled into a stale entry.
    ``len(block)`` captures in-place growth: the O(delta) append path
    extends a cached block *without* replacing the object, and a grown
    block must re-fork so workers see the new rows.  The (frozen,
    hashable) pair config covers every derivation tunable; epoch moves
    need no extra component because they evict the log's cached block and
    the replacement is a new object with a new id.
    """
    block = kernel.block
    return (id(block), len(block), kernel.config)


def evaluate_candidate_batch(
    kernel: PairKernel,
    query: PXQLQuery,
    firsts: Sequence[int],
    seconds: Sequence[int],
) -> tuple[list[int], list[int], bytearray]:
    """Filter one candidate batch to its related pairs.

    Returns the surviving ``(first, second)`` index lists and the per-pair
    observed flags (``1`` = the pair satisfied the observed clause, ``0`` =
    only the expected clause).  The despite clause prunes first, then the
    observed and expected clauses run over the survivors sharing one gather
    cache — the exact sequence of the serial path, extracted here so the
    serial generator and the forked workers cannot drift apart.
    """
    ctx = PairContext(firsts, seconds)
    despite = kernel.predicate_mask(query.despite, ctx)
    first_kept = list(compress(firsts, despite))
    if not first_kept:
        return [], [], bytearray()
    second_kept = list(compress(seconds, despite))
    ctx = PairContext(first_kept, second_kept)
    observed = kernel.predicate_mask(query.observed, ctx)
    expected = kernel.predicate_mask(query.expected, ctx)
    related = bytearray(map(or_, observed, expected))
    related_firsts = list(compress(first_kept, related))
    if not related_firsts:
        return [], [], bytearray()
    related_seconds = list(compress(second_kept, related))
    observed_flags = bytearray(compress(observed, related))
    return related_firsts, related_seconds, observed_flags


def _pool_worker(
    payload: tuple[tuple, PXQLQuery, list[int], list[int]],
) -> tuple[list[int], list[int], bytes]:
    """Evaluate one batch against a fork-inherited kernel.

    The token routes to the kernel snapshot this worker inherited at fork
    time; the query rides along per task (it is small and picklable, so
    shipping it costs microseconds and lets one pool serve every query).
    """
    token, query, firsts, seconds = payload
    kernel = _POOL_STATE.get(token)
    if kernel is None:  # pragma: no cover - guarded by ShardPool re-forks
        raise KeyError(f"worker forked without shard state for token {token!r}")
    out_firsts, out_seconds, observed = evaluate_candidate_batch(
        kernel, query, firsts, seconds
    )
    return out_firsts, out_seconds, bytes(observed)


def _fork_context() -> multiprocessing.context.BaseContext | None:
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


class _PoolHandle:
    """One forked worker pool plus the kernels its workers inherited.

    ``kernels`` holds strong references for the pool's whole lifetime:
    while a token is live here, its block cannot be garbage-collected, so
    ``id(block)`` inside the token cannot be recycled into a collision.
    """

    __slots__ = ("pool", "kernels", "workers", "active", "retired")

    def __init__(
        self,
        pool: "multiprocessing.pool.Pool",
        kernels: dict[tuple, PairKernel],
        workers: int,
    ) -> None:
        self.pool = pool
        self.kernels = kernels
        self.workers = workers
        #: Generations currently submitting to / draining from this pool.
        self.active = 0
        #: A retired pool accepts no new generations and is terminated
        #: when the last active one drains.
        self.retired = False


class ShardPool:
    """A persistent, thread-shared pool of forked pair-kernel workers.

    Generations (:meth:`run`) from any number of threads share one set of
    forked workers; each generation merges its own results in submission
    order, so interleaving generations cannot perturb anyone's bytes.  A
    generation whose kernel the current workers never inherited triggers a
    re-fork: the new pool inherits the (bounded, LRU) kernel registry, the
    old pool finishes its in-flight generations and is then torn down —
    submissions never block behind a re-fork and never land on workers
    missing their state.

    Accounting (:meth:`stats`): ``forks`` counts pool spin-ups, ``reuses``
    counts generations served by an already-live pool, and
    ``max_concurrent_generations`` proves genuine overlap — the old
    module-global design serialised every sharded generation process-wide.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._handle: _PoolHandle | None = None
        self._retired: list[_PoolHandle] = []
        #: Recently sharded kernels, most recent last (the re-fork ships
        #: this registry, bounded to :data:`MAX_POOL_TOKENS`).
        self._kernels: OrderedDict[tuple, PairKernel] = OrderedDict()
        self._forks = 0
        self._reuses = 0
        self._active_generations = 0
        self._max_concurrent_generations = 0

    # ------------------------------------------------------------------ #
    # generations
    # ------------------------------------------------------------------ #

    def run(
        self,
        kernel: PairKernel,
        query: PXQLQuery,
        batches: "Iterator[tuple[list[int], list[int]]]",
        workers: int,
        window: int | None = None,
    ) -> Iterator[tuple[list[int], list[int], bytearray]]:
        """One generation: evaluate ``batches``, yield merged results.

        Results come strictly in submission order (the determinism
        contract); the generator releases its pool hold when exhausted,
        closed, or unwound by an error.
        """
        context = _fork_context()
        if context is None:  # pragma: no cover - non-POSIX platforms
            raise RuntimeError("process sharding requires the fork start method")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        token = shard_token(kernel)
        handle = self._acquire(context, token, kernel, workers)
        if window is None:
            window = workers * _WINDOW_PER_WORKER
        pending: deque = deque()
        try:
            apply_async = handle.pool.apply_async
            for firsts, seconds in batches:
                pending.append(
                    apply_async(_pool_worker, ((token, query, firsts, seconds),))
                )
                if len(pending) >= window:
                    out_firsts, out_seconds, observed = pending.popleft().get()
                    if out_firsts:
                        yield out_firsts, out_seconds, bytearray(observed)
            while pending:
                out_firsts, out_seconds, observed = pending.popleft().get()
                if out_firsts:
                    yield out_firsts, out_seconds, bytearray(observed)
        finally:
            self._release(handle)

    def _acquire(
        self,
        context: "multiprocessing.context.BaseContext",
        token: tuple,
        kernel: PairKernel,
        workers: int,
    ) -> _PoolHandle:
        """Join the live pool, or re-fork one that has this kernel."""
        terminate: _PoolHandle | None = None
        with self._lock:
            handle = self._handle
            if (
                handle is not None
                and not handle.retired
                and token in handle.kernels
                and handle.workers >= workers
            ):
                self._reuses += 1
                self._kernels[token] = kernel
                self._kernels.move_to_end(token)
            else:
                handle, terminate = self._refork(context, token, kernel, workers)
            handle.active += 1
            self._active_generations += 1
            if self._active_generations > self._max_concurrent_generations:
                self._max_concurrent_generations = self._active_generations
        if terminate is not None:
            terminate.pool.terminate()
            terminate.pool.join()
        return handle

    def _refork(
        self,
        context: "multiprocessing.context.BaseContext",
        token: tuple,
        kernel: PairKernel,
        workers: int,
    ) -> tuple[_PoolHandle, _PoolHandle | None]:
        """Fork a fresh pool over the updated registry (lock held).

        Returns the new handle plus the previous one if it can be
        terminated immediately (no active generations); a busy previous
        pool is retired instead and torn down when its last drains.
        """
        global _POOL_STATE
        self._kernels[token] = kernel
        self._kernels.move_to_end(token)
        while len(self._kernels) > MAX_POOL_TOKENS:
            self._kernels.popitem(last=False)
        shipped = dict(self._kernels)
        with _FORK_LOCK:
            # Assign (never mutate) the snapshot, then fork eagerly:
            # multiprocessing.Pool starts every worker in its constructor,
            # so all of them inherit exactly this state — unlike the lazy
            # spawning of ProcessPoolExecutor, which could fork stragglers
            # after the global moved on.
            _POOL_STATE = shipped
            pool = context.Pool(processes=workers)
        self._forks += 1
        handle = _PoolHandle(pool, shipped, workers)
        previous = self._handle
        self._handle = handle
        terminate: _PoolHandle | None = None
        if previous is not None:
            previous.retired = True
            if previous.active == 0:
                terminate = previous
            else:
                self._retired.append(previous)
        return handle, terminate

    def _release(self, handle: _PoolHandle) -> None:
        """Drop one generation's hold; tear down a drained retired pool."""
        finished: _PoolHandle | None = None
        with self._lock:
            handle.active -= 1
            self._active_generations -= 1
            if handle.retired and handle.active == 0:
                if handle in self._retired:
                    self._retired.remove(handle)
                finished = handle
        if finished is not None:
            finished.pool.terminate()
            finished.pool.join()

    # ------------------------------------------------------------------ #
    # lifecycle and accounting
    # ------------------------------------------------------------------ #

    def shutdown(self) -> None:
        """Release every kernel reference and tear down idle pools.

        Pools with generations still draining are retired (their last
        :meth:`_release` terminates them) rather than killed under a
        consumer, so shutdown never hangs or breaks an in-flight query.
        The pool object remains usable: the next :meth:`run` re-forks.
        """
        finished: list[_PoolHandle] = []
        with self._lock:
            self._kernels.clear()
            handles = list(self._retired)
            if self._handle is not None:
                handles.append(self._handle)
                self._handle = None
            self._retired = []
            for handle in handles:
                handle.retired = True
                if handle.active == 0:
                    finished.append(handle)
                else:
                    self._retired.append(handle)
        for handle in finished:
            handle.pool.terminate()
            handle.pool.join()

    def stats(self) -> dict[str, int]:
        """Running counters (see class docs) plus the live pool's shape."""
        with self._lock:
            live = self._handle is not None and not self._handle.retired
            return {
                "forks": self._forks,
                "reuses": self._reuses,
                "active_generations": self._active_generations,
                "max_concurrent_generations": self._max_concurrent_generations,
                "workers": self._handle.workers if live else 0,
                "tokens": len(self._kernels),
                "retired_pools": len(self._retired),
            }


#: The process-wide pool every sharded generation shares by default.
#: Construction is cheap (no fork happens until the first generation);
#: the atexit hook tears down whatever workers are still alive.
_DEFAULT_POOL = ShardPool()
atexit.register(_DEFAULT_POOL.shutdown)


def default_shard_pool() -> ShardPool:
    """The shared process-wide :class:`ShardPool`."""
    return _DEFAULT_POOL


def iter_evaluated_batches(
    kernel: PairKernel,
    query: PXQLQuery,
    groups: Sequence[Sequence[int]],
    salt: int | None,
    limit: int,
    workers: int = 1,
    batch_size: int = CANDIDATE_BATCH,
    pool: ShardPool | None = None,
) -> Iterator[tuple[list[int], list[int], bytearray]]:
    """Related-pair batches, serial or process-sharded — same bytes either way.

    With ``workers >= 2`` (and ``fork`` available) candidate batches are
    shipped through the shared :class:`ShardPool` (or ``pool``) under a
    bounded submission window and the results are yielded strictly in
    submission order; otherwise each batch is evaluated inline.  Empty
    batches are filtered here, after the merge, so the yielded stream is
    identical across paths.
    """
    batches = iter_candidate_batches(kernel.block, groups, salt, limit, batch_size)
    if workers < 2 or _fork_context() is None:
        for firsts, seconds in batches:
            result = evaluate_candidate_batch(kernel, query, firsts, seconds)
            if result[0]:
                yield result
        return
    if pool is None:
        pool = default_shard_pool()
    yield from pool.run(kernel, query, batches, workers)
