"""Process-sharded pair-kernel batch evaluation with a deterministic merge.

One candidate batch is an independent unit of work: the despite /
observed / expected masks of a batch depend only on the kernel (block +
config), the query and the batch's index pairs.  This module fans those
batches out across a ``ProcessPoolExecutor`` and merges results **in
submission order**, reusing the bit-identical-parallel pattern the
simulation sweep executor proved (:mod:`repro.workloads.grid`): because the
candidate enumeration order and the order-independent CRC32 sampling rule
(:func:`~repro.core.pairkernel.pair_is_kept`) are both worker-count
invariant, the concatenated output is byte-for-byte identical to the serial
path for every worker count — the differential suite asserts it.

Workers are forked (zero-copy: the kernel's record block, including a
chunked block's resident working set, is inherited through fork), and the
batch stream is submitted through a bounded window so a million-task
candidate space never materialises more than ``window`` batches at once.
Platforms without the ``fork`` start method (Windows) fall back to the
serial path — same results, one process.
"""

from __future__ import annotations

import multiprocessing
import threading
from collections import deque
from itertools import compress
from operator import or_
from typing import Iterator, Sequence

from repro.core.pairkernel import (
    CANDIDATE_BATCH,
    PairContext,
    PairKernel,
    iter_candidate_batches,
)
from repro.core.pxql.query import PXQLQuery

#: Batches in flight per worker: enough to keep the pool busy, small
#: enough to bound the memory of undelivered results.
_WINDOW_PER_WORKER = 4

#: (kernel, query) inherited by forked workers; guarded by ``_SHARD_LOCK``
#: so concurrent sharded generations (e.g. service threads) cannot fork
#: each other's state.
_WORKER_STATE: tuple[PairKernel, PXQLQuery] | None = None
_SHARD_LOCK = threading.Lock()


def evaluate_candidate_batch(
    kernel: PairKernel,
    query: PXQLQuery,
    firsts: Sequence[int],
    seconds: Sequence[int],
) -> tuple[list[int], list[int], bytearray]:
    """Filter one candidate batch to its related pairs.

    Returns the surviving ``(first, second)`` index lists and the per-pair
    observed flags (``1`` = the pair satisfied the observed clause, ``0`` =
    only the expected clause).  The despite clause prunes first, then the
    observed and expected clauses run over the survivors sharing one gather
    cache — the exact sequence of the serial path, extracted here so the
    serial generator and the forked workers cannot drift apart.
    """
    ctx = PairContext(firsts, seconds)
    despite = kernel.predicate_mask(query.despite, ctx)
    first_kept = list(compress(firsts, despite))
    if not first_kept:
        return [], [], bytearray()
    second_kept = list(compress(seconds, despite))
    ctx = PairContext(first_kept, second_kept)
    observed = kernel.predicate_mask(query.observed, ctx)
    expected = kernel.predicate_mask(query.expected, ctx)
    related = bytearray(map(or_, observed, expected))
    related_firsts = list(compress(first_kept, related))
    if not related_firsts:
        return [], [], bytearray()
    related_seconds = list(compress(second_kept, related))
    observed_flags = bytearray(compress(observed, related))
    return related_firsts, related_seconds, observed_flags


def _shard_worker(
    payload: tuple[list[int], list[int]],
) -> tuple[list[int], list[int], bytes]:
    """Evaluate one batch against the fork-inherited kernel state."""
    kernel, query = _WORKER_STATE  # type: ignore[misc]
    firsts, seconds, observed = evaluate_candidate_batch(
        kernel, query, payload[0], payload[1]
    )
    return firsts, seconds, bytes(observed)


def _fork_context() -> multiprocessing.context.BaseContext | None:
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def iter_evaluated_batches(
    kernel: PairKernel,
    query: PXQLQuery,
    groups: Sequence[Sequence[int]],
    salt: int | None,
    limit: int,
    workers: int = 1,
    batch_size: int = CANDIDATE_BATCH,
) -> Iterator[tuple[list[int], list[int], bytearray]]:
    """Related-pair batches, serial or process-sharded — same bytes either way.

    With ``workers >= 2`` (and ``fork`` available) candidate batches are
    shipped to a worker pool through a bounded submission window and the
    results are yielded strictly in submission order; otherwise each batch
    is evaluated inline.  Empty batches are filtered here, after the merge,
    so the yielded stream is identical across paths.
    """
    batches = iter_candidate_batches(kernel.block, groups, salt, limit, batch_size)
    if workers < 2:
        for firsts, seconds in batches:
            result = evaluate_candidate_batch(kernel, query, firsts, seconds)
            if result[0]:
                yield result
        return
    context = _fork_context()
    if context is None:  # pragma: no cover - non-POSIX platforms
        for firsts, seconds in batches:
            result = evaluate_candidate_batch(kernel, query, firsts, seconds)
            if result[0]:
                yield result
        return
    from concurrent.futures import ProcessPoolExecutor

    global _WORKER_STATE
    window = workers * _WINDOW_PER_WORKER
    with _SHARD_LOCK:
        _WORKER_STATE = (kernel, query)
        try:
            # Workers fork lazily at first submit, after the state is set;
            # the pool dies inside the lock, so no two generations overlap.
            with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
                pending: deque = deque()
                for payload in batches:
                    pending.append(pool.submit(_shard_worker, payload))
                    if len(pending) >= window:
                        firsts, seconds, observed = pending.popleft().result()
                        if firsts:
                            yield firsts, seconds, bytearray(observed)
                while pending:
                    firsts, seconds, observed = pending.popleft().result()
                    if firsts:
                        yield firsts, seconds, bytearray(observed)
        finally:
            _WORKER_STATE = None
