"""Balanced sampling of training examples (Section 4.3).

A heavily unbalanced example set lets a trivial explanation look precise
(if 99% of pairs performed as observed, the empty explanation already has
precision 0.99).  The paper therefore keeps each example with a probability
inversely proportional to its class frequency so that the sample contains
roughly the same number of OBSERVED and EXPECTED pairs, with an expected
total of ``sample_size``.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence, TypeVar

from repro.core.examples import Label

T = TypeVar("T")


def balanced_sample(
    items: Sequence[T],
    sample_size: int,
    rng: random.Random | None = None,
    label_of: Callable[[T], Label] | None = None,
) -> list[T]:
    """Keep each item with the class-balancing probability from the paper.

    For an item of class ``c`` the keep probability is
    ``sample_size / (2 * count(c))``, capped at 1.

    :param items: labeled items (training examples or (first, second, label)
        tuples).
    :param sample_size: desired expected sample size ``m``.
    :param rng: random generator.
    :param label_of: how to obtain an item's label (defaults to ``item.label``).
    """
    if sample_size <= 0:
        raise ValueError("sample_size must be positive")
    rng = rng if rng is not None else random.Random(0)
    if label_of is None:
        label_of = lambda item: item.label  # type: ignore[attr-defined]

    counts = {Label.OBSERVED: 0, Label.EXPECTED: 0}
    for item in items:
        counts[label_of(item)] += 1

    if len(items) <= sample_size:
        return list(items)

    kept: list[T] = []
    for item in items:
        label = label_of(item)
        class_count = counts[label]
        if class_count == 0:
            continue
        probability = min(1.0, sample_size / (2.0 * class_count))
        if rng.random() < probability:
            kept.append(item)
    return kept


def class_counts(items: Sequence[T], label_of: Callable[[T], Label] | None = None) -> dict[Label, int]:
    """Number of items per label."""
    if label_of is None:
        label_of = lambda item: item.label  # type: ignore[attr-defined]
    counts = {Label.OBSERVED: 0, Label.EXPECTED: 0}
    for item in items:
        counts[label_of(item)] += 1
    return counts
