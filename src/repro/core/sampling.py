"""Balanced sampling of training examples (Section 4.3).

A heavily unbalanced example set lets a trivial explanation look precise
(if 99% of pairs performed as observed, the empty explanation already has
precision 0.99).  The paper keeps each example with a probability inversely
proportional to its class frequency — ``sample_size / (2 * count(c))``,
capped at 1 — so that the sample contains roughly the same number of
OBSERVED and EXPECTED pairs with an *expected* total of ``sample_size``.

**Deliberate deviation from the paper:** this implementation replaces the
per-item keep-probability pass with deterministic *exact-size* stratified
sampling.  Each class's target is half of ``sample_size`` (never
redistributed, matching the capped probability's expectation
``min(count(c), sample_size / 2)``), and a seeded partial shuffle
(``random.Random.sample``) draws exactly that many items per class.  The
paper's 50/50 balance target is preserved while the sample size stops being
a random variable, and the kept subset depends only on the item order,
labels and seed — never on interleaving between classes.
"""

from __future__ import annotations

import random
from operator import attrgetter
from typing import Any, Callable, Sequence, TypeVar

from repro.core.examples import Label

T = TypeVar("T")

#: Default label accessor: the item's ``label`` attribute (training
#: examples); tuple inputs pass an explicit ``label_of`` instead.
label_attribute: Callable[[Any], Label] = attrgetter("label")


def stratified_keep_indices(
    labels: Sequence[Label],
    sample_size: int,
    rng: random.Random | None = None,
) -> list[int] | None:
    """Indices of an exact-size class-balanced sample, in original order.

    Per class the target is half of ``sample_size`` (OBSERVED receives the
    remainder of an odd size); classes smaller than their target are kept
    whole without redistributing the slack, so the result can be smaller
    than ``sample_size`` when one class is scarce — exactly the expectation
    of the paper's capped keep probability.

    :returns: sorted kept indices, or ``None`` when everything is kept
        (``len(labels) <= sample_size``).
    """
    if sample_size <= 0:
        raise ValueError("sample_size must be positive")
    rng = rng if rng is not None else random.Random(0)
    if len(labels) <= sample_size:
        return None
    half = sample_size // 2
    targets = {Label.OBSERVED: sample_size - half, Label.EXPECTED: half}
    by_class: dict[Label, list[int]] = {Label.OBSERVED: [], Label.EXPECTED: []}
    for index, label in enumerate(labels):
        by_class[label].append(index)
    kept: list[int] = []
    for label in (Label.OBSERVED, Label.EXPECTED):
        indices = by_class[label]
        target = targets[label]
        if len(indices) <= target:
            kept.extend(indices)
        else:
            kept.extend(rng.sample(indices, target))
    kept.sort()
    return kept


def balanced_sample(
    items: Sequence[T],
    sample_size: int,
    rng: random.Random | None = None,
    label_of: Callable[[T], Label] | None = None,
) -> list[T]:
    """An exact-size class-balanced sample of labeled items.

    See :func:`stratified_keep_indices` for the sampling rule (and the
    documented deviation from the paper's expected-size probability pass).

    :param items: labeled items (training examples or (first, second, label)
        tuples).
    :param sample_size: desired sample size ``m`` (exact when both classes
        are large enough).
    :param rng: random generator seeding the per-class partial shuffles.
    :param label_of: how to obtain an item's label (defaults to
        :data:`label_attribute`).
    """
    rng = rng if rng is not None else random.Random(0)
    label_of = label_of if label_of is not None else label_attribute
    labels = [label_of(item) for item in items]
    kept = stratified_keep_indices(labels, sample_size, rng)
    if kept is None:
        return list(items)
    return [items[index] for index in kept]


def class_counts(
    items: Sequence[T], label_of: Callable[[T], Label] | None = None
) -> dict[Label, int]:
    """Number of items per label."""
    label_of = label_of if label_of is not None else label_attribute
    counts = {Label.OBSERVED: 0, Label.EXPECTED: 0}
    for item in items:
        counts[label_of(item)] += 1
    return counts
