"""Reference pair-generation path: one feature dict per candidate pair.

This module preserves the pre-columnar Section-4 pipeline exactly as it ran
before the pair kernels existed (mirroring how :mod:`repro.ml.rowpath`
freezes the pre-columnar tree fitting): candidate pairs are enumerated
within blocking groups, each candidate gets a lazily-restricted pair-feature
*dict* via :func:`repro.core.pairs.compute_pair_features`, and the query's
clauses are evaluated per pair with
:meth:`repro.core.pxql.ast.Predicate.evaluate`.

It exists for two reasons:

* the differential suite (``tests/core/test_pair_pipeline_equivalence.py``)
  proves the kernel path in :mod:`repro.core.examples` yields identical
  labeled pairs, feature vectors and training matrices on randomized logs;
* the pair-pipeline throughput benchmark measures the kernel path's speedup
  against it.

Two deliberate behaviours are *shared* with the live path rather than
frozen, because they changed in the same refactor: the order-independent
hash-based candidate subsampling (:func:`repro.core.pairkernel.pair_is_kept`)
and the exact-size stratified balanced sampling
(:func:`repro.core.sampling.balanced_sample`).  Both paths therefore sample
identical subsets, and the differential comparison isolates exactly the
columnar re-layout.
"""

from __future__ import annotations

import random
from operator import itemgetter
from typing import Iterator

from repro.core.examples import (
    Label,
    TrainingExample,
    _blocking_features,
    _group_records,
    validate_query_features,
    records_for_query,
)
from repro.core.features import FeatureLevel, FeatureSchema
from repro.core.pairkernel import keep_limit, pair_is_kept, sampling_salt
from repro.core.pairs import PairFeatureConfig, compute_pair_features
from repro.core.pxql.query import PXQLQuery
from repro.logs.records import ExecutionRecord
from repro.logs.store import ExecutionLog


def iter_related_pairs_reference(
    log: ExecutionLog,
    query: PXQLQuery,
    schema: FeatureSchema,
    config: PairFeatureConfig | None = None,
    max_candidate_pairs: int | None = 2_000_000,
    rng: random.Random | None = None,
) -> Iterator[tuple[ExecutionRecord, ExecutionRecord, Label]]:
    """Yield every related ordered pair, dict-per-candidate (reference).

    Pair features are computed lazily: only the raw features referenced by
    the query's three clauses are derived while classifying candidates.
    """
    config = config if config is not None else PairFeatureConfig()
    rng = rng if rng is not None else random.Random(0)
    records = records_for_query(log, query)
    query_raw_features = validate_query_features(query, schema)

    blocking = _blocking_features(query, schema)
    groups = _group_records(records, blocking)

    total_candidates = sum(len(group) * (len(group) - 1) for group in groups)
    salt: int | None = None
    limit = 0
    if max_candidate_pairs is not None and total_candidates > max_candidate_pairs:
        salt = sampling_salt(rng)
        limit = keep_limit(max_candidate_pairs, total_candidates)

    for group in groups:
        for first in group:
            for second in group:
                if first is second:
                    continue
                if salt is not None and not pair_is_kept(
                    first.entity_id, second.entity_id, salt, limit
                ):
                    continue
                values = compute_pair_features(
                    first, second, schema, config, features=query_raw_features
                )
                if not query.despite.evaluate(values):
                    continue
                observed = query.observed.evaluate(values)
                expected = query.expected.evaluate(values)
                if observed:
                    yield first, second, Label.OBSERVED
                elif expected:
                    yield first, second, Label.EXPECTED


def construct_training_examples_reference(
    log: ExecutionLog,
    query: PXQLQuery,
    schema: FeatureSchema,
    config: PairFeatureConfig | None = None,
    sample_size: int | None = 2000,
    rng: random.Random | None = None,
    max_candidate_pairs: int | None = 2_000_000,
) -> list[TrainingExample]:
    """Construct and balanced-sample the training examples (reference).

    Full pair-feature vectors are computed one sampled pair at a time with
    :func:`repro.core.pairs.compute_pair_features` — the per-pair dict
    allocation the columnar pipeline eliminates.
    """
    from repro.core.sampling import balanced_sample  # local import: avoids a cycle

    config = config if config is not None else PairFeatureConfig()
    rng = rng if rng is not None else random.Random(0)

    labeled_pairs = list(
        iter_related_pairs_reference(
            log, query, schema, config, max_candidate_pairs, rng
        )
    )
    if sample_size is not None:
        labeled_pairs = balanced_sample(
            labeled_pairs, sample_size, rng, label_of=itemgetter(2)
        )

    full_config = PairFeatureConfig(
        sim_threshold=config.sim_threshold,
        is_same_tolerance=config.is_same_tolerance,
        level=FeatureLevel.FULL,
    )
    examples = []
    for first, second, label in labeled_pairs:
        values = compute_pair_features(first, second, schema, full_config)
        examples.append(
            TrainingExample(
                first_id=first.entity_id,
                second_id=second.entity_id,
                values=values,
                label=label,
            )
        )
    return examples
