"""PXQL query objects and their semantic validation.

Definition 1 of the paper: a query comprises a pair of jobs (or tasks) and
a triple of predicates ``(des, obs, exp)``, where the pair must satisfy
``des`` and ``obs`` but not ``exp``, and ``obs`` must contradict ``exp``.
The pair identifiers may be left unspecified (``None``) and filled in later
— the evaluation harness does this when it picks a pair of interest from
the log.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.core.pxql.ast import Comparison, Operator, Predicate, TRUE_PREDICATE
from repro.exceptions import PXQLValidationError
from repro.logs.records import FeatureValue


class EntityKind(enum.Enum):
    """Whether a query is about a pair of jobs or a pair of tasks."""

    JOB = "job"
    TASK = "task"


@dataclass(frozen=True)
class PXQLQuery:
    """A PXQL query.

    :param entity: whether the pair refers to jobs or tasks.
    :param first_id: identifier of the first execution (or ``None``).
    :param second_id: identifier of the second execution (or ``None``).
    :param despite: the (optional) despite clause; defaults to TRUE.
    :param observed: the observed clause.
    :param expected: the expected clause.
    :param name: optional human-readable name (used in reports).
    """

    entity: EntityKind
    observed: Predicate
    expected: Predicate
    despite: Predicate = TRUE_PREDICATE
    first_id: str | None = None
    second_id: str | None = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.observed.is_true:
            raise PXQLValidationError("the OBSERVED clause must not be empty")
        if self.expected.is_true:
            raise PXQLValidationError("the EXPECTED clause must not be empty")

    @property
    def has_pair(self) -> bool:
        """Whether both execution identifiers are specified."""
        return self.first_id is not None and self.second_id is not None

    def with_pair(self, first_id: str, second_id: str) -> "BoundQuery":
        """A copy of the query bound to a concrete pair of interest."""
        return BoundQuery(
            entity=self.entity,
            observed=self.observed,
            expected=self.expected,
            despite=self.despite,
            first_id=first_id,
            second_id=second_id,
            name=self.name,
        )

    def bound(self) -> "BoundQuery":
        """This query as a :class:`BoundQuery` (pair identifiers non-None).

        :raises PXQLValidationError: if either identifier is unspecified.
        """
        if self.first_id is None or self.second_id is None:
            raise PXQLValidationError(
                "the query is not bound to a pair of interest "
                "(both execution identifiers must be specified)"
            )
        return self.with_pair(self.first_id, self.second_id)

    def with_despite(self, despite: Predicate) -> "PXQLQuery":
        """A copy of the query with a different despite clause."""
        return replace(self, despite=despite)

    def without_despite(self) -> "PXQLQuery":
        """A copy of the query with the despite clause removed (set to TRUE)."""
        return replace(self, despite=TRUE_PREDICATE)

    def referenced_features(self) -> list[str]:
        """All pair features mentioned by any of the three clauses."""
        seen: list[str] = []
        for predicate in (self.despite, self.observed, self.expected):
            for feature in predicate.features():
                if feature not in seen:
                    seen.append(feature)
        return seen

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #

    def observed_contradicts_expected(self) -> bool:
        """Best-effort syntactic check that ``obs`` entails ``not exp``.

        The check recognises the common pattern of both clauses constraining
        the same feature with ``=`` to different constants (e.g.
        ``duration_compare = GT`` vs ``duration_compare = SIM``).  Queries
        that contradict each other in subtler ways simply return ``False``
        here; :meth:`validate` treats that as a warning-level condition
        unless ``strict`` is set.
        """
        observed_eq = {
            atom.feature: atom.value
            for atom in self.observed.atoms
            if atom.operator is Operator.EQ
        }
        for atom in self.expected.atoms:
            if atom.operator is Operator.EQ and atom.feature in observed_eq:
                if observed_eq[atom.feature] != atom.value:
                    return True
            if atom.operator is Operator.NE and atom.feature in observed_eq:
                if observed_eq[atom.feature] == atom.value:
                    return True
        return False

    def validate(self, strict: bool = False) -> list[str]:
        """Check the query's internal consistency.

        :param strict: raise :class:`PXQLValidationError` on any issue
            instead of returning it.
        :returns: a list of human-readable issues (empty when clean).
        """
        issues: list[str] = []
        if not self.observed_contradicts_expected():
            issues.append(
                "the OBSERVED clause does not syntactically contradict the "
                "EXPECTED clause (Definition 1 requires obs to entail NOT exp)"
            )
        overlap = set(self.despite.features()) & {
            atom.feature for atom in self.observed.atoms
        }
        if overlap:
            issues.append(
                "the DESPITE clause constrains the same features as the "
                f"OBSERVED clause: {sorted(overlap)}"
            )
        if strict and issues:
            raise PXQLValidationError("; ".join(issues))
        return issues

    def validate_against_pair(
        self, pair_values: Mapping[str, FeatureValue], strict: bool = True
    ) -> list[str]:
        """Check Definition 1 against the actual pair of interest.

        The pair must satisfy the despite and observed clauses and must not
        satisfy the expected clause.
        """
        issues: list[str] = []
        if not self.despite.evaluate(pair_values):
            issues.append("the pair of interest does not satisfy the DESPITE clause")
        if not self.observed.evaluate(pair_values):
            issues.append("the pair of interest does not satisfy the OBSERVED clause")
        if self.expected.evaluate(pair_values):
            issues.append("the pair of interest satisfies the EXPECTED clause")
        if strict and issues:
            raise PXQLValidationError("; ".join(issues))
        return issues

    def __str__(self) -> str:
        # Unbound slots render as bare ?: quoting them would turn the
        # placeholder into a literal identifier on re-parse, so the text
        # form would silently stop being re-parseable.
        first = f"'{self.first_id}'" if self.first_id is not None else "?"
        second = f"'{self.second_id}'" if self.second_id is not None else "?"
        lines = [f"FOR {self.entity.value.upper()}S {first}, {second}"]
        if not self.despite.is_true:
            lines.append(f"DESPITE {self.despite}")
        lines.append(f"OBSERVED {self.observed}")
        lines.append(f"EXPECTED {self.expected}")
        return "\n".join(lines)


@dataclass(frozen=True)
class BoundQuery(PXQLQuery):
    """A PXQL query whose pair identifiers are guaranteed to be set.

    Narrows ``first_id``/``second_id`` from ``str | None`` to ``str`` so
    downstream code (record lookup, pair-feature computation) needs no
    ``None`` checks.  Obtained via :meth:`PXQLQuery.with_pair` or
    :meth:`PXQLQuery.bound`, never constructed with missing identifiers.
    """

    first_id: str = ""
    second_id: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.first_id or not self.second_id:
            raise PXQLValidationError(
                "a bound query requires both execution identifiers"
            )
