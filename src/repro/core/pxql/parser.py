"""Tokenizer and recursive-descent parser for PXQL.

Grammar (case-insensitive keywords)::

    query      := "FOR" entity pair clause*
    entity     := "JOB" | "JOBS" | "TASK" | "TASKS"
    pair       := id "," id                     -- each id a quoted string or "?"
    clause     := ("DESPITE" | "OBSERVED" | "EXPECTED") predicate
    predicate  := comparison (("AND" | "∧") comparison)*
    comparison := IDENT op value
    op         := "=" | "==" | "!=" | "<>" | "<" | "<=" | ">" | ">=" | "≤" | "≥" | "≠"
    value      := NUMBER | SIZE | STRING | IDENT

A ``SIZE`` literal such as ``128MB`` or ``1.3 GB`` is converted to bytes.
Bare identifiers on the right-hand side (``T``, ``F``, ``SIM``, ``GT``,
``simple-filter.pig``) are treated as strings.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.pxql.ast import Comparison, Operator, Predicate, TRUE_PREDICATE
from repro.core.pxql.query import EntityKind, PXQLQuery
from repro.exceptions import PXQLSyntaxError
from repro.logs.records import FeatureValue
from repro.units import parse_size

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<STRING>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<SIZE>\d+(?:\.\d+)?\s*(?:KB|MB|GB|TB)\b)
  | (?P<NUMBER>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
  | (?P<OP><=|>=|!=|<>|==|=|<|>|≤|≥|≠|∧)
  | (?P<COMMA>,)
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_.\-]*)
  | (?P<QMARK>\?)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"FOR", "JOB", "JOBS", "TASK", "TASKS", "DESPITE", "OBSERVED", "EXPECTED", "AND", "WHERE"}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise PXQLSyntaxError("unexpected character", position, text)
        kind = match.lastgroup or ""
        value = match.group()
        if kind != "WS":
            tokens.append(_Token(kind=kind, text=value, position=position))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, text: str):
        self._text = text
        self._tokens = _tokenize(text)
        self._index = 0

    # -- token helpers -------------------------------------------------- #

    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise PXQLSyntaxError("unexpected end of input", len(self._text), self._text)
        self._index += 1
        return token

    def _expect_keyword(self, *keywords: str) -> str:
        token = self._next()
        word = token.text.upper()
        if token.kind != "IDENT" or word not in keywords:
            raise PXQLSyntaxError(
                f"expected {' or '.join(keywords)}", token.position, self._text
            )
        return word

    def _at_keyword(self, *keywords: str) -> bool:
        token = self._peek()
        return (
            token is not None
            and token.kind == "IDENT"
            and token.text.upper() in keywords
        )

    def at_end(self) -> bool:
        return self._peek() is None

    # -- grammar -------------------------------------------------------- #

    def parse_value(self, token: _Token) -> FeatureValue:
        if token.kind == "STRING":
            return token.text[1:-1].replace("\\'", "'").replace('\\"', '"')
        if token.kind == "SIZE":
            return parse_size(token.text)
        if token.kind == "NUMBER":
            number = float(token.text)
            return int(number) if number.is_integer() and "." not in token.text \
                and "e" not in token.text.lower() else number
        if token.kind == "IDENT":
            upper = token.text.upper()
            if upper == "TRUE":
                return True
            if upper == "FALSE":
                return False
            return token.text
        raise PXQLSyntaxError("expected a value", token.position, self._text)

    def parse_comparison(self) -> Comparison:
        feature_token = self._next()
        if feature_token.kind != "IDENT":
            raise PXQLSyntaxError("expected a feature name", feature_token.position, self._text)
        op_token = self._next()
        if op_token.kind != "OP" or op_token.text == "∧":
            raise PXQLSyntaxError("expected a comparison operator", op_token.position, self._text)
        operator = Operator.from_symbol(op_token.text)
        value_token = self._next()
        value = self.parse_value(value_token)
        return Comparison(feature=feature_token.text, operator=operator, value=value)

    def parse_predicate(self, stop_keywords: frozenset[str] = frozenset()) -> Predicate:
        atoms = [self.parse_comparison()]
        while True:
            token = self._peek()
            if token is None:
                break
            is_and = (token.kind == "OP" and token.text == "∧") or (
                token.kind == "IDENT" and token.text.upper() == "AND"
            )
            if not is_and:
                break
            self._next()
            atoms.append(self.parse_comparison())
        return Predicate.conjunction(atoms)

    def parse_pair_id(self) -> str | None:
        token = self._next()
        if token.kind == "QMARK":
            return None
        if token.kind == "STRING":
            return token.text[1:-1]
        if token.kind == "IDENT":
            return token.text
        raise PXQLSyntaxError("expected an execution identifier or '?'",
                              token.position, self._text)

    def parse_query(self) -> PXQLQuery:
        self._expect_keyword("FOR")
        entity_word = self._expect_keyword("JOB", "JOBS", "TASK", "TASKS")
        entity = EntityKind.JOB if entity_word.startswith("JOB") else EntityKind.TASK
        first_id = self.parse_pair_id()
        comma = self._peek()
        if comma is not None and comma.kind == "COMMA":
            self._next()
        second_id = self.parse_pair_id()

        despite = TRUE_PREDICATE
        observed: Predicate | None = None
        expected: Predicate | None = None
        while not self.at_end():
            keyword = self._expect_keyword("DESPITE", "OBSERVED", "EXPECTED")
            predicate = self.parse_predicate()
            if keyword == "DESPITE":
                despite = predicate
            elif keyword == "OBSERVED":
                observed = predicate
            else:
                expected = predicate
        if observed is None:
            raise PXQLSyntaxError("query is missing an OBSERVED clause", 0, self._text)
        if expected is None:
            raise PXQLSyntaxError("query is missing an EXPECTED clause", 0, self._text)
        return PXQLQuery(
            entity=entity,
            first_id=first_id,
            second_id=second_id,
            despite=despite,
            observed=observed,
            expected=expected,
        )


def parse_predicate(text: str) -> Predicate:
    """Parse a predicate string such as ``"inputsize_compare = GT AND blocksize >= 128MB"``.

    An empty (or whitespace-only) string parses to the TRUE predicate.
    """
    if not text.strip():
        return TRUE_PREDICATE
    parser = _Parser(text)
    predicate = parser.parse_predicate()
    if not parser.at_end():
        token = parser._peek()
        assert token is not None
        raise PXQLSyntaxError("unexpected trailing input", token.position, text)
    return predicate


def parse_query(text: str) -> PXQLQuery:
    """Parse a full PXQL query string."""
    parser = _Parser(text)
    query = parser.parse_query()
    return query
