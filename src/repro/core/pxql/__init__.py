"""PXQL — the PerfXplain Query Language.

A PXQL query names a pair of jobs (or tasks) and three predicates over
their pair features:

.. code-block:: text

    FOR JOBS 'job_202606140001_0007', 'job_202606140001_0019'
    DESPITE  numinstances_isSame = T AND pig_script_isSame = T
    OBSERVED duration_compare = GT
    EXPECTED duration_compare = SIM

* :mod:`repro.core.pxql.ast` — operators, atomic comparisons and
  conjunctive predicates with evaluation over pair-feature vectors;
* :mod:`repro.core.pxql.parser` — the tokenizer and recursive-descent
  parser for predicates and full queries;
* :mod:`repro.core.pxql.query` — the :class:`PXQLQuery` object and its
  semantic validation rules (Definition 1).
"""

from repro.core.pxql.ast import Comparison, Operator, Predicate, TRUE_PREDICATE
from repro.core.pxql.query import BoundQuery, EntityKind, PXQLQuery
from repro.core.pxql.parser import parse_predicate, parse_query

__all__ = [
    "Comparison",
    "Operator",
    "Predicate",
    "TRUE_PREDICATE",
    "BoundQuery",
    "EntityKind",
    "PXQLQuery",
    "parse_predicate",
    "parse_query",
]
