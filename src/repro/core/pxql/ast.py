"""PXQL abstract syntax: operators, comparisons and conjunctions.

Every predicate is a conjunction ``phi_1 AND ... AND phi_m`` where each
``phi_i`` has the form ``feature op constant`` (Section 3.2).  Evaluation is
over a pair-feature vector (a mapping from pair-feature name to value); a
missing value never satisfies a comparison.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.logs.records import FeatureValue


class Operator(enum.Enum):
    """Comparison operators supported by PXQL."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    @classmethod
    def from_symbol(cls, symbol: str) -> "Operator":
        """Parse an operator symbol (accepting common aliases)."""
        aliases = {
            "=": cls.EQ, "==": cls.EQ,
            "!=": cls.NE, "<>": cls.NE, "≠": cls.NE,
            "<": cls.LT, "<=": cls.LE, "≤": cls.LE,
            ">": cls.GT, ">=": cls.GE, "≥": cls.GE,
        }
        if symbol not in aliases:
            raise ValueError(f"unknown operator symbol: {symbol!r}")
        return aliases[symbol]


def _values_comparable(a: Any, b: Any) -> bool:
    numeric = lambda v: isinstance(v, (int, float)) and not isinstance(v, bool)
    if numeric(a) and numeric(b):
        return True
    return type(a) is type(b)


@dataclass(frozen=True)
class Comparison:
    """An atomic predicate ``feature op value``."""

    feature: str
    operator: Operator
    value: FeatureValue

    def evaluate(self, pair_values: Mapping[str, FeatureValue]) -> bool:
        """Whether the comparison holds on a pair-feature vector.

        A missing feature value (``None`` or absent) never satisfies the
        comparison, matching the semantics used throughout the paper.
        """
        return self.evaluate_value(pair_values.get(self.feature))

    def evaluate_value(self, actual: FeatureValue) -> bool:
        """Whether the comparison holds on one already-extracted value.

        This is the scalar core of :meth:`evaluate`; the columnar pair
        kernels (:mod:`repro.core.pairkernel`) map it over whole derived
        columns when no specialised vector path applies.
        """
        if actual is None:
            return False
        if self.operator is Operator.EQ:
            return actual == self.value
        if self.operator is Operator.NE:
            return actual != self.value
        if not _values_comparable(actual, self.value):
            return False
        try:
            if self.operator is Operator.LT:
                return actual < self.value
            if self.operator is Operator.LE:
                return actual <= self.value
            if self.operator is Operator.GT:
                return actual > self.value
            if self.operator is Operator.GE:
                return actual >= self.value
        except TypeError:
            return False
        raise AssertionError(f"unhandled operator {self.operator}")

    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible symbolic form: feature, operator symbol, value."""
        return {"feature": self.feature, "op": self.operator.value, "value": self.value}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Comparison":
        """Rebuild a comparison from its :meth:`to_dict` form."""
        return cls(
            feature=data["feature"],
            operator=Operator.from_symbol(data["op"]),
            value=data["value"],
        )

    def __str__(self) -> str:
        value = self.value
        if isinstance(value, str) and (" " in value or not value):
            value = f"'{value}'"
        return f"{self.feature} {self.operator.value} {value}"


@dataclass(frozen=True)
class Predicate:
    """A conjunction of atomic comparisons; the empty conjunction is true."""

    atoms: tuple[Comparison, ...] = ()

    @classmethod
    def of(cls, *atoms: Comparison) -> "Predicate":
        """Build a predicate from comparisons."""
        return cls(atoms=tuple(atoms))

    @classmethod
    def conjunction(cls, atoms: Iterable[Comparison]) -> "Predicate":
        """Build a predicate from an iterable of comparisons."""
        return cls(atoms=tuple(atoms))

    @property
    def is_true(self) -> bool:
        """Whether this is the trivial (always true) predicate."""
        return not self.atoms

    @property
    def width(self) -> int:
        """Number of atomic comparisons."""
        return len(self.atoms)

    def evaluate(self, pair_values: Mapping[str, FeatureValue]) -> bool:
        """Whether every atom holds on the pair-feature vector."""
        return all(atom.evaluate(pair_values) for atom in self.atoms)

    def features(self) -> list[str]:
        """Pair features referenced by the predicate, in atom order."""
        seen: list[str] = []
        for atom in self.atoms:
            if atom.feature not in seen:
                seen.append(atom.feature)
        return seen

    def extended(self, atom: Comparison) -> "Predicate":
        """A new predicate with one more atom appended."""
        return Predicate(atoms=self.atoms + (atom,))

    def and_then(self, other: "Predicate") -> "Predicate":
        """The conjunction of two predicates (this one's atoms first)."""
        return Predicate(atoms=self.atoms + other.atoms)

    def to_dict(self) -> list[dict[str, Any]]:
        """A JSON-compatible symbolic form: one entry per atom, in order.

        The empty list is the TRUE predicate.  Unlike ``str(predicate)``,
        this form round-trips exactly — operator and value types survive.
        """
        return [atom.to_dict() for atom in self.atoms]

    @classmethod
    def from_dict(cls, data: Iterable[Mapping[str, Any]]) -> "Predicate":
        """Rebuild a predicate from its :meth:`to_dict` form."""
        return cls(atoms=tuple(Comparison.from_dict(atom) for atom in data))

    def __str__(self) -> str:
        if not self.atoms:
            return "TRUE"
        return " AND ".join(str(atom) for atom in self.atoms)


#: The trivially-true predicate (an omitted DESPITE clause).
TRUE_PREDICATE = Predicate()
