"""Pair (training-example) features — Table 1 of the paper.

A training example is a *pair* of executions.  For every raw feature ``f``
of a single execution, the pair gets up to four derived features:

==============  =====================================================
``f_isSame``    ``"T"`` / ``"F"`` — do the two executions agree on f?
``f_compare``   ``"LT"`` / ``"SIM"`` / ``"GT"`` — numeric features only
``f_diff``      ``"(v1, v2)"`` — nominal features only
``f``           the shared value, copied only when both agree
==============  =====================================================

``compare`` uses the paper's 10%-similarity rule.  ``isSame`` for numeric
features uses a small tolerance (default 2%): on real clusters two
co-scheduled tasks share the exact same Ganglia samples and therefore have
*identical* metric averages, whereas the simulator's samples carry
measurement noise; the tolerance restores the "same machine state" meaning
the paper's ``isSame`` features have (documented in DESIGN.md).

Missing raw values propagate: if either side is missing, every derived
feature of ``f`` is missing.  NaN raw values behave like any non-equal
value under ``==`` (``NaN != NaN``), so a NaN side can never produce
``isSame = "T"`` — which is why despite-clause blocking
(:func:`repro.core.pairkernel.blocking_group_indices` and the reference's
``_group_records``) drops records whose blocked raw value is missing *or*
NaN: neither can ever join an ``isSame = T`` group, and dropping them
keeps grouping independent of NaN object identity (a requirement for
chunked blocks, whose spilled chunks are pickle round-tripped).

The functions here define the *scalar* semantics and serve the reference
path (:mod:`repro.core.pairref`) plus single-pair probes like
``PerfXplain.pair_features``; bulk derivation over many candidate pairs
runs column-at-a-time in :mod:`repro.core.pairkernel`, whose outputs the
differential suite pins to these definitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.features import (
    PERFORMANCE_METRIC,
    FeatureKind,
    FeatureLevel,
    FeatureSchema,
)
from repro.exceptions import ConfigurationError
from repro.logs.records import ExecutionRecord, FeatureValue

#: Suffixes of the derived pair features.
IS_SAME_SUFFIX = "_isSame"
COMPARE_SUFFIX = "_compare"
DIFF_SUFFIX = "_diff"

#: Values of the derived nominal features.
SAME = "T"
NOT_SAME = "F"
LESS_THAN = "LT"
SIMILAR = "SIM"
GREATER_THAN = "GT"


@dataclass(frozen=True)
class PairFeatureConfig:
    """Tunables of the pair-feature encoding.

    :param sim_threshold: two numeric values are ``SIM`` when within this
        relative fraction of one another (the paper uses 10%).
    :param is_same_tolerance: relative tolerance under which two numeric
        values count as "the same" for ``isSame`` features.
    :param level: which feature level to emit (Section 6.8).
    """

    sim_threshold: float = 0.10
    is_same_tolerance: float = 0.02
    level: FeatureLevel = FeatureLevel.FULL

    def __post_init__(self) -> None:
        if not 0.0 < self.sim_threshold < 1.0:
            raise ConfigurationError("sim_threshold must be in (0, 1)")
        if not 0.0 <= self.is_same_tolerance < 1.0:
            raise ConfigurationError("is_same_tolerance must be in [0, 1)")


DEFAULT_PAIR_CONFIG = PairFeatureConfig()


def relative_close(a: float, b: float, threshold: float) -> bool:
    """Whether two numbers are within ``threshold`` of one another.

    The paper's rule: "two values are considered to be similar if they are
    within 10% of one another".  Interpreted symmetrically:
    ``|a - b| <= threshold * max(|a|, |b|)``; two zeros are always close.
    """
    if a == b:
        return True
    scale = max(abs(a), abs(b))
    if scale == 0:
        return True
    return abs(a - b) <= threshold * scale


def compare_values(a: float, b: float, threshold: float) -> str:
    """``LT`` / ``SIM`` / ``GT`` comparison of the first value to the second."""
    if relative_close(a, b, threshold):
        return SIMILAR
    return LESS_THAN if a < b else GREATER_THAN


def _is_numeric_value(value: FeatureValue) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _raw_value(record: ExecutionRecord, feature: str) -> FeatureValue:
    if feature == PERFORMANCE_METRIC:
        return record.duration
    return record.features.get(feature)


def compute_pair_feature(
    feature: str,
    first: ExecutionRecord,
    second: ExecutionRecord,
    schema: FeatureSchema,
    config: PairFeatureConfig = DEFAULT_PAIR_CONFIG,
) -> dict[str, FeatureValue]:
    """Derived features of a single raw feature for one pair of records."""
    numeric = schema.is_numeric(feature)
    value_a = _raw_value(first, feature)
    value_b = _raw_value(second, feature)
    derived: dict[str, FeatureValue] = {}

    missing = value_a is None or value_b is None
    both_numeric = _is_numeric_value(value_a) and _is_numeric_value(value_b)

    # isSame
    if missing:
        is_same: FeatureValue = None
    elif numeric and both_numeric:
        is_same = SAME if relative_close(float(value_a), float(value_b),
                                         config.is_same_tolerance) else NOT_SAME
    else:
        is_same = SAME if value_a == value_b else NOT_SAME
    derived[feature + IS_SAME_SUFFIX] = is_same

    # compare (numeric only)
    if config.level >= FeatureLevel.COMPARISON:
        if numeric:
            if missing or not both_numeric:
                derived[feature + COMPARE_SUFFIX] = None
            else:
                derived[feature + COMPARE_SUFFIX] = compare_values(
                    float(value_a), float(value_b), config.sim_threshold
                )
        else:
            derived[feature + COMPARE_SUFFIX] = None

        # diff (nominal only)
        if numeric:
            derived[feature + DIFF_SUFFIX] = None
        elif missing:
            derived[feature + DIFF_SUFFIX] = None
        else:
            derived[feature + DIFF_SUFFIX] = f"({value_a}, {value_b})"

    # base feature, copied only when the two executions agree exactly
    if config.level >= FeatureLevel.FULL:
        if not missing and value_a == value_b:
            derived[feature] = value_a
        else:
            derived[feature] = None

    return derived


def compute_pair_features(
    first: ExecutionRecord,
    second: ExecutionRecord,
    schema: FeatureSchema,
    config: PairFeatureConfig = DEFAULT_PAIR_CONFIG,
    features: list[str] | None = None,
) -> dict[str, FeatureValue]:
    """The full pair feature vector for (first, second).

    :param features: restrict to these raw features (used for the lazy
        evaluation of query predicates over many candidate pairs).
    """
    names = features if features is not None else schema.names()
    vector: dict[str, FeatureValue] = {}
    for feature in names:
        vector.update(compute_pair_feature(feature, first, second, schema, config))
    return vector


def pair_feature_catalog(
    schema: FeatureSchema,
    config: PairFeatureConfig = DEFAULT_PAIR_CONFIG,
    exclude_performance: bool = True,
) -> dict[str, bool]:
    """All pair feature names mapped to "is numeric".

    Only base features of numeric raw features are numeric; every derived
    ``isSame`` / ``compare`` / ``diff`` feature is nominal.  Features derived
    from the performance metric (``duration``) are excluded by default —
    they are what explanations must explain, not what they may mention.
    """
    catalog: dict[str, bool] = {}
    for feature in schema.names():
        if exclude_performance and feature == PERFORMANCE_METRIC:
            continue
        numeric = schema.is_numeric(feature)
        catalog[feature + IS_SAME_SUFFIX] = False
        if config.level >= FeatureLevel.COMPARISON:
            if numeric:
                catalog[feature + COMPARE_SUFFIX] = False
            else:
                catalog[feature + DIFF_SUFFIX] = False
        if config.level >= FeatureLevel.FULL:
            catalog[feature] = numeric
    return catalog


def raw_feature_of(pair_feature: str) -> str:
    """The raw feature a pair feature was derived from.

    >>> raw_feature_of("inputsize_compare")
    'inputsize'
    >>> raw_feature_of("blocksize")
    'blocksize'
    """
    for suffix in (IS_SAME_SUFFIX, COMPARE_SUFFIX, DIFF_SUFFIX):
        if pair_feature.endswith(suffix):
            return pair_feature[: -len(suffix)]
    return pair_feature
