"""Rendering evaluation results as CSV, Markdown and JSON.

The evaluation harness returns :class:`~repro.core.evaluation.SweepResult`
objects; this module turns them into artefacts that can be diffed against
the paper's figures or dropped into a report:

* :func:`sweep_to_csv` — one row per (technique, width) with mean/std of
  every metric;
* :func:`sweep_to_markdown` — a Markdown table of one metric;
* :func:`sweep_to_dict` / :func:`save_sweep_json` — machine-readable export;
* :func:`explanation_report` — a human-readable account of one explanation
  (clauses, metrics, and the pair of interest's raw feature values for every
  feature the explanation mentions).
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Mapping

from repro.core.evaluation import SweepResult
from repro.core.explanation import Explanation
from repro.core.pairs import raw_feature_of
from repro.logs.records import ExecutionRecord

_METRICS = ("precision", "generality", "relevance")


def sweep_to_dict(sweep: SweepResult) -> dict:
    """A JSON-compatible summary of a sweep: technique -> width -> metrics."""
    summary: dict[str, dict[str, dict[str, float]]] = {}
    for technique in sweep.techniques():
        by_width: dict[str, dict[str, float]] = {}
        for width in sweep.widths():
            if not sweep.select(technique, width):
                continue
            entry: dict[str, float] = {}
            for metric in _METRICS:
                entry[f"{metric}_mean"] = round(sweep.mean(technique, width, metric), 6)
                entry[f"{metric}_std"] = round(sweep.std(technique, width, metric), 6)
            by_width[str(width)] = entry
        summary[technique] = by_width
    return summary


def save_sweep_json(sweep: SweepResult, path: str | Path) -> Path:
    """Write the sweep summary to a JSON file; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(sweep_to_dict(sweep), indent=2, sort_keys=True),
                      encoding="utf-8")
    return target


def summary_table(
    results: Mapping[str, Mapping[str, Mapping[str, float]]],
    metric: str = "precision",
) -> str:
    """A plain-text table rendered from the :func:`sweep_to_dict` form.

    The service layer ships evaluation results over the wire in exactly
    this form (:class:`repro.service.protocol.EvaluateResponse`), so the
    CLI prints the same tables whether a sweep ran in-process or arrived
    from a remote service.  One row per width, one column per technique.
    """
    techniques = sorted(results)
    widths = sorted({int(w) for by_width in results.values() for w in by_width})
    header = "width".ljust(8) + "".join(name.ljust(22) for name in techniques)
    lines = [header]
    for width in widths:
        cells = [str(width).ljust(8)]
        for name in techniques:
            entry = results[name].get(str(width))
            if entry is None:
                cells.append("-".ljust(22))
            else:
                mean = entry[f"{metric}_mean"]
                std = entry[f"{metric}_std"]
                cells.append(f"{mean:.3f} +/- {std:.3f}".ljust(22))
        lines.append("".join(cells))
    return "\n".join(lines)


def sweep_to_csv(sweep: SweepResult) -> str:
    """CSV text with one row per (technique, width)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    header = ["technique", "width"]
    for metric in _METRICS:
        header.extend([f"{metric}_mean", f"{metric}_std"])
    writer.writerow(header)
    for technique in sweep.techniques():
        for width in sweep.widths():
            if not sweep.select(technique, width):
                continue
            row: list[object] = [technique, width]
            for metric in _METRICS:
                row.append(round(sweep.mean(technique, width, metric), 6))
                row.append(round(sweep.std(technique, width, metric), 6))
            writer.writerow(row)
    return buffer.getvalue()


def sweep_to_markdown(sweep: SweepResult, metric: str = "precision") -> str:
    """A Markdown table of one metric: rows are widths, columns techniques."""
    techniques = sweep.techniques()
    lines = ["| width | " + " | ".join(techniques) + " |",
             "|---" * (len(techniques) + 1) + "|"]
    for width in sweep.widths():
        cells = [str(width)]
        for technique in techniques:
            mean = sweep.mean(technique, width, metric)
            std = sweep.std(technique, width, metric)
            cells.append(f"{mean:.3f} ± {std:.3f}")
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def explanation_report(
    explanation: Explanation,
    first: ExecutionRecord | None = None,
    second: ExecutionRecord | None = None,
) -> str:
    """A human-readable report of one explanation.

    When the pair of interest's records are supplied, the report also lists
    each mentioned raw feature's value on both executions, which is what a
    user would look at to act on the explanation.
    """
    lines = [f"Technique: {explanation.technique}"]
    lines.append(explanation.format())
    if first is not None and second is not None:
        mentioned = {raw_feature_of(name)
                     for name in explanation.because.features()
                     + explanation.despite.features()}
        if mentioned:
            lines.append("")
            lines.append("Raw feature values for the pair of interest:")
            width = max(len(name) for name in mentioned)
            for raw in sorted(mentioned):
                left = _format_value(first.features.get(raw))
                right = _format_value(second.features.get(raw))
                lines.append(f"  {raw.ljust(width)}  {left}  vs  {right}")
    return "\n".join(lines)


def _format_value(value) -> str:
    if value is None:
        return "(missing)"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def save_experiment_bundle(
    sweeps: Mapping[str, SweepResult], directory: str | Path
) -> list[Path]:
    """Write every sweep as both JSON and CSV into a directory.

    :returns: the list of files written (two per sweep).
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for name, sweep in sweeps.items():
        json_path = save_sweep_json(sweep, target / f"{name}.json")
        csv_path = target / f"{name}.csv"
        csv_path.write_text(sweep_to_csv(sweep), encoding="utf-8")
        written.extend([json_path, csv_path])
    return written
