"""The pluggable explainer registry.

Explanation-generation techniques are looked up by name at runtime instead
of being hard-coded into the :class:`~repro.core.api.PerfXplain` facade.
Anything that satisfies the :class:`Explainer` protocol can be registered —
the facade, the CLI ``--technique`` flag and the evaluation harness all use
the same registry, so a technique registered once works everywhere:

.. code-block:: python

    from repro.core.registry import register_explainer

    @register_explainer("coinflip")
    class CoinFlipExplainer:
        name = "CoinFlip"

        def explain(self, log, query, schema=None, width=None):
            ...

    PerfXplain(log).explain(query, technique="coinflip")

Registered objects may be classes or zero-argument-callable factories.  At
instantiation time the registry inspects the callable's signature and
injects only the keyword arguments it declares, out of:

* ``config`` — the facade's :class:`~repro.core.explainer.PerfXplainConfig`;
* ``pair_config`` — that config's pair-feature encoding parameters;
* ``rng`` — a :class:`random.Random` seeded deterministically per technique.

The three built-in techniques (``perfxplain``, ``ruleofthumb``,
``simbutdiff``) register themselves when their modules are imported; the
registry imports them lazily so that a bare ``create_explainer("perfxplain")``
works without importing :mod:`repro.core` first.
"""

from __future__ import annotations

import inspect
import random
import zlib
from typing import TYPE_CHECKING, Any, Callable, Protocol, runtime_checkable

from repro.exceptions import ExplanationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.explainer import PerfXplainConfig
    from repro.core.explanation import Explanation
    from repro.core.features import FeatureSchema
    from repro.core.pxql.query import PXQLQuery
    from repro.logs.store import ExecutionLog


@runtime_checkable
class Explainer(Protocol):
    """The interface every explanation-generation technique exposes.

    ``explain`` may additionally accept ``auto_despite`` (despite-clause
    generation) and ``examples`` (precomputed training examples, used by the
    session layer to share work across queries); callers detect support for
    those keywords from the signature, so minimal implementations can omit
    them.
    """

    name: str

    def explain(
        self,
        log: "ExecutionLog",
        query: "PXQLQuery",
        schema: "FeatureSchema | None" = None,
        width: int | None = None,
    ) -> "Explanation":
        """Generate an explanation for a query bound to a pair of interest."""
        ...  # pragma: no cover


#: A callable producing an explainer; keyword arguments are injected by name.
ExplainerFactory = Callable[..., Explainer]

_REGISTRY: dict[str, ExplainerFactory] = {}

#: Keyword arguments the registry knows how to inject into factories.
_INJECTABLE = ("config", "pair_config", "rng")


def _normalize(name: str) -> str:
    if not isinstance(name, str) or not name.strip():
        raise ExplanationError("explainer names must be non-empty strings")
    return name.strip().lower()


def register_explainer(
    name: str,
    factory: ExplainerFactory | None = None,
    *,
    override: bool = False,
) -> Callable[[ExplainerFactory], ExplainerFactory] | ExplainerFactory:
    """Register an explainer class (or factory) under a technique name.

    Usable as a decorator — ``@register_explainer("myname")`` — or called
    directly with the factory as the second argument.  Names are
    case-insensitive.

    :param name: the public technique name (as passed to ``technique=``).
    :param factory: the class or factory callable (omitted in decorator use).
    :param override: allow replacing an existing registration.
    :raises ExplanationError: on a duplicate name unless ``override`` is set.
    """
    key = _normalize(name)

    def _register(target: ExplainerFactory) -> ExplainerFactory:
        if key in _REGISTRY and not override:
            raise ExplanationError(
                f"an explainer named {key!r} is already registered; "
                f"pass override=True to replace it"
            )
        _REGISTRY[key] = target
        return target

    if factory is not None:
        return _register(factory)
    return _register


def unregister_explainer(name: str) -> None:
    """Remove a registration; unknown names are ignored."""
    _REGISTRY.pop(_normalize(name), None)


def registered_explainers() -> tuple[str, ...]:
    """All registered technique names, in registration order."""
    _ensure_builtins()
    return tuple(_REGISTRY)


def is_registered(name: str) -> bool:
    """Whether a technique name resolves to a registered explainer."""
    _ensure_builtins()
    return _normalize(name) in _REGISTRY


def explainer_seed_offset(name: str) -> int:
    """A deterministic per-technique seed offset.

    Keeps the facade's RNG discipline stable: every technique derives its
    generator from ``base_seed + offset(name)``, where the offset depends
    only on the technique's name — not on import order, registration order,
    or which other techniques a caller instantiates.
    """
    return zlib.crc32(_normalize(name).encode("utf-8"))


def create_explainer(
    name: str,
    config: "PerfXplainConfig | None" = None,
    rng: random.Random | None = None,
) -> Explainer:
    """Instantiate the registered explainer for a technique name.

    :param config: facade configuration, injected if the factory accepts a
        ``config`` (or ``pair_config``) keyword.
    :param rng: random generator, injected if the factory accepts ``rng``.
    :raises ExplanationError: for names with no registration.
    """
    _ensure_builtins()
    key = _normalize(name)
    factory = _REGISTRY.get(key)
    if factory is None:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise ExplanationError(
            f"unknown technique {name!r}; registered techniques: {known}"
        )
    if config is None:
        from repro.core.explainer import PerfXplainConfig

        config = PerfXplainConfig()
    available: dict[str, Any] = {
        "config": config,
        "pair_config": config.pair_config,
        "rng": rng if rng is not None else random.Random(0),
    }
    accepted = _accepted_keywords(factory, _INJECTABLE)
    return factory(**{kw: available[kw] for kw in _INJECTABLE if kw in accepted})


def explainer_accepts_examples(explainer: Explainer) -> bool:
    """Whether a technique's ``explain`` declares the ``examples`` keyword.

    The session layer uses this to decide *before* dispatching whether to
    build the shared training matrix for a query — the expensive,
    parallel-friendly work — so it can run outside the per-technique
    serialisation that keeps stateful explainers deterministic.
    """
    return "examples" in _accepted_keywords(explainer.explain, ("examples",))


def call_explainer(
    explainer: Explainer,
    log: "ExecutionLog",
    query: "PXQLQuery",
    *,
    schema: "FeatureSchema | None" = None,
    width: int | None = None,
    auto_despite: bool = False,
    examples: "list | Callable[[], list | None] | None" = None,
) -> "Explanation":
    """Invoke ``explainer.explain`` with only the keywords it supports.

    ``schema`` and ``width`` are part of the :class:`Explainer` protocol and
    always passed; ``auto_despite`` and ``examples`` are optional extensions.
    Requesting ``auto_despite`` from a technique that does not declare the
    keyword is an error (silently dropping it would change semantics);
    ``examples`` is a pure optimisation and is dropped when unsupported.
    It may be a zero-argument callable, invoked only if the technique
    declares the keyword — so callers can defer an expensive construction
    for techniques that would ignore it.
    """
    kwargs: dict[str, Any] = {"schema": schema, "width": width}
    accepted = _accepted_keywords(explainer.explain, ("auto_despite", "examples"))
    if auto_despite:
        if "auto_despite" not in accepted:
            raise ExplanationError(
                f"technique {explainer.name!r} does not support auto_despite"
            )
        kwargs["auto_despite"] = auto_despite
    if examples is not None and "examples" in accepted:
        resolved = examples() if callable(examples) else examples
        if resolved is not None:
            kwargs["examples"] = resolved
    return explainer.explain(log, query, **kwargs)


def _accepted_keywords(callable_: Callable, candidates: tuple[str, ...]) -> set[str]:
    """Which of ``candidates`` can be passed to ``callable_`` by keyword."""
    try:
        parameters = inspect.signature(callable_).parameters
    except (TypeError, ValueError):  # builtins without introspectable signatures
        return set()
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()):
        return set(candidates)
    keyword_kinds = (
        inspect.Parameter.POSITIONAL_OR_KEYWORD,
        inspect.Parameter.KEYWORD_ONLY,
    )
    return {
        name
        for name, parameter in parameters.items()
        if name in candidates and parameter.kind in keyword_kinds
    }


def _ensure_builtins() -> None:
    """Import the modules that register the built-in techniques."""
    import repro.core.baselines  # noqa: F401  (registers ruleofthumb, simbutdiff)
    import repro.core.explainer  # noqa: F401  (registers perfxplain)
    import repro.detectors  # noqa: F401  (registers the detect-* techniques)
