"""The two PXQL queries evaluated in the paper, plus pair-of-interest helpers.

Section 6.2 defines:

* **WhyLastTaskFaster** — a task-level query: despite processing a similar
  amount of data, on the same host, within the same job, the last task was
  faster than an earlier task; the user expected similar durations.
* **WhySlowerDespiteSameNumInstances** — a job-level query: despite running
  the same Pig script on the same number of instances, one job was much
  slower; the user expected similar durations.

Feature names follow this repository's execution-log schema (``job_id``
instead of the paper's ``jobID``, ``pig_script`` instead of ``pigscript``).
"""

from __future__ import annotations

import math
import random

from repro.core.examples import Label, iter_related_pairs
from repro.core.features import FeatureSchema, infer_schema
from repro.core.pairs import PairFeatureConfig
from repro.core.pxql.ast import Comparison, Operator, Predicate
from repro.core.pxql.query import EntityKind, PXQLQuery
from repro.exceptions import ExplanationError
from repro.logs.store import ExecutionLog

#: Pair-feature value constants (duplicated here for readable query builders).
_T = "T"
_SIM = "SIM"
_LT = "LT"
_GT = "GT"


def why_last_task_faster(
    first_id: str | None = None, second_id: str | None = None
) -> PXQLQuery:
    """The paper's first evaluation query (task level).

    "Why did task T1 run slower than task T2 (the last task on the host),
    even though both belong to the same job, process a similar amount of
    data and ran on the same host?"  The pair of interest is ordered so
    that the *first* task is the slower, earlier one; the observed relation
    is that the second (last) task was faster — ``duration_compare = GT``
    read as T1's duration being greater than T2's.

    The despite clause additionally pins ``task_type_isSame = T`` (the
    paper's Example 5 is explicitly about map tasks; without this atom a
    map/reduce pair that happens to read similar byte counts could slip in).
    """
    despite = Predicate.of(
        Comparison("job_id_isSame", Operator.EQ, _T),
        Comparison("task_type_isSame", Operator.EQ, _T),
        Comparison("inputsize_compare", Operator.EQ, _SIM),
        Comparison("hostname_isSame", Operator.EQ, _T),
    )
    observed = Predicate.of(Comparison("duration_compare", Operator.EQ, _GT))
    expected = Predicate.of(Comparison("duration_compare", Operator.EQ, _SIM))
    return PXQLQuery(
        entity=EntityKind.TASK,
        despite=despite,
        observed=observed,
        expected=expected,
        first_id=first_id,
        second_id=second_id,
        name="WhyLastTaskFaster",
    )


def why_slower_despite_same_num_instances(
    first_id: str | None = None, second_id: str | None = None
) -> PXQLQuery:
    """The paper's second evaluation query (job level).

    "Why was job J1 much slower than job J2, even though both run the same
    Pig script on the same number of instances?"
    """
    despite = Predicate.of(
        Comparison("numinstances_isSame", Operator.EQ, _T),
        Comparison("pig_script_isSame", Operator.EQ, _T),
    )
    observed = Predicate.of(Comparison("duration_compare", Operator.EQ, _GT))
    expected = Predicate.of(Comparison("duration_compare", Operator.EQ, _SIM))
    return PXQLQuery(
        entity=EntityKind.JOB,
        despite=despite,
        observed=observed,
        expected=expected,
        first_id=first_id,
        second_id=second_id,
        name="WhySlowerDespiteSameNumInstances",
    )


#: The paper's queries, keyed by their evaluation-section names.
PAPER_QUERIES = {
    "WhyLastTaskFaster": why_last_task_faster,
    "WhySlowerDespiteSameNumInstances": why_slower_despite_same_num_instances,
}


def find_pair_of_interest(
    log: ExecutionLog,
    query: PXQLQuery,
    schema: FeatureSchema | None = None,
    config: PairFeatureConfig | None = None,
    rng: random.Random | None = None,
    max_candidate_pairs: int | None = 500_000,
) -> tuple[str, str]:
    """Pick a pair of executions that the query could legitimately be about.

    The pair must be related to the query and labeled OBSERVED (it satisfies
    the despite and observed clauses).  Among all such pairs the one with the
    largest runtime contrast (``|log(d1 / d2)|``) is returned, which gives
    the evaluation a clear, reproducible pair of interest.

    :raises ExplanationError: if no pair in the log matches the query.
    """
    from repro.core.examples import records_for_query

    rng = rng if rng is not None else random.Random(0)
    records = records_for_query(log, query)
    if schema is None:
        schema = infer_schema(records)
    durations = {record.entity_id: record.duration for record in records}

    best: tuple[str, str] | None = None
    best_contrast = -1.0
    for first, second, label in iter_related_pairs(
        log, query, schema, config, max_candidate_pairs, rng
    ):
        if label is not Label.OBSERVED:
            continue
        d1 = max(durations[first.entity_id], 1e-9)
        d2 = max(durations[second.entity_id], 1e-9)
        contrast = abs(math.log(d1 / d2))
        if contrast > best_contrast:
            best_contrast = contrast
            best = (first.entity_id, second.entity_id)
    if best is None:
        raise ExplanationError(
            f"no pair in the log satisfies the despite and observed clauses of "
            f"query {query.name or str(query)!r}"
        )
    return best
