"""Machine-readable result containers for one or many explanations.

A :class:`Report` collects the outcome of answering one or more PXQL
queries — the resolved query, the pair of interest it was bound to, and the
generated :class:`~repro.core.explanation.Explanation` — and serializes the
whole bundle to and from JSON.  The batch API
(:meth:`repro.core.api.PerfXplainSession.explain_batch`) returns one, and
the CLI's ``--format json`` output is a report's :meth:`Report.to_json`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.core.explanation import Explanation
from repro.core.pxql.query import PXQLQuery


@dataclass(frozen=True)
class ReportEntry:
    """One answered query: the query text, its pair and its explanation.

    :param query: the resolved query in PXQL text form (re-parseable).
    :param first_id: first execution of the pair of interest.
    :param second_id: second execution of the pair of interest.
    :param explanation: the generated explanation.
    :param error: set (instead of ``explanation``) when a query failed and
        the caller asked for failures to be collected rather than raised.
    :param technique: name of the technique that produced the explanation
        (self-describing JSON: consumers need not parse the explanation).
    :param width: the generated explanation's width (atom count).
    :param elapsed_ms: wall-clock milliseconds spent answering the query,
        as measured by whichever layer produced the entry (session batch,
        service executor, CLI).
    """

    query: str
    first_id: str | None = None
    second_id: str | None = None
    explanation: Explanation | None = None
    error: str | None = None
    technique: str | None = None
    width: int | None = None
    elapsed_ms: float | None = None

    @classmethod
    def for_query(
        cls,
        query: PXQLQuery,
        explanation: Explanation | None,
        error: str | None = None,
        elapsed_ms: float | None = None,
    ) -> "ReportEntry":
        """Build an entry from a resolved query object.

        ``technique`` and ``width`` are read off the explanation itself, so
        the entry always describes what was actually generated rather than
        what was requested.
        """
        return cls(
            query=str(query),
            first_id=query.first_id,
            second_id=query.second_id,
            explanation=explanation,
            error=error,
            technique=explanation.technique if explanation is not None else None,
            width=explanation.width if explanation is not None else None,
            elapsed_ms=elapsed_ms,
        )

    @property
    def ok(self) -> bool:
        """Whether the query produced an explanation."""
        return self.explanation is not None

    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible form that round-trips via :meth:`from_dict`."""
        return {
            "query": self.query,
            "pair": [self.first_id, self.second_id],
            "explanation": (
                self.explanation.to_dict() if self.explanation is not None else None
            ),
            "error": self.error,
            # Self-describing even for hand-built entries: fall back to the
            # explanation's own technique/width when the fields are unset.
            "technique": (
                self.technique
                if self.technique is not None
                else (self.explanation.technique if self.explanation else None)
            ),
            "width": (
                self.width
                if self.width is not None
                else (self.explanation.width if self.explanation else None)
            ),
            "elapsed_ms": self.elapsed_ms,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ReportEntry":
        """Rebuild an entry from its :meth:`to_dict` form.

        Payloads written before the self-describing fields existed (no
        ``technique``/``width``/``elapsed_ms`` keys) still parse; when an
        old payload carries an explanation, ``technique`` and ``width``
        are recovered from it.
        """
        pair = data.get("pair") or [None, None]
        explanation_data = data.get("explanation")
        explanation = (
            Explanation.from_dict(explanation_data)
            if explanation_data is not None
            else None
        )
        technique = data.get("technique")
        width = data.get("width")
        if explanation is not None:
            if technique is None:
                technique = explanation.technique
            if width is None:
                width = explanation.width
        elapsed_ms = data.get("elapsed_ms")
        return cls(
            query=data["query"],
            first_id=pair[0],
            second_id=pair[1],
            explanation=explanation,
            error=data.get("error"),
            technique=technique,
            width=width,
            elapsed_ms=float(elapsed_ms) if elapsed_ms is not None else None,
        )


@dataclass
class Report:
    """An ordered collection of answered queries."""

    entries: list[ReportEntry] = field(default_factory=list)

    def add(self, entry: ReportEntry) -> None:
        """Append one entry."""
        self.entries.append(entry)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[ReportEntry]:
        return iter(self.entries)

    def __getitem__(self, index: int) -> ReportEntry:
        return self.entries[index]

    @property
    def explanations(self) -> list[Explanation]:
        """The explanations of the successful entries, in order."""
        return [entry.explanation for entry in self.entries if entry.explanation]

    @property
    def failures(self) -> list[ReportEntry]:
        """The entries whose queries failed."""
        return [entry for entry in self.entries if not entry.ok]

    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible form that round-trips via :meth:`from_dict`."""
        return {"entries": [entry.to_dict() for entry in self.entries]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Report":
        """Rebuild a report from its :meth:`to_dict` form."""
        return cls(entries=[ReportEntry.from_dict(e) for e in data.get("entries", ())])

    def to_json(self, indent: int | None = None) -> str:
        """The :meth:`to_dict` form rendered as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Report":
        """Rebuild a report from its :meth:`to_json` form."""
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path, indent: int = 2) -> Path:
        """Write the report as JSON; returns the path written."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json(indent=indent), encoding="utf-8")
        return target

    def format(self) -> str:
        """Human-readable rendering of every entry."""
        blocks: list[str] = []
        for index, entry in enumerate(self.entries, start=1):
            first_line = (entry.query.splitlines() or ["<empty query>"])[0]
            lines = [f"[{index}] {first_line}"]
            if entry.first_id and entry.second_id:
                lines.append(f"    pair: {entry.first_id} vs {entry.second_id}")
            if entry.explanation is not None:
                lines.extend(
                    "    " + line for line in entry.explanation.format().splitlines()
                )
            else:
                lines.append(f"    error: {entry.error}")
            blocks.append("\n".join(lines))
        return "\n\n".join(blocks)
