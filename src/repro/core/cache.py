"""A small bounded LRU cache with hit/miss/eviction accounting.

The batch session (:class:`repro.core.api.PerfXplainSession`) memoises four
kinds of intermediate work — whole explanations, encoded training matrices,
pair-of-interest selections and pair-feature vectors.  Against a long-lived
service (:mod:`repro.service`) those caches see unbounded traffic, so each
one is an :class:`LRUCache`: capacity-bounded with least-recently-used
eviction, or unlimited when constructed with ``capacity=None``.

Every cache keeps running :class:`CacheStats` counters so operators can see
how much work the session layer is actually saving
(:meth:`repro.core.api.PerfXplainSession.cache_stats`, surfaced per log by
:meth:`repro.service.PerfXplainService.stats`).

The cache is thread-safe: every operation — lookup, insertion, eviction,
selective invalidation, stats — runs under one internal mutex, so
concurrent readers (the service's reader-writer sessions) can probe and
fill a shared cache without torn recency state or lost counters.  The
critical sections are dictionary probes, never computations; pair the
cache with :class:`repro.core.locks.SingleFlight` to make cold-key
computations run once instead of racing.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterator

__all__ = ["CacheStats", "LRUCache"]

_MISSING = object()


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of one cache's accounting counters.

    :param hits: lookups that found their key.
    :param misses: lookups that did not.
    :param evictions: entries dropped because the cache was at capacity.
    :param size: entries currently held.
    :param capacity: maximum entries held (``None`` = unlimited).
    """

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int | None

    @property
    def lookups(self) -> int:
        """Total lookups observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0.0 when nothing was looked up)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible form (used by the service stats endpoint)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": round(self.hit_rate, 6),
        }


class LRUCache:
    """A mapping bounded by entry count with least-recently-used eviction.

    ``capacity=None`` disables eviction entirely (the cache degenerates to
    a counting dict); ``capacity=0`` caches nothing, so every lookup misses
    — useful for switching memoisation off without touching call sites.

    Lookups go through :meth:`get` (which counts a hit or a miss and
    refreshes recency); insertion goes through :meth:`put`.  The
    ``key in cache`` / ``cache[key]`` protocol is supported for tests and
    introspection but deliberately does *not* touch the counters or the
    recency order.
    """

    __slots__ = ("_capacity", "_entries", "_hits", "_misses", "_evictions", "_lock")

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 0:
            raise ValueError("capacity must be >= 0 or None for unlimited")
        self._capacity = capacity
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._lock = threading.Lock()

    @property
    def capacity(self) -> int | None:
        """The configured bound (``None`` = unlimited)."""
        return self._capacity

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value for ``key`` (counted, recency-refreshed)."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return default
            self._hits += 1
            self._entries.move_to_end(key)
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) an entry, evicting the LRU one if needed."""
        if self._capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            if self._capacity is not None and len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def stats(self) -> CacheStats:
        """A snapshot of the accounting counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self._capacity,
            )

    def discard_if(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``.

        Selective invalidation for append-only log growth: the session
        keeps entries whose clause signature never touches the grown
        record kind and discards only the rest.  Returns the number of
        entries dropped; discards are not counted as evictions (the
        cache was not at capacity — the entries went stale).
        """
        with self._lock:
            stale = [key for key in self._entries if predicate(key)]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def clear(self) -> None:
        """Drop every entry (counters keep accumulating)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __getitem__(self, key: Hashable) -> Any:
        return self._entries[key]

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._entries)
