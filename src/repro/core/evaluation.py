"""Evaluation harness: repeated 2-fold cross-validation (Section 6).

The paper's procedure: split the log into a training log and a test log by
assigning each *job* to the training side with 50% probability, generate
the explanation from the training log, measure its precision (and
relevance / generality) over the test log, and repeat ten times reporting
means and standard deviations.  This module implements that procedure plus
the specific sweeps behind each figure:

* precision vs. explanation width for several techniques (Fig. 3a, 3b);
* cross-workload training (Fig. 3c);
* precision vs. training-log size (Fig. 3d);
* relevance of generated despite clauses (Table 3, Fig. 4a);
* precision vs. generality trade-off (Fig. 4b);
* feature levels (Fig. 4c).
"""

from __future__ import annotations

import math
import random
import statistics
from dataclasses import dataclass, field
from typing import Protocol, Sequence

from operator import and_, gt

from repro.core.examples import (
    Label,
    pair_kernel_for,
    related_index_batches,
    validate_query_features,
    records_for_query,
)
from repro.core.explanation import Explanation, ExplanationMetrics
from repro.core.explainer import PerfXplainConfig, PerfXplainExplainer
from repro.core.features import FeatureLevel, FeatureSchema, infer_schema
from repro.core.pairkernel import PairContext
from repro.core.pairs import PairFeatureConfig
from repro.core.pxql.ast import Predicate, TRUE_PREDICATE
from repro.core.pxql.query import EntityKind, PXQLQuery
from repro.exceptions import EvaluationError
from repro.logs.store import ExecutionLog


class ExplanationTechnique(Protocol):
    """The interface every explanation-generation technique exposes.

    This is the same contract as :class:`repro.core.registry.Explainer`
    (plus the optional ``auto_despite`` keyword); instances obtained from
    the registry — e.g. via :meth:`repro.core.api.PerfXplain.techniques` —
    can be passed to every sweep in this module.
    """

    name: str

    def explain(
        self,
        log: ExecutionLog,
        query: PXQLQuery,
        schema: FeatureSchema | None = None,
        width: int | None = None,
        auto_despite: bool = False,
    ) -> Explanation:
        """Generate an explanation for a query bound to a pair of interest."""
        ...  # pragma: no cover


# --------------------------------------------------------------------- #
# measuring an explanation on a held-out log
# --------------------------------------------------------------------- #


def measure_on_log(
    explanation: Explanation,
    query: PXQLQuery,
    log: ExecutionLog,
    schema: FeatureSchema | None = None,
    config: PairFeatureConfig | None = None,
    max_candidate_pairs: int | None = 500_000,
    rng: random.Random | None = None,
    workers: int = 1,
) -> ExplanationMetrics:
    """Relevance, precision and generality of an explanation over a log.

    The metrics are estimated over all pairs of the log that are related to
    the query (Definition 7).  Both the relatedness filter and the
    explanation's despite/because clauses run as vectorised kernel masks
    over batched candidate index pairs, so only the derived features the
    query and explanation mention are ever computed — column-at-a-time,
    never per pair.  Explanation atoms over features missing from the log's
    schema behave like the missing pair-feature values they would read:
    they satisfy nothing.
    """
    config = config if config is not None else PairFeatureConfig()
    rng = rng if rng is not None else random.Random(0)
    records = records_for_query(log, query)
    if schema is None:
        schema = infer_schema(records)
    validate_query_features(query, schema)

    in_context = 0
    in_context_expected = 0
    matching_because = 0
    matching_because_observed = 0

    kernel = pair_kernel_for(log, query, schema, config)
    observed_label = Label.OBSERVED
    for firsts, seconds, labels in related_index_batches(
        kernel, query, max_candidate_pairs, rng, workers=workers
    ):
        ctx = PairContext(firsts, seconds)
        despite = kernel.predicate_mask(explanation.despite, ctx)
        because = kernel.predicate_mask(explanation.because, ctx)
        observed_flags = bytearray(
            1 if label is observed_label else 0 for label in labels
        )
        both = bytearray(map(and_, despite, because))
        in_context += sum(despite)
        # Labels are binary: expected == related and not observed.
        in_context_expected += sum(map(gt, despite, observed_flags))
        matching_because += sum(both)
        matching_because_observed += sum(map(and_, both, observed_flags))

    relevance = in_context_expected / in_context if in_context else 0.0
    precision = matching_because_observed / matching_because if matching_because else 0.0
    generality = matching_because / in_context if in_context else 0.0
    return ExplanationMetrics(
        relevance=relevance,
        precision=precision,
        generality=generality,
        support=in_context,
    )


# --------------------------------------------------------------------- #
# sweep results
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class RunMetrics:
    """Metrics of one (technique, width, repetition) measurement."""

    technique: str
    width: int
    repetition: int
    metrics: ExplanationMetrics
    explanation: Explanation | None = None


@dataclass
class SweepResult:
    """All measurements of one experiment sweep."""

    runs: list[RunMetrics] = field(default_factory=list)

    def add(self, run: RunMetrics) -> None:
        """Record one measurement."""
        self.runs.append(run)

    def techniques(self) -> list[str]:
        """Technique names present, in first-seen order."""
        seen: list[str] = []
        for run in self.runs:
            if run.technique not in seen:
                seen.append(run.technique)
        return seen

    def widths(self) -> list[int]:
        """Widths present, sorted."""
        return sorted({run.width for run in self.runs})

    def select(self, technique: str, width: int | None = None) -> list[RunMetrics]:
        """All runs of a technique (optionally at one width)."""
        return [
            run
            for run in self.runs
            if run.technique == technique and (width is None or run.width == width)
        ]

    def _values(self, technique: str, width: int, metric: str) -> list[float]:
        return [getattr(run.metrics, metric) for run in self.select(technique, width)]

    def mean(self, technique: str, width: int, metric: str = "precision") -> float:
        """Mean of a metric across repetitions (0 when absent)."""
        values = self._values(technique, width, metric)
        return statistics.fmean(values) if values else 0.0

    def std(self, technique: str, width: int, metric: str = "precision") -> float:
        """Sample standard deviation of a metric across repetitions."""
        values = self._values(technique, width, metric)
        return statistics.stdev(values) if len(values) > 1 else 0.0

    def series(self, technique: str, metric: str = "precision") -> list[tuple[int, float, float]]:
        """(width, mean, std) points for one technique."""
        return [
            (width, self.mean(technique, width, metric), self.std(technique, width, metric))
            for width in self.widths()
        ]

    def format_table(self, metric: str = "precision") -> str:
        """A plain-text table: one row per width, one column per technique."""
        techniques = self.techniques()
        header = "width".ljust(8) + "".join(name.ljust(22) for name in techniques)
        lines = [header]
        for width in self.widths():
            cells = [str(width).ljust(8)]
            for name in techniques:
                mean = self.mean(name, width, metric)
                std = self.std(name, width, metric)
                cells.append(f"{mean:.3f} +/- {std:.3f}".ljust(22))
            lines.append("".join(cells))
        return "\n".join(lines)


# --------------------------------------------------------------------- #
# train / test splitting helpers
# --------------------------------------------------------------------- #


def _forced_job_ids(log: ExecutionLog, query: PXQLQuery) -> set[str]:
    """Jobs that must be present on both sides of a split (pair of interest)."""
    forced: set[str] = set()
    if not query.has_pair:
        return forced
    if query.entity is EntityKind.JOB:
        forced.update({query.first_id, query.second_id})  # type: ignore[arg-type]
    else:
        for task_id in (query.first_id, query.second_id):
            task = log.find_task(task_id)  # type: ignore[arg-type]
            if task is not None:
                forced.add(task.job_id)
    return forced


def split_for_repetition(
    log: ExecutionLog,
    query: PXQLQuery,
    repetition: int,
    seed: int,
    train_fraction: float = 0.5,
) -> tuple[ExecutionLog, ExecutionLog]:
    """The train/test split used for one repetition of an experiment."""
    rng = random.Random((seed * 1_000_003) ^ repetition)
    forced = _forced_job_ids(log, query)
    return log.split_train_test(
        train_fraction=train_fraction, rng=rng, always_include_job_ids=forced
    )


# --------------------------------------------------------------------- #
# the sweeps behind each figure
# --------------------------------------------------------------------- #


def evaluate_precision_vs_width(
    log: ExecutionLog,
    query: PXQLQuery,
    techniques: Sequence[ExplanationTechnique],
    widths: Sequence[int] = (0, 1, 2, 3, 4, 5),
    repetitions: int = 10,
    seed: int = 0,
    train_fraction: float = 0.5,
    pair_config: PairFeatureConfig | None = None,
    max_eval_pairs: int | None = 200_000,
) -> SweepResult:
    """Figures 3(a) and 3(b): explanation precision versus width.

    For every repetition the log is re-split; every technique generates an
    explanation of every width from the training log, and the explanation is
    scored on the test log.
    """
    if not query.has_pair:
        raise EvaluationError("the query must be bound to a pair of interest")
    if repetitions < 1:
        raise EvaluationError("repetitions must be >= 1")
    result = SweepResult()
    for repetition in range(repetitions):
        train, test = split_for_repetition(log, query, repetition, seed, train_fraction)
        test_schema = infer_schema(records_for_query(test, query))
        for technique in techniques:
            for width in widths:
                try:
                    explanation = technique.explain(train, query, width=width)
                except Exception:
                    # A technique can legitimately fail on a degenerate split
                    # (e.g. no related pairs); record nothing for that run.
                    continue
                metrics = measure_on_log(
                    explanation, query, test, schema=test_schema,
                    config=pair_config, max_candidate_pairs=max_eval_pairs,
                    rng=random.Random(seed + repetition),
                )
                result.add(
                    RunMetrics(
                        technique=technique.name,
                        width=width,
                        repetition=repetition,
                        metrics=metrics,
                        explanation=explanation,
                    )
                )
    return result


def evaluate_despite_relevance(
    log: ExecutionLog,
    query: PXQLQuery,
    widths: Sequence[int] = (0, 1, 2, 3, 4, 5),
    repetitions: int = 10,
    seed: int = 0,
    explainer: PerfXplainExplainer | None = None,
    pair_config: PairFeatureConfig | None = None,
    max_eval_pairs: int | None = 200_000,
) -> SweepResult:
    """Figure 4(a) / Table 3: relevance of PerfXplain-generated despite clauses.

    The user's despite clause is removed; PerfXplain generates a ``des'``
    clause of each width from the training log, and its relevance
    ``P(exp | des')`` is measured on the test log.  Width 0 corresponds to
    the empty despite clause (the "before" column of Table 3).
    """
    if not query.has_pair:
        raise EvaluationError("the query must be bound to a pair of interest")
    stripped = query.without_despite()
    explainer = explainer if explainer is not None else PerfXplainExplainer()
    result = SweepResult()
    for repetition in range(repetitions):
        train, test = split_for_repetition(log, query, repetition, seed)
        test_schema = infer_schema(records_for_query(test, query))
        for width in widths:
            if width == 0:
                despite = TRUE_PREDICATE
            else:
                try:
                    despite = explainer.generate_despite(train, stripped, width=width)
                except Exception:
                    continue
            explanation = Explanation(because=TRUE_PREDICATE, despite=despite,
                                      technique="PerfXplain-despite")
            metrics = measure_on_log(
                explanation, stripped, test, schema=test_schema,
                config=pair_config, max_candidate_pairs=max_eval_pairs,
                rng=random.Random(seed + repetition),
            )
            result.add(
                RunMetrics(
                    technique="PerfXplain-despite",
                    width=width,
                    repetition=repetition,
                    metrics=metrics,
                    explanation=explanation,
                )
            )
    return result


def relevance_of_user_despite(
    log: ExecutionLog,
    query: PXQLQuery,
    repetitions: int = 10,
    seed: int = 0,
    pair_config: PairFeatureConfig | None = None,
    max_eval_pairs: int | None = 200_000,
) -> list[float]:
    """Relevance of the *user-specified* despite clause (Section 6.4 baseline)."""
    stripped = query.without_despite()
    relevances = []
    for repetition in range(repetitions):
        _, test = split_for_repetition(log, query, repetition, seed)
        explanation = Explanation(because=TRUE_PREDICATE, despite=query.despite,
                                  technique="user-despite")
        metrics = measure_on_log(
            explanation, stripped, test, config=pair_config,
            max_candidate_pairs=max_eval_pairs, rng=random.Random(seed + repetition),
        )
        relevances.append(metrics.relevance)
    return relevances


def evaluate_log_fraction(
    log: ExecutionLog,
    query: PXQLQuery,
    techniques: Sequence[ExplanationTechnique],
    fractions: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5),
    width: int = 3,
    repetitions: int = 10,
    seed: int = 0,
    pair_config: PairFeatureConfig | None = None,
    max_eval_pairs: int | None = 200_000,
) -> dict[float, SweepResult]:
    """Figure 3(d): precision at a fixed width versus training-log size.

    For each fraction ``x`` a random ``x`` of the jobs form the training log
    and the remaining jobs form the test log.
    """
    if not query.has_pair:
        raise EvaluationError("the query must be bound to a pair of interest")
    results: dict[float, SweepResult] = {}
    forced = _forced_job_ids(log, query)
    for fraction in fractions:
        sweep = SweepResult()
        for repetition in range(repetitions):
            rng = random.Random((seed * 7_777_777) ^ repetition ^ hash(fraction) & 0xFFFF)
            train = log.sample_jobs(fraction, rng=rng, always_include_job_ids=forced)
            train_ids = {job.job_id for job in train.jobs}
            test = log.filter_jobs(lambda job: job.job_id not in train_ids or job.job_id in forced)
            test_schema = infer_schema(records_for_query(test, query))
            for technique in techniques:
                try:
                    explanation = technique.explain(train, query, width=width)
                except Exception:
                    continue
                metrics = measure_on_log(
                    explanation, query, test, schema=test_schema,
                    config=pair_config, max_candidate_pairs=max_eval_pairs,
                    rng=random.Random(seed + repetition),
                )
                sweep.add(
                    RunMetrics(
                        technique=technique.name,
                        width=width,
                        repetition=repetition,
                        metrics=metrics,
                        explanation=explanation,
                    )
                )
        results[fraction] = sweep
    return results


def evaluate_feature_levels(
    log: ExecutionLog,
    query: PXQLQuery,
    levels: Sequence[FeatureLevel] = (
        FeatureLevel.IS_SAME_ONLY,
        FeatureLevel.COMPARISON,
        FeatureLevel.FULL,
    ),
    widths: Sequence[int] = (0, 1, 2, 3, 4, 5),
    repetitions: int = 10,
    seed: int = 0,
    base_config: PerfXplainConfig | None = None,
    max_eval_pairs: int | None = 200_000,
) -> SweepResult:
    """Figure 4(c): PerfXplain precision when restricted to each feature level."""
    base_config = base_config if base_config is not None else PerfXplainConfig()
    techniques = []
    for level in levels:
        config = PerfXplainConfig(
            width=base_config.width,
            score_weight=base_config.score_weight,
            sample_size=base_config.sample_size,
            feature_level=level,
            pair_config=base_config.pair_config,
            min_examples=base_config.min_examples,
        )
        explainer = PerfXplainExplainer(config)
        explainer.name = f"PerfXplain-level{int(level)}"
        techniques.append(explainer)
    return evaluate_precision_vs_width(
        log, query, techniques, widths=widths, repetitions=repetitions, seed=seed,
        max_eval_pairs=max_eval_pairs,
    )


def evaluate_cross_workload(
    log: ExecutionLog,
    query: PXQLQuery,
    train_script: str = "simple-groupby.pig",
    test_script: str = "simple-filter.pig",
    techniques: Sequence[ExplanationTechnique] = (),
    widths: Sequence[int] = (0, 1, 2, 3, 4, 5),
    repetitions: int = 10,
    seed: int = 0,
    max_eval_pairs: int | None = 200_000,
) -> SweepResult:
    """Figure 3(c): train on one kind of job, explain and test on another.

    The training log contains only ``train_script`` jobs plus the pair of
    interest (which runs ``test_script``); the test log contains only
    ``test_script`` jobs.
    """
    if not query.has_pair:
        raise EvaluationError("the query must be bound to a pair of interest")
    forced = _forced_job_ids(log, query)
    result = SweepResult()
    for repetition in range(repetitions):
        rng = random.Random((seed * 31337) ^ repetition)
        train_pool = log.filter_jobs(
            lambda job: job.features.get("pig_script") == train_script
            or job.job_id in forced
        )
        # Re-sample half of the training pool each repetition so that the
        # repetitions differ, mirroring the 2-fold splits of the other plots.
        train = train_pool.sample_jobs(0.5, rng=rng, always_include_job_ids=forced)
        test = log.filter_jobs(
            lambda job: job.features.get("pig_script") == test_script
        )
        test_schema = infer_schema(records_for_query(test, query))
        for technique in techniques:
            for width in widths:
                try:
                    explanation = technique.explain(train, query, width=width)
                except Exception:
                    continue
                metrics = measure_on_log(
                    explanation, query, test, schema=test_schema,
                    max_candidate_pairs=max_eval_pairs,
                    rng=random.Random(seed + repetition),
                )
                result.add(
                    RunMetrics(
                        technique=technique.name,
                        width=width,
                        repetition=repetition,
                        metrics=metrics,
                        explanation=explanation,
                    )
                )
    return result


def precision_generality_points(
    sweep: SweepResult, technique: str
) -> list[tuple[float, float]]:
    """(generality, precision) mean points per width for one technique (Fig. 4b)."""
    points = []
    for width in sweep.widths():
        if width == 0:
            continue
        points.append(
            (sweep.mean(technique, width, "generality"),
             sweep.mean(technique, width, "precision"))
        )
    return points
