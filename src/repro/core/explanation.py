"""Explanations and the three quality metrics of Section 3.3.

An explanation is a pair of predicates ``(des', bec)``.  Its quality, with
respect to a query ``(des, obs, exp)`` and a set of labeled job pairs, is
measured by:

* **relevance**  ``P(exp | des' AND des)`` — does the extended despite
  clause pick out the circumstances under which the expected behaviour
  normally holds?
* **precision**  ``P(obs | bec AND des' AND des)`` — among pairs matching
  the because clause (in context), how many behaved as observed?
* **generality** ``P(bec | des' AND des)`` — how many pairs does the
  because clause apply to at all?

The probabilities are estimated over a collection of labeled training
examples (pairs already known to satisfy the query's ``des``, labeled
OBSERVED or EXPECTED).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.core.pxql.ast import Predicate, TRUE_PREDICATE
from repro.logs.records import FeatureValue


@dataclass(frozen=True)
class ExplanationMetrics:
    """Quality metrics of one explanation on one example set."""

    relevance: float
    precision: float
    generality: float
    support: int

    def as_dict(self) -> dict[str, float]:
        """Metrics as a plain dictionary (handy for reports)."""
        return {
            "relevance": self.relevance,
            "precision": self.precision,
            "generality": self.generality,
            "support": float(self.support),
        }


@dataclass(frozen=True)
class Explanation:
    """A performance explanation: a despite clause and a because clause."""

    because: Predicate
    despite: Predicate = TRUE_PREDICATE
    technique: str = "perfxplain"
    metrics: ExplanationMetrics | None = None

    @property
    def width(self) -> int:
        """Number of atoms in the because clause."""
        return self.because.width

    def is_applicable(self, pair_values: Mapping[str, FeatureValue]) -> bool:
        """Definition 3: both clauses must hold for the pair of interest."""
        return self.despite.evaluate(pair_values) and self.because.evaluate(pair_values)

    def with_metrics(self, metrics: ExplanationMetrics) -> "Explanation":
        """A copy of the explanation annotated with metrics."""
        return Explanation(
            because=self.because,
            despite=self.despite,
            technique=self.technique,
            metrics=metrics,
        )

    def format(self) -> str:
        """Human-readable rendering, mirroring the paper's output form."""
        lines = []
        if not self.despite.is_true:
            lines.append(f"DESPITE {self.despite}")
        lines.append(f"BECAUSE {self.because}")
        if self.metrics is not None:
            lines.append(
                f"-- precision={self.metrics.precision:.2f} "
                f"generality={self.metrics.generality:.2f} "
                f"relevance={self.metrics.relevance:.2f}"
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()


# --------------------------------------------------------------------- #
# metric estimation over labeled pair sets
# --------------------------------------------------------------------- #


def _count(
    examples: Iterable,
    predicate: Predicate,
) -> tuple[int, int, int]:
    """(matching, matching-and-observed, total) over labeled examples."""
    matching = 0
    matching_observed = 0
    total = 0
    for example in examples:
        total += 1
        if predicate.evaluate(example.values):
            matching += 1
            if example.is_observed:
                matching_observed += 1
    return matching, matching_observed, total


def precision_of(because: Predicate, despite: Predicate, examples: Sequence) -> float:
    """``P(obs | bec AND des')`` over examples already satisfying the query's des."""
    combined = despite.and_then(because)
    matching, matching_observed, _ = _count(examples, combined)
    if matching == 0:
        return 0.0
    return matching_observed / matching


def generality_of(because: Predicate, despite: Predicate, examples: Sequence) -> float:
    """``P(bec | des')`` over examples already satisfying the query's des."""
    in_context = [ex for ex in examples if despite.evaluate(ex.values)]
    if not in_context:
        return 0.0
    matching = sum(1 for ex in in_context if because.evaluate(ex.values))
    return matching / len(in_context)


def relevance_of(despite: Predicate, examples: Sequence) -> float:
    """``P(exp | des')`` over examples already satisfying the query's des."""
    matching, matching_observed, _ = _count(examples, despite)
    if matching == 0:
        return 0.0
    return (matching - matching_observed) / matching


def evaluate_explanation(explanation: Explanation, examples: Sequence) -> ExplanationMetrics:
    """All three metrics of an explanation over a labeled example set."""
    in_context = sum(1 for ex in examples if explanation.despite.evaluate(ex.values))
    return ExplanationMetrics(
        relevance=relevance_of(explanation.despite, examples),
        precision=precision_of(explanation.because, explanation.despite, examples),
        generality=generality_of(explanation.because, explanation.despite, examples),
        support=in_context,
    )
