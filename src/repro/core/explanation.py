"""Explanations and the three quality metrics of Section 3.3.

An explanation is a pair of predicates ``(des', bec)``.  Its quality, with
respect to a query ``(des, obs, exp)`` and a set of labeled job pairs, is
measured by:

* **relevance**  ``P(exp | des' AND des)`` — does the extended despite
  clause pick out the circumstances under which the expected behaviour
  normally holds?
* **precision**  ``P(obs | bec AND des' AND des)`` — among pairs matching
  the because clause (in context), how many behaved as observed?
* **generality** ``P(bec | des' AND des)`` — how many pairs does the
  because clause apply to at all?

The probabilities are estimated over a collection of labeled training
examples (pairs already known to satisfy the query's ``des``, labeled
OBSERVED or EXPECTED).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.core.pxql.ast import Predicate, TRUE_PREDICATE
from repro.logs.records import FeatureValue


@dataclass(frozen=True)
class ExplanationMetrics:
    """Quality metrics of one explanation on one example set.

    ``evidence`` carries a technique's quantitative justification beyond
    the three probability estimates — the deterministic detectors
    (:mod:`repro.detectors`) record the threshold comparisons their rules
    fired on (skew ratio, straggler factor, merge-pass counts, ...).  It
    is stored as a sorted tuple of ``(name, value)`` pairs so the frozen
    dataclass stays hashable; a mapping passed to the constructor is
    normalised automatically.
    """

    relevance: float
    precision: float
    generality: float
    support: int
    evidence: tuple[tuple[str, float], ...] | None = None

    def __post_init__(self) -> None:
        if isinstance(self.evidence, Mapping):
            object.__setattr__(
                self,
                "evidence",
                tuple(sorted((str(k), float(v)) for k, v in self.evidence.items())),
            )
        elif self.evidence is not None:
            object.__setattr__(
                self,
                "evidence",
                tuple(sorted((str(k), float(v)) for k, v in self.evidence)),
            )

    def as_dict(self) -> dict[str, float]:
        """Metrics as a plain all-float dictionary (handy for reports)."""
        data = {
            "relevance": self.relevance,
            "precision": self.precision,
            "generality": self.generality,
            "support": float(self.support),
        }
        return data

    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible form that round-trips via :meth:`from_dict`.

        ``evidence`` is emitted (as a plain dictionary) only when present,
        so serialized metrics from evidence-free techniques are unchanged.
        """
        data: dict[str, Any] = {
            "relevance": self.relevance,
            "precision": self.precision,
            "generality": self.generality,
            "support": self.support,
        }
        if self.evidence is not None:
            data["evidence"] = dict(self.evidence)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExplanationMetrics":
        """Rebuild metrics from their :meth:`to_dict` form."""
        evidence = data.get("evidence")
        return cls(
            relevance=float(data["relevance"]),
            precision=float(data["precision"]),
            generality=float(data["generality"]),
            support=int(data["support"]),
            evidence=evidence if evidence is not None else None,
        )

    def with_evidence(
        self, evidence: "Mapping[str, float] | tuple[tuple[str, float], ...]"
    ) -> "ExplanationMetrics":
        """A copy of the metrics carrying (replacing) threshold evidence."""
        return ExplanationMetrics(
            relevance=self.relevance,
            precision=self.precision,
            generality=self.generality,
            support=self.support,
            evidence=evidence,  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class Explanation:
    """A performance explanation: a despite clause and a because clause."""

    because: Predicate
    despite: Predicate = TRUE_PREDICATE
    technique: str = "perfxplain"
    metrics: ExplanationMetrics | None = None

    @property
    def width(self) -> int:
        """Number of atoms in the because clause."""
        return self.because.width

    def is_applicable(self, pair_values: Mapping[str, FeatureValue]) -> bool:
        """Definition 3: both clauses must hold for the pair of interest."""
        return self.despite.evaluate(pair_values) and self.because.evaluate(pair_values)

    def with_metrics(self, metrics: ExplanationMetrics) -> "Explanation":
        """A copy of the explanation annotated with metrics."""
        return Explanation(
            because=self.because,
            despite=self.despite,
            technique=self.technique,
            metrics=metrics,
        )

    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible form of the explanation.

        Predicates serialize symbolically (one ``{feature, op, value}``
        entry per atom) rather than as rendered text, so the result
        round-trips exactly through :meth:`from_dict`.
        """
        return {
            "technique": self.technique,
            "despite": self.despite.to_dict(),
            "because": self.because.to_dict(),
            "metrics": self.metrics.to_dict() if self.metrics is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Explanation":
        """Rebuild an explanation from its :meth:`to_dict` form."""
        metrics = data.get("metrics")
        return cls(
            because=Predicate.from_dict(data["because"]),
            despite=Predicate.from_dict(data.get("despite", [])),
            technique=data.get("technique", "perfxplain"),
            metrics=ExplanationMetrics.from_dict(metrics) if metrics is not None else None,
        )

    def to_json(self, indent: int | None = None) -> str:
        """The :meth:`to_dict` form rendered as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Explanation":
        """Rebuild an explanation from its :meth:`to_json` form."""
        return cls.from_dict(json.loads(text))

    def format(self) -> str:
        """Human-readable rendering, mirroring the paper's output form."""
        lines = []
        if not self.despite.is_true:
            lines.append(f"DESPITE {self.despite}")
        lines.append(f"BECAUSE {self.because}")
        if self.metrics is not None:
            lines.append(
                f"-- precision={self.metrics.precision:.2f} "
                f"generality={self.metrics.generality:.2f} "
                f"relevance={self.metrics.relevance:.2f}"
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()


# --------------------------------------------------------------------- #
# metric estimation over labeled pair sets
# --------------------------------------------------------------------- #


def _count(
    examples: Iterable,
    predicate: Predicate,
) -> tuple[int, int, int]:
    """(matching, matching-and-observed, total) over labeled examples."""
    matching = 0
    matching_observed = 0
    total = 0
    for example in examples:
        total += 1
        if predicate.evaluate(example.values):
            matching += 1
            if example.is_observed:
                matching_observed += 1
    return matching, matching_observed, total


def precision_of(because: Predicate, despite: Predicate, examples: Sequence) -> float:
    """``P(obs | bec AND des')`` over examples already satisfying the query's des."""
    combined = despite.and_then(because)
    matching, matching_observed, _ = _count(examples, combined)
    if matching == 0:
        return 0.0
    return matching_observed / matching


def generality_of(because: Predicate, despite: Predicate, examples: Sequence) -> float:
    """``P(bec | des')`` over examples already satisfying the query's des."""
    in_context = [ex for ex in examples if despite.evaluate(ex.values)]
    if not in_context:
        return 0.0
    matching = sum(1 for ex in in_context if because.evaluate(ex.values))
    return matching / len(in_context)


def relevance_of(despite: Predicate, examples: Sequence) -> float:
    """``P(exp | des')`` over examples already satisfying the query's des."""
    matching, matching_observed, _ = _count(examples, despite)
    if matching == 0:
        return 0.0
    return (matching - matching_observed) / matching


def evaluate_explanation(explanation: Explanation, examples: Sequence) -> ExplanationMetrics:
    """All three metrics of an explanation over a labeled example set."""
    in_context = sum(1 for ex in examples if explanation.despite.evaluate(ex.values))
    return ExplanationMetrics(
        relevance=relevance_of(explanation.despite, examples),
        precision=precision_of(explanation.because, explanation.despite, examples),
        generality=generality_of(explanation.because, explanation.despite, examples),
        support=in_context,
    )
