"""Training-example construction (Definitions 7-9).

Given a query and a log, the related pairs are the ordered pairs of
executions that satisfy the despite clause and either the observed or the
expected clause.  Each related pair becomes a training example labeled
OBSERVED or EXPECTED.

Enumerating every ordered pair is quadratic in the log size, which is
prohibitive for task-level queries (thousands of tasks).  The constructor
therefore *blocks* on the equality constraints of the despite clause: an
atom such as ``jobID_isSame = T`` means only pairs drawn from the same job
can ever be related, so candidates are enumerated within groups sharing the
corresponding raw value.  Blocking is purely an optimisation — it never
changes which pairs are related — and is only applied to raw features whose
equality is exact (nominal values and integers), not to noisy floats.
"""

from __future__ import annotations

import enum
import random
from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.ml.matrix import FeatureMatrix

from repro.core.features import FeatureSchema, FeatureLevel
from repro.core.pairs import (
    IS_SAME_SUFFIX,
    SAME,
    PairFeatureConfig,
    compute_pair_features,
    pair_feature_catalog,
    raw_feature_of,
)
from repro.core.pxql.ast import Operator, Predicate
from repro.core.pxql.query import EntityKind, PXQLQuery
from repro.exceptions import ExplanationError
from repro.logs.records import ExecutionRecord, FeatureValue
from repro.logs.store import ExecutionLog


class Label(enum.Enum):
    """Training-example label: which clause the pair satisfied."""

    OBSERVED = "observed"
    EXPECTED = "expected"


@dataclass
class TrainingExample:
    """One labeled pair of executions with its full pair-feature vector."""

    first_id: str
    second_id: str
    values: dict[str, FeatureValue]
    label: Label

    @property
    def is_observed(self) -> bool:
        """Whether the pair performed as observed."""
        return self.label is Label.OBSERVED

    @property
    def is_expected(self) -> bool:
        """Whether the pair performed as expected."""
        return self.label is Label.EXPECTED


def records_for_query(log: ExecutionLog, query: PXQLQuery) -> list[ExecutionRecord]:
    """The records (jobs or tasks) a query ranges over."""
    if query.entity is EntityKind.JOB:
        return list(log.jobs)
    return list(log.tasks)


def find_record(log: ExecutionLog, query: PXQLQuery, record_id: str) -> ExecutionRecord:
    """Look up one execution referenced by a query; raise if absent."""
    record = (
        log.find_job(record_id) if query.entity is EntityKind.JOB else log.find_task(record_id)
    )
    if record is None:
        raise ExplanationError(
            f"{query.entity.value} {record_id!r} is not present in the log"
        )
    return record


def _blocking_features(query: PXQLQuery, schema: FeatureSchema) -> list[str]:
    """Raw features whose exact equality is implied by the despite clause."""
    blocking: list[str] = []
    for atom in query.despite.atoms:
        if atom.operator is not Operator.EQ or atom.value != SAME:
            continue
        if not atom.feature.endswith(IS_SAME_SUFFIX):
            continue
        raw = raw_feature_of(atom.feature)
        if raw not in schema:
            continue
        if schema.is_numeric(raw):
            # Tolerance-based isSame for floats: grouping by exact value
            # could split genuinely "same" pairs, so only block on integers.
            continue
        blocking.append(raw)
    return blocking


def _group_records(
    records: Sequence[ExecutionRecord], blocking: Sequence[str]
) -> list[list[ExecutionRecord]]:
    if not blocking:
        return [list(records)]
    groups: dict[tuple, list[ExecutionRecord]] = {}
    for record in records:
        key = tuple(record.features.get(feature) for feature in blocking)
        if any(value is None for value in key):
            # A missing blocked value can never satisfy `isSame = T`.
            continue
        groups.setdefault(key, []).append(record)
    return list(groups.values())


def iter_related_pairs(
    log: ExecutionLog,
    query: PXQLQuery,
    schema: FeatureSchema,
    config: PairFeatureConfig | None = None,
    max_candidate_pairs: int | None = 2_000_000,
    rng: random.Random | None = None,
) -> Iterator[tuple[ExecutionRecord, ExecutionRecord, Label]]:
    """Yield every related ordered pair of executions with its label.

    Pair features are computed lazily: only the raw features referenced by
    the query's three clauses are derived while classifying candidates.

    :param max_candidate_pairs: safety valve — if the blocked candidate
        space is still larger than this, a random subset of candidate pairs
        is examined (with a warning-free deterministic ``rng``).
    """
    config = config if config is not None else PairFeatureConfig()
    rng = rng if rng is not None else random.Random(0)
    records = records_for_query(log, query)
    query_raw_features = sorted(
        {raw_feature_of(feature) for feature in query.referenced_features()}
    )
    for raw in query_raw_features:
        if raw not in schema:
            raise ExplanationError(
                f"query references feature {raw!r} which is not in the log schema"
            )

    blocking = _blocking_features(query, schema)
    groups = _group_records(records, blocking)

    total_candidates = sum(len(group) * (len(group) - 1) for group in groups)
    keep_probability = 1.0
    if max_candidate_pairs is not None and total_candidates > max_candidate_pairs:
        keep_probability = max_candidate_pairs / total_candidates

    for group in groups:
        for first in group:
            for second in group:
                if first is second:
                    continue
                if keep_probability < 1.0 and rng.random() > keep_probability:
                    continue
                values = compute_pair_features(
                    first, second, schema, config, features=query_raw_features
                )
                if not query.despite.evaluate(values):
                    continue
                observed = query.observed.evaluate(values)
                expected = query.expected.evaluate(values)
                if observed:
                    yield first, second, Label.OBSERVED
                elif expected:
                    yield first, second, Label.EXPECTED


def construct_training_examples(
    log: ExecutionLog,
    query: PXQLQuery,
    schema: FeatureSchema,
    config: PairFeatureConfig | None = None,
    sample_size: int | None = 2000,
    rng: random.Random | None = None,
    max_candidate_pairs: int | None = 2_000_000,
) -> list[TrainingExample]:
    """Construct (and balanced-sample) the training examples for a query.

    This corresponds to lines 1-2 of Algorithm 1: collect the related pairs,
    then keep a balanced sample of at most ``sample_size`` of them.  Full
    pair-feature vectors are only computed for the sampled pairs.

    :returns: the sampled training examples (possibly empty if no pair in
        the log is related to the query).
    """
    from repro.core.sampling import balanced_sample  # local import to avoid a cycle

    config = config if config is not None else PairFeatureConfig()
    rng = rng if rng is not None else random.Random(0)

    labeled_pairs = list(
        iter_related_pairs(log, query, schema, config, max_candidate_pairs, rng)
    )
    if sample_size is not None:
        labeled_pairs = balanced_sample(
            labeled_pairs, sample_size, rng, label_of=lambda item: item[2]
        )

    full_config = PairFeatureConfig(
        sim_threshold=config.sim_threshold,
        is_same_tolerance=config.is_same_tolerance,
        level=FeatureLevel.FULL,
    )
    examples = []
    for first, second, label in labeled_pairs:
        values = compute_pair_features(first, second, schema, full_config)
        examples.append(
            TrainingExample(
                first_id=first.entity_id,
                second_id=second.entity_id,
                values=values,
                label=label,
            )
        )
    return examples


class TrainingMatrix(SequenceABC):
    """A training-example set plus its columnar encoding.

    The greedy clause-growing loop queries the same pair-feature columns
    over shrinking example subsets; encoding the examples once into a
    :class:`~repro.ml.matrix.FeatureMatrix` (integer value codes, float
    arrays, one global sort per numeric column) lets every iteration run as
    an index-subset search instead of re-extracting and re-sorting dict
    values.  :class:`PerfXplainSession` caches one ``TrainingMatrix`` per
    clause signature.

    The object is a read-only :class:`~collections.abc.Sequence` of
    :class:`TrainingExample`, so callers written against plain example
    lists (the baselines, :func:`~repro.core.explanation.evaluate_explanation`)
    accept it unchanged.
    """

    __slots__ = ("examples", "matrix", "observed", "encoding")

    def __init__(
        self,
        examples: list[TrainingExample],
        matrix: FeatureMatrix,
        observed: bytearray,
        encoding: tuple | None = None,
    ) -> None:
        self.examples = examples
        #: Columnar encoding of the catalog's pair features.
        self.matrix = matrix
        #: Per-example flag: the pair performed as observed.
        self.observed = observed
        #: The parameters the catalog was built under (feature level and
        #: pair-encoding tunables) — checked by
        #: :func:`encode_training_examples` so a matrix encoded for one
        #: configuration is never silently reused under another.
        self.encoding = encoding

    def __len__(self) -> int:
        return len(self.examples)

    def __getitem__(self, index):
        return self.examples[index]

    def positive_labels(self, positive_label: Label) -> bytearray:
        """Bitmap of examples carrying ``positive_label``."""
        if positive_label is Label.OBSERVED:
            return self.observed
        return bytearray(0 if flag else 1 for flag in self.observed)


def encode_training_examples(
    examples: Sequence[TrainingExample],
    schema: FeatureSchema,
    config: PairFeatureConfig | None = None,
    feature_level: FeatureLevel = FeatureLevel.FULL,
) -> TrainingMatrix:
    """Encode training examples into a :class:`TrainingMatrix`.

    The encoded columns are exactly the pair-feature catalog the explainer
    searches (performance-derived features excluded, level capped at
    ``feature_level``), in catalog order.  An already-encoded
    :class:`TrainingMatrix` is passed through only when it was built under
    the same parameters; otherwise its examples are re-encoded, so a
    matrix cached for one configuration never leaks a different feature
    surface into another.
    """
    config = config if config is not None else PairFeatureConfig()
    encoding = (feature_level, config.sim_threshold, config.is_same_tolerance)
    if isinstance(examples, TrainingMatrix):
        if examples.encoding == encoding:
            return examples
        examples = examples.examples
    catalog = pair_feature_catalog(
        schema,
        PairFeatureConfig(
            sim_threshold=config.sim_threshold,
            is_same_tolerance=config.is_same_tolerance,
            level=feature_level,
        ),
        exclude_performance=True,
    )
    examples = list(examples)
    columns = {
        feature: [example.values.get(feature) for example in examples]
        for feature in catalog
    }
    matrix = FeatureMatrix.from_columns(columns, numeric=catalog,
                                        n_rows=len(examples))
    observed = bytearray(1 if example.is_observed else 0 for example in examples)
    return TrainingMatrix(examples, matrix, observed, encoding=encoding)
