"""Training-example construction (Definitions 7-9), columnar pipeline.

Given a query and a log, the related pairs are the ordered pairs of
executions that satisfy the despite clause and either the observed or the
expected clause.  Each related pair becomes a training example labeled
OBSERVED or EXPECTED.

Enumerating every ordered pair is quadratic in the log size, which is
prohibitive for task-level queries (thousands of tasks).  The constructor
therefore *blocks* on the equality constraints of the despite clause: an
atom such as ``jobID_isSame = T`` means only pairs drawn from the same job
can ever be related, so candidates are enumerated within groups sharing the
corresponding raw value.  Blocking is purely an optimisation — it never
changes which pairs are related — and is only applied to raw features whose
equality is exact (nominal values and integers), not to noisy floats.

Since the columnar refactor this module is a thin adapter over the pair
kernels: the log's cached :class:`~repro.logs.store.RecordBlock` (layer 1)
feeds :class:`~repro.core.pairkernel.PairKernel` (layer 2), which evaluates
the three clauses as vectorised masks over batched candidate index pairs
and emits the sampled pairs' feature vectors column-by-column — no per-pair
feature dict is ever allocated while filtering.
:func:`construct_training_matrix` extends the same pipeline one layer
further and builds the :class:`TrainingMatrix` directly from the kernel's
output columns.  The original pair-at-a-time dict path is preserved
verbatim in :mod:`repro.core.pairref` (mirroring :mod:`repro.ml.rowpath`)
as the reference implementation the differential suite checks this pipeline
against.
"""

from __future__ import annotations

import enum
import random
from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.ml.matrix import FeatureMatrix

from repro.core.features import FeatureSchema, FeatureLevel
from repro.core.pairkernel import (
    PairContext,
    PairKernel,
    blocking_group_indices,
    keep_limit,
    sampling_salt,
)
from repro.core.pairs import (
    IS_SAME_SUFFIX,
    SAME,
    PairFeatureConfig,
    pair_feature_catalog,
    raw_feature_of,
)
from repro.core.pxql.ast import Operator, Predicate
from repro.core.pxql.query import EntityKind, PXQLQuery
from repro.exceptions import ExplanationError
from repro.logs.records import ExecutionRecord, FeatureValue
from repro.logs.store import ExecutionLog, RecordBlock


class Label(enum.Enum):
    """Training-example label: which clause the pair satisfied."""

    OBSERVED = "observed"
    EXPECTED = "expected"


@dataclass
class TrainingExample:
    """One labeled pair of executions with its full pair-feature vector."""

    first_id: str
    second_id: str
    values: dict[str, FeatureValue]
    label: Label

    @property
    def is_observed(self) -> bool:
        """Whether the pair performed as observed."""
        return self.label is Label.OBSERVED

    @property
    def is_expected(self) -> bool:
        """Whether the pair performed as expected."""
        return self.label is Label.EXPECTED


def records_for_query(log: ExecutionLog, query: PXQLQuery) -> list[ExecutionRecord]:
    """The records (jobs or tasks) a query ranges over."""
    if query.entity is EntityKind.JOB:
        return list(log.jobs)
    return list(log.tasks)


def find_record(log: ExecutionLog, query: PXQLQuery, record_id: str) -> ExecutionRecord:
    """Look up one execution referenced by a query; raise if absent."""
    record = (
        log.find_job(record_id) if query.entity is EntityKind.JOB else log.find_task(record_id)
    )
    if record is None:
        raise ExplanationError(
            f"{query.entity.value} {record_id!r} is not present in the log"
        )
    return record


def _blocking_features(query: PXQLQuery, schema: FeatureSchema) -> list[str]:
    """Raw features whose exact equality is implied by the despite clause."""
    blocking: list[str] = []
    for atom in query.despite.atoms:
        if atom.operator is not Operator.EQ or atom.value != SAME:
            continue
        if not atom.feature.endswith(IS_SAME_SUFFIX):
            continue
        raw = raw_feature_of(atom.feature)
        if raw not in schema:
            continue
        if schema.is_numeric(raw):
            # Tolerance-based isSame for floats: grouping by exact value
            # could split genuinely "same" pairs, so only block on integers.
            continue
        blocking.append(raw)
    return blocking


def _group_records(
    records: Sequence[ExecutionRecord], blocking: Sequence[str]
) -> list[list[ExecutionRecord]]:
    """Reference record grouping (value-keyed; kept for the dict path)."""
    if not blocking:
        return [list(records)]
    groups: dict[tuple, list[ExecutionRecord]] = {}
    for record in records:
        key = tuple(record.features.get(feature) for feature in blocking)
        if any(value is None or value != value for value in key):
            # A missing or NaN blocked value can never satisfy
            # ``isSame = T`` (NaN equals nothing, itself included).
            continue
        groups.setdefault(key, []).append(record)
    return list(groups.values())


def validate_query_features(query: PXQLQuery, schema: FeatureSchema) -> list[str]:
    """The raw features a query's clauses touch; raise on unknown ones."""
    query_raw_features = sorted(
        {raw_feature_of(feature) for feature in query.referenced_features()}
    )
    for raw in query_raw_features:
        if raw not in schema:
            raise ExplanationError(
                f"query references feature {raw!r} which is not in the log schema"
            )
    return query_raw_features


def pair_kernel_for(
    log: ExecutionLog,
    query: PXQLQuery,
    schema: FeatureSchema,
    config: PairFeatureConfig,
) -> PairKernel:
    """The pair kernel over the log's cached columnar record block."""
    kind = "job" if query.entity is EntityKind.JOB else "task"
    return PairKernel(log.record_block(schema, kind=kind), config)


def related_index_batches(
    kernel: PairKernel,
    query: PXQLQuery,
    max_candidate_pairs: int | None,
    rng: random.Random,
    workers: int = 1,
) -> Iterator[tuple[list[int], list[int], list[Label]]]:
    """Related pairs as labeled index batches, in candidate order.

    Each batch holds the surviving ``(first, second)`` record indices and
    their labels.  Candidates are enumerated lazily within blocking groups;
    per batch, the despite clause prunes first, then the observed and
    expected clauses run over the survivors (sharing one gather cache) and
    the labels fall out of the two masks at C level: a pair is related when
    either holds, and OBSERVED wins — identical to the reference's
    despite-then-observed-elif-expected sequence per pair
    (:func:`~repro.core.pairshard.evaluate_candidate_batch`).

    :param workers: with ``>= 2``, batches are fanned out across a forked
        process pool and merged deterministically
        (:func:`~repro.core.pairshard.iter_evaluated_batches`) — the yielded
        stream is byte-identical for every worker count, because candidate
        order and the CRC32 sampling rule are both order-independent.
    """
    from repro.core.pairshard import iter_evaluated_batches

    block = kernel.block
    schema = kernel.schema
    blocking = _blocking_features(query, schema)
    groups = blocking_group_indices(block, blocking)

    total_candidates = sum(len(group) * (len(group) - 1) for group in groups)
    salt: int | None = None
    limit = 0
    if max_candidate_pairs is not None and total_candidates > max_candidate_pairs:
        salt = sampling_salt(rng)
        limit = keep_limit(max_candidate_pairs, total_candidates)

    if workers >= 2:
        # Build every column the clauses read *before* submitting: workers
        # forked for this kernel inherit the encoded chunks (or their
        # spill files).  A pool forked before these columns existed stays
        # valid — each worker lazily re-encodes a missing column once,
        # deterministically — but a fresh fork gets them for free.
        for feature in sorted(query.referenced_features()):
            raw = raw_feature_of(feature)
            if raw in schema:
                block.column(raw)

    label_by_observed = (Label.EXPECTED, Label.OBSERVED)
    for firsts, seconds, observed in iter_evaluated_batches(
        kernel, query, groups, salt, limit, workers=workers
    ):
        labels = list(map(label_by_observed.__getitem__, observed))
        yield firsts, seconds, labels


def iter_related_pairs(
    log: ExecutionLog,
    query: PXQLQuery,
    schema: FeatureSchema,
    config: PairFeatureConfig | None = None,
    max_candidate_pairs: int | None = 2_000_000,
    rng: random.Random | None = None,
    workers: int = 1,
) -> Iterator[tuple[ExecutionRecord, ExecutionRecord, Label]]:
    """Yield every related ordered pair of executions with its label.

    Thin adapter over the pair kernels: clause evaluation runs as
    vectorised masks over batched candidate index pairs (only the raw
    features the query references are ever derived), and the records are
    resolved back from the log's cached
    :class:`~repro.logs.store.RecordBlock` when yielding.

    :param max_candidate_pairs: safety valve — if the blocked candidate
        space is still larger than this, a random subset of candidate pairs
        is examined.  The subset is derived from a hash of the pair ids and
        a seed drawn from ``rng``, so it is deterministic and independent
        of group iteration order.
    """
    config = config if config is not None else PairFeatureConfig()
    rng = rng if rng is not None else random.Random(0)
    validate_query_features(query, schema)
    kernel = pair_kernel_for(log, query, schema, config)
    records = kernel.block.records
    for firsts, seconds, labels in related_index_batches(
        kernel, query, max_candidate_pairs, rng, workers=workers
    ):
        yield from zip(
            map(records.__getitem__, firsts),
            map(records.__getitem__, seconds),
            labels,
        )


def _sampled_index_pairs(
    kernel: PairKernel,
    query: PXQLQuery,
    sample_size: int | None,
    max_candidate_pairs: int | None,
    rng: random.Random,
    workers: int = 1,
) -> tuple[list[int], list[int], list[Label]]:
    """Collect the related index pairs and balanced-sample them."""
    from repro.core.sampling import stratified_keep_indices  # local: avoids a cycle

    firsts: list[int] = []
    seconds: list[int] = []
    labels: list[Label] = []
    for batch_firsts, batch_seconds, batch_labels in related_index_batches(
        kernel, query, max_candidate_pairs, rng, workers=workers
    ):
        firsts.extend(batch_firsts)
        seconds.extend(batch_seconds)
        labels.extend(batch_labels)
    if sample_size is not None:
        kept = stratified_keep_indices(labels, sample_size, rng)
        if kept is not None:
            firsts = [firsts[index] for index in kept]
            seconds = [seconds[index] for index in kept]
            labels = [labels[index] for index in kept]
    return firsts, seconds, labels


def _full_vector_columns(
    kernel: PairKernel,
    firsts: Sequence[int],
    seconds: Sequence[int],
) -> list[tuple[str, list]]:
    """Every FULL-level derived column over the sampled pairs, in order.

    The kernel's config ``level`` only gates clause evaluation; column
    derivation takes the level explicitly, so the caller's kernel serves
    both.  Emission order matches the reference's per-pair dict
    construction (sorted raw features, ``isSame``/``compare``/``diff``/base
    per raw), so name collisions between a raw feature and a derived name
    resolve to the same final column.
    """
    ctx = PairContext(list(firsts), list(seconds))
    columns: list[tuple[str, list]] = []
    for raw in kernel.block.schema.names():
        columns.extend(kernel.derived_columns(ctx, raw, FeatureLevel.FULL))
    return columns


def _build_examples(
    block: RecordBlock,
    columns: Sequence[tuple[str, list]],
    firsts: Sequence[int],
    seconds: Sequence[int],
    labels: Sequence[Label],
) -> list[TrainingExample]:
    """Assemble `TrainingExample`s from column-wise kernel output."""
    vectors: list[dict[str, FeatureValue]] = [{} for _ in firsts]
    for name, values in columns:
        for vector, value in zip(vectors, values):
            vector[name] = value
    ids = block.ids
    return [
        TrainingExample(
            first_id=ids[index_a],
            second_id=ids[index_b],
            values=vector,
            label=label,
        )
        for index_a, index_b, vector, label in zip(firsts, seconds, vectors, labels)
    ]


def construct_training_examples(
    log: ExecutionLog,
    query: PXQLQuery,
    schema: FeatureSchema,
    config: PairFeatureConfig | None = None,
    sample_size: int | None = 2000,
    rng: random.Random | None = None,
    max_candidate_pairs: int | None = 2_000_000,
    workers: int = 1,
) -> list[TrainingExample]:
    """Construct (and balanced-sample) the training examples for a query.

    This corresponds to lines 1-2 of Algorithm 1: collect the related pairs,
    then keep a balanced sample of at most ``sample_size`` of them.  Full
    pair-feature vectors are only computed for the sampled pairs — and
    column-at-a-time through the pair kernels, never per pair.

    :param workers: process-shard the candidate filtering across this many
        forked workers (results are bit-identical for every count).
    :returns: the sampled training examples (possibly empty if no pair in
        the log is related to the query).
    """
    config = config if config is not None else PairFeatureConfig()
    rng = rng if rng is not None else random.Random(0)
    validate_query_features(query, schema)
    kernel = pair_kernel_for(log, query, schema, config)
    firsts, seconds, labels = _sampled_index_pairs(
        kernel, query, sample_size, max_candidate_pairs, rng, workers=workers
    )
    columns = _full_vector_columns(kernel, firsts, seconds)
    return _build_examples(kernel.block, columns, firsts, seconds, labels)


class TrainingMatrix(SequenceABC):
    """A training-example set plus its columnar encoding.

    The greedy clause-growing loop queries the same pair-feature columns
    over shrinking example subsets; encoding the examples once into a
    :class:`~repro.ml.matrix.FeatureMatrix` (integer value codes, float
    arrays, one global sort per numeric column) lets every iteration run as
    an index-subset search instead of re-extracting and re-sorting dict
    values.  :class:`PerfXplainSession` caches one ``TrainingMatrix`` per
    clause signature.

    The object is a read-only :class:`~collections.abc.Sequence` of
    :class:`TrainingExample`, so callers written against plain example
    lists (the baselines, :func:`~repro.core.explanation.evaluate_explanation`)
    accept it unchanged.
    """

    __slots__ = ("examples", "matrix", "observed", "encoding")

    def __init__(
        self,
        examples: list[TrainingExample],
        matrix: FeatureMatrix,
        observed: bytearray,
        encoding: tuple | None = None,
    ) -> None:
        self.examples = examples
        #: Columnar encoding of the catalog's pair features.
        self.matrix = matrix
        #: Per-example flag: the pair performed as observed.
        self.observed = observed
        #: The parameters the catalog was built under (feature level and
        #: pair-encoding tunables) — checked by
        #: :func:`encode_training_examples` so a matrix encoded for one
        #: configuration is never silently reused under another.
        self.encoding = encoding

    def __len__(self) -> int:
        return len(self.examples)

    def __getitem__(self, index):
        return self.examples[index]

    def positive_labels(self, positive_label: Label) -> bytearray:
        """Bitmap of examples carrying ``positive_label``."""
        if positive_label is Label.OBSERVED:
            return self.observed
        return bytearray(0 if flag else 1 for flag in self.observed)


def construct_training_matrix(
    log: ExecutionLog,
    query: PXQLQuery,
    schema: FeatureSchema,
    config: PairFeatureConfig | None = None,
    sample_size: int | None = 2000,
    rng: random.Random | None = None,
    max_candidate_pairs: int | None = 2_000_000,
    feature_level: FeatureLevel = FeatureLevel.FULL,
    workers: int = 1,
) -> TrainingMatrix:
    """Construct a query's encoded :class:`TrainingMatrix` in one pass.

    The end-to-end columnar fast path: related pairs are filtered through
    the vectorised kernels, the sampled pairs' derived feature columns are
    computed once, and the :class:`~repro.ml.matrix.FeatureMatrix` is built
    *directly from those kernel output columns* — the per-example value
    dicts are assembled from the same columns, so the result is
    element-identical to encoding :func:`construct_training_examples`
    output with :func:`encode_training_examples` (the differential suite
    asserts this), without the intermediate dict re-extraction.
    """
    config = config if config is not None else PairFeatureConfig()
    rng = rng if rng is not None else random.Random(0)
    validate_query_features(query, schema)
    kernel = pair_kernel_for(log, query, schema, config)
    firsts, seconds, labels = _sampled_index_pairs(
        kernel, query, sample_size, max_candidate_pairs, rng, workers=workers
    )
    columns = _full_vector_columns(kernel, firsts, seconds)
    examples = _build_examples(kernel.block, columns, firsts, seconds, labels)

    catalog = pair_feature_catalog(
        schema,
        PairFeatureConfig(
            sim_threshold=config.sim_threshold,
            is_same_tolerance=config.is_same_tolerance,
            level=feature_level,
        ),
        exclude_performance=True,
    )
    column_store = dict(columns)  # later duplicates win, like the dict writes
    matrix = FeatureMatrix.from_columns(
        {name: column_store[name] for name in catalog},
        numeric=catalog,
        n_rows=len(examples),
    )
    observed = bytearray(1 if label is Label.OBSERVED else 0 for label in labels)
    encoding = (feature_level, config.sim_threshold, config.is_same_tolerance)
    return TrainingMatrix(examples, matrix, observed, encoding=encoding)


def encode_training_examples(
    examples: Sequence[TrainingExample],
    schema: FeatureSchema,
    config: PairFeatureConfig | None = None,
    feature_level: FeatureLevel = FeatureLevel.FULL,
) -> TrainingMatrix:
    """Encode training examples into a :class:`TrainingMatrix`.

    The encoded columns are exactly the pair-feature catalog the explainer
    searches (performance-derived features excluded, level capped at
    ``feature_level``), in catalog order.  An already-encoded
    :class:`TrainingMatrix` is passed through only when it was built under
    the same parameters (the fast path: matrices from
    :func:`construct_training_matrix` carry their encoding and skip the
    dict re-extraction entirely); otherwise its examples are re-encoded, so
    a matrix cached for one configuration never leaks a different feature
    surface into another.
    """
    config = config if config is not None else PairFeatureConfig()
    encoding = (feature_level, config.sim_threshold, config.is_same_tolerance)
    if isinstance(examples, TrainingMatrix):
        if examples.encoding == encoding:
            return examples
        examples = examples.examples
    catalog = pair_feature_catalog(
        schema,
        PairFeatureConfig(
            sim_threshold=config.sim_threshold,
            is_same_tolerance=config.is_same_tolerance,
            level=feature_level,
        ),
        exclude_performance=True,
    )
    examples = list(examples)
    columns = {
        feature: [example.values.get(feature) for example in examples]
        for feature in catalog
    }
    matrix = FeatureMatrix.from_columns(columns, numeric=catalog,
                                        n_rows=len(examples))
    observed = bytearray(1 if example.is_observed else 0 for example in examples)
    return TrainingMatrix(examples, matrix, observed, encoding=encoding)
