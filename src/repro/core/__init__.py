"""PerfXplain core: the paper's primary contribution.

Submodules:

* :mod:`repro.core.features` — raw-feature schema inference, feature kinds
  and the three feature *levels* from Section 6.8;
* :mod:`repro.core.pairs` — the pair (training-example) feature encoding of
  Table 1: ``isSame``, ``compare``, ``diff`` and base features;
* :mod:`repro.core.pxql` — the PXQL query language (AST, parser, evaluator);
* :mod:`repro.core.explanation` — explanations and the relevance /
  precision / generality metrics of Section 3.3;
* :mod:`repro.core.examples` — related-pair enumeration and training-example
  construction (Definition 7-9), adapted over the columnar pair kernels;
* :mod:`repro.core.pairkernel` — vectorised pair-feature kernels and clause
  masks over a :class:`~repro.logs.store.RecordBlock`;
* :mod:`repro.core.pairref` — the frozen dict-per-pair reference path the
  differential suite compares the kernels against;
* :mod:`repro.core.sampling` — the balanced sampling of Section 4.3;
* :mod:`repro.core.explainer` — Algorithm 1 and automatic despite-clause
  generation;
* :mod:`repro.core.baselines` — the RuleOfThumb and SimButDiff baselines of
  Section 5;
* :mod:`repro.core.evaluation` — the repeated 2-fold cross-validation
  harness used in Section 6;
* :mod:`repro.core.registry` — the pluggable explainer registry behind the
  ``technique=`` argument everywhere;
* :mod:`repro.core.report` — machine-readable result containers
  (:class:`~repro.core.report.Report`);
* :mod:`repro.core.api` — the :class:`~repro.core.api.PerfXplain` facade
  and the batch :class:`~repro.core.api.PerfXplainSession`.
"""

from repro.core.features import FeatureKind, FeatureLevel, FeatureSchema, infer_schema
from repro.core.pairs import PairFeatureConfig, compute_pair_features, pair_feature_catalog
from repro.core.pxql import (
    BoundQuery,
    Comparison,
    Operator,
    Predicate,
    PXQLQuery,
    parse_predicate,
    parse_query,
)
from repro.core.explanation import Explanation, ExplanationMetrics
from repro.core.examples import (
    Label,
    TrainingExample,
    TrainingMatrix,
    construct_training_examples,
    construct_training_matrix,
    encode_training_examples,
)
from repro.core.explainer import PerfXplainConfig, PerfXplainExplainer
from repro.core.baselines import RuleOfThumbExplainer, SimButDiffExplainer
from repro.core.registry import (
    Explainer,
    create_explainer,
    register_explainer,
    registered_explainers,
    unregister_explainer,
)
from repro.core.report import Report, ReportEntry
from repro.core.api import PerfXplain, PerfXplainSession

__all__ = [
    "FeatureKind",
    "FeatureLevel",
    "FeatureSchema",
    "infer_schema",
    "PairFeatureConfig",
    "compute_pair_features",
    "pair_feature_catalog",
    "BoundQuery",
    "Comparison",
    "Operator",
    "Predicate",
    "PXQLQuery",
    "parse_predicate",
    "parse_query",
    "Explanation",
    "ExplanationMetrics",
    "Label",
    "TrainingExample",
    "TrainingMatrix",
    "construct_training_examples",
    "construct_training_matrix",
    "encode_training_examples",
    "PerfXplainConfig",
    "PerfXplainExplainer",
    "RuleOfThumbExplainer",
    "SimButDiffExplainer",
    "Explainer",
    "create_explainer",
    "register_explainer",
    "registered_explainers",
    "unregister_explainer",
    "Report",
    "ReportEntry",
    "PerfXplain",
    "PerfXplainSession",
]
