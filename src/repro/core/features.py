"""Raw-feature schema: kinds, domains and feature levels.

PerfXplain treats each execution as a flat feature vector.  Before pair
features can be computed we need to know, per raw feature, whether it is
numeric (so that ``compare`` features and threshold predicates make sense)
or nominal (so that ``diff`` features and equality predicates apply).  The
schema is inferred from the log, with an override list for features whose
numeric representation is really an identifier (e.g. ``instance_index``).

Feature *levels* implement Section 6.8:

* level 1 — only the ``isSame`` features;
* level 2 — ``isSame`` + ``compare`` + ``diff`` features;
* level 3 — everything, including the copied base features.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.exceptions import UnknownFeatureError
from repro.logs.records import ExecutionRecord, FeatureValue


class FeatureKind(enum.Enum):
    """Whether a raw feature is numeric or nominal."""

    NUMERIC = "numeric"
    NOMINAL = "nominal"


class FeatureLevel(enum.IntEnum):
    """The three feature sets compared in the paper's Section 6.8."""

    IS_SAME_ONLY = 1
    COMPARISON = 2
    FULL = 3


#: The performance metric; never available to explanations.
PERFORMANCE_METRIC = "duration"

#: Raw features that look numeric but are identifiers or wall-clock stamps
#: whose *magnitude* carries no meaning; they are treated as nominal so that
#: threshold predicates over them are never generated.
DEFAULT_NOMINAL_OVERRIDES: frozenset[str] = frozenset(
    {"instance_index", "grid_repetition"}
)

#: Provenance stamps written into every record: the workload runner's
#: replay/ground-truth labels (``engine_seed``/``scenario``/
#: ``scenario_variant``) and the ingestion layer's source-file stamps
#: (``source_format``/``source_path``, see :mod:`repro.ingest`), plus the
#: cross-log diff layer's ``run`` stamp (``before``/``after``, see
#: :mod:`repro.diff`).  They label the data rather than describe the
#: execution, so schema inference drops them entirely — an explanation must
#: never cite the scenario label that generated its own ground truth, the
#: file a record came from, nor which side of a diff a record sits on.
DEFAULT_EXCLUDED_FEATURES: frozenset[str] = frozenset(
    {"engine_seed", "run", "scenario", "scenario_variant", "source_format", "source_path"}
)


@dataclass(frozen=True)
class FeatureSpec:
    """Kind (and optionally the observed domain) of one raw feature."""

    name: str
    kind: FeatureKind

    @property
    def is_numeric(self) -> bool:
        """Whether the feature is numeric."""
        return self.kind is FeatureKind.NUMERIC


@dataclass
class FeatureSchema:
    """The set of raw features PerfXplain knows about for one entity kind."""

    specs: dict[str, FeatureSpec] = field(default_factory=dict)

    def __contains__(self, name: str) -> bool:
        return name in self.specs

    def __len__(self) -> int:
        return len(self.specs)

    def names(self) -> list[str]:
        """All raw feature names, sorted."""
        return sorted(self.specs)

    def spec(self, name: str) -> FeatureSpec:
        """The spec of one feature; raises if unknown."""
        if name not in self.specs:
            raise UnknownFeatureError(name, list(self.specs))
        return self.specs[name]

    def is_numeric(self, name: str) -> bool:
        """Whether a raw feature is numeric."""
        return self.spec(name).is_numeric

    def add(self, name: str, kind: FeatureKind) -> None:
        """Register (or overwrite) a feature."""
        self.specs[name] = FeatureSpec(name=name, kind=kind)

    def numeric_features(self) -> list[str]:
        """Names of all numeric features, sorted."""
        return [name for name in self.names() if self.specs[name].is_numeric]

    def nominal_features(self) -> list[str]:
        """Names of all nominal features, sorted."""
        return [name for name in self.names() if not self.specs[name].is_numeric]


def _value_is_numeric(value: FeatureValue) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def infer_schema(
    records: Sequence[ExecutionRecord] | Iterable[ExecutionRecord],
    nominal_overrides: Iterable[str] = DEFAULT_NOMINAL_OVERRIDES,
    include_duration: bool = True,
    excluded: Iterable[str] = DEFAULT_EXCLUDED_FEATURES,
) -> FeatureSchema:
    """Infer the raw-feature schema from a collection of records.

    A feature is numeric when every non-missing value across the records is
    an ``int`` or ``float`` (booleans count as nominal).  Features appearing
    in ``nominal_overrides`` are forced to nominal.

    :param records: job or task records (normally all of one kind).
    :param nominal_overrides: features forced to nominal regardless of type.
    :param include_duration: whether to add the ``duration`` pseudo-feature
        (needed so that PXQL predicates over ``duration_compare`` can be
        evaluated; it is still excluded from explanations).
    :param excluded: features dropped from the schema entirely (provenance
        stamps by default; see :data:`DEFAULT_EXCLUDED_FEATURES`).
    """
    overrides = set(nominal_overrides)
    dropped = frozenset(excluded)
    seen: dict[str, bool] = {}
    any_records = False
    for record in records:
        any_records = True
        for name, value in record.features.items():
            if name in dropped:
                continue
            if value is None:
                seen.setdefault(name, True)
                continue
            numeric = _value_is_numeric(value)
            seen[name] = seen.get(name, True) and numeric

    schema = FeatureSchema()
    for name, numeric in seen.items():
        if name in overrides:
            kind = FeatureKind.NOMINAL
        else:
            kind = FeatureKind.NUMERIC if numeric else FeatureKind.NOMINAL
        schema.add(name, kind)
    if include_duration and any_records:
        schema.add(PERFORMANCE_METRIC, FeatureKind.NUMERIC)
    return schema
