"""Concurrency primitives for the reader-concurrent service stack.

Two small, dependency-free building blocks:

* :class:`RWLock` — a writer-preferring reader-writer lock.  The service
  layer holds the read side while a session answers a query (many readers
  run in parallel) and the write side around appends and first-load, so
  the epoch/version cache-invalidation machinery stays strictly
  single-writer.  Writer preference means a steady stream of read traffic
  cannot starve an append: once a writer is waiting, new readers queue
  behind it.
* :class:`SingleFlight` — per-key compute-once semantics.  Two threads
  racing on the same cold cache key produce exactly one computation; the
  loser blocks until the leader's result (or exception) is available.
  This is the service's request-level dedup idea pushed down into the
  session layer, where it also covers *derived* work (training matrices,
  pair selection) that distinct requests share.

Both are deliberately non-reentrant: a thread holding the read side must
not re-acquire either side, and a single-flight factory must not recurse
into the same key.  The call graphs that use them (catalog -> session ->
caches) are acyclic, and keeping them simple keeps them auditable.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Hashable, Iterator

__all__ = ["RWLock", "SingleFlight"]


class RWLock:
    """A writer-preferring reader-writer lock.

    Any number of readers may hold the lock together; writers are
    exclusive against both readers and other writers.  A waiting writer
    blocks *new* readers (writer preference), so read-heavy traffic cannot
    starve appends.

    ``with lock:`` acquires the **write** side — the lock is a drop-in
    replacement for the exclusive :class:`threading.Lock` it supersedes in
    the catalog; concurrent readers opt in explicitly via
    :meth:`read_locked`.
    """

    __slots__ = ("_cond", "_readers", "_writer", "_writers_waiting")

    def __init__(self) -> None:
        self._cond = threading.Condition(threading.Lock())
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    # ------------------------------------------------------------------ #
    # read side
    # ------------------------------------------------------------------ #

    def acquire_read(self) -> None:
        """Block until no writer holds or awaits the lock, then share it."""
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        """Release one shared hold; wakes writers when the last reader leaves."""
        with self._cond:
            self._readers -= 1
            if self._readers < 0:
                self._readers = 0
                raise RuntimeError("release_read without a matching acquire_read")
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """Context manager for the shared (reader) side."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # ------------------------------------------------------------------ #
    # write side
    # ------------------------------------------------------------------ #

    def acquire_write(self) -> None:
        """Block until the lock is free, then hold it exclusively."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        """Release the exclusive hold."""
        with self._cond:
            if not self._writer:
                raise RuntimeError("release_write without a matching acquire_write")
            self._writer = False
            self._cond.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """Context manager for the exclusive (writer) side."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # Exclusive acquisition doubles as the context-manager protocol so the
    # lock can replace a plain mutex without touching ``with`` call sites.
    def __enter__(self) -> "RWLock":
        self.acquire_write()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release_write()


class _Flight:
    """One in-progress computation: a latch plus its outcome."""

    __slots__ = ("done", "result", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None


class SingleFlight:
    """Collapse concurrent computations of the same key into one.

    The first caller of :meth:`do` for a key becomes the *leader* and runs
    the factory; every concurrent caller for the same key blocks until the
    leader finishes and then shares the leader's result.  A failing
    factory propagates its exception to the leader *and* every waiter, and
    the key is cleared either way, so a later call retries fresh.

    Results are not cached here — pair :class:`SingleFlight` with an
    actual cache (probe the cache first, single-flight the recompute).
    """

    __slots__ = ("_lock", "_flights", "_leads", "_waits")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[Hashable, _Flight] = {}
        self._leads = 0
        self._waits = 0

    def do(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """Run ``factory`` once per concurrent burst of callers for ``key``."""
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = _Flight()
                self._flights[key] = flight
                self._leads += 1
                leader = True
            else:
                self._waits += 1
                leader = False
        if not leader:
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            return flight.result
        try:
            flight.result = factory()
        except BaseException as error:
            flight.error = error
            raise
        finally:
            # Clear before releasing the waiters: a caller arriving after
            # the latch opens must start a fresh flight, never observe a
            # completed one.
            with self._lock:
                self._flights.pop(key, None)
            flight.done.set()
        return flight.result

    def stats(self) -> dict[str, int]:
        """Running counters: computations led vs. piggybacked waits."""
        with self._lock:
            return {
                "leads": self._leads,
                "waits": self._waits,
                "in_flight": len(self._flights),
            }
